"""F1 — Figure 1: the query graph.

Regenerates the paper's example: a query graph that is a forest of (A) a
schema fragment and (B) a keyword, and benchmarks query-graph
construction (parse DDL + assemble the forest).
"""

from repro.model.query import QueryItemKind
from repro.parsers.query_parser import parse_query

from benchmarks.helpers import PAPER_FRAGMENT, report


def describe_query_graph() -> str:
    graph = parse_query("diagnosis", fragment=PAPER_FRAGMENT)
    lines = ["Figure 1: query graph (forest of trees)", ""]
    for i, item in enumerate(graph.items):
        if item.kind is QueryItemKind.KEYWORD:
            lines.append(f"tree {i}: (B) keyword graph of one item: "
                         f"{item.keyword!r}")
        else:
            fragment = item.fragment
            assert fragment is not None
            lines.append(f"tree {i}: (A) schema fragment "
                         f"{fragment.name!r}:")
            for entity in fragment.entities.values():
                lines.append(f"  entity {entity.name}")
                for attr in entity.attributes:
                    lines.append(f"    attribute {attr.name} "
                                 f": {attr.data_type}")
    lines.append("")
    lines.append(f"flattened for candidate extraction: {graph.flatten()}")
    lines.append(f"query elements (matrix rows): {graph.element_labels()}")
    return "\n".join(lines)


def test_fig1_report(benchmark):
    """Regenerate the Figure 1 inventory (non-timed)."""
    # Keep report generation alive under --benchmark-only.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    text = describe_query_graph()
    report("fig1_query_graph", text)
    assert "keyword graph of one item: 'diagnosis'" in text
    assert "entity patient" in text


def test_fig1_query_parse_benchmark(benchmark):
    """Time query-graph construction from raw user input."""
    graph = benchmark(parse_query, "diagnosis", PAPER_FRAGMENT)
    assert len(graph.items) == 2
