"""F3 — Figure 3: schema search algorithm data flow.

Prints the per-phase data-flow breakdown (items in/out and latency for
query parse -> candidate extraction -> schema matching ->
tightness-of-fit) and benchmarks each phase in isolation.
"""

from repro.index.searcher import IndexSearcher
from repro.matching.ensemble import MatcherEnsemble
from repro.parsers.query_parser import parse_query
from repro.scoring.tightness import TightnessScorer

from benchmarks.helpers import (
    PAPER_FRAGMENT,
    PAPER_KEYWORDS,
    corpus_repository,
    report,
)

CORPUS_SIZE = 2000


def test_fig3_report(benchmark):
    # Keep report generation alive under --benchmark-only.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    repo, _corpus = corpus_repository(CORPUS_SIZE)
    engine = repo.engine()
    engine.search(keywords=PAPER_KEYWORDS, fragment=PAPER_FRAGMENT)
    trace = engine.last_trace
    assert trace is not None
    lines = [
        "Figure 3: schema search algorithm data flow",
        f"(corpus: {repo.schema_count} schemas, candidate pool: "
        f"{engine.config.candidate_pool})",
        "",
        trace.summary(),
    ]
    report("fig3_pipeline", "\n".join(lines))
    names = [phase.name for phase in trace.phases]
    assert names == ["query_parse", "candidate_extraction",
                     "schema_matching", "tightness_of_fit"]


def test_fig3_phase1_candidates_benchmark(benchmark):
    repo, _corpus = corpus_repository(CORPUS_SIZE)
    searcher = IndexSearcher(repo.indexer().index)
    query = parse_query(PAPER_KEYWORDS, fragment=PAPER_FRAGMENT)
    flattened = query.flatten()
    hits = benchmark(searcher.search, flattened, 50)
    assert hits


def test_fig3_phase2_matching_benchmark(benchmark):
    repo, _corpus = corpus_repository(CORPUS_SIZE)
    searcher = IndexSearcher(repo.indexer().index)
    query = parse_query(PAPER_KEYWORDS, fragment=PAPER_FRAGMENT)
    candidate = repo.get_schema(
        searcher.search(query.flatten(), top_n=1)[0].doc_id)
    ensemble = MatcherEnsemble.default()
    result = benchmark(ensemble.match, query, candidate)
    assert result.combined.values.max() > 0


def test_fig3_phase3_tightness_benchmark(benchmark):
    repo, _corpus = corpus_repository(CORPUS_SIZE)
    searcher = IndexSearcher(repo.indexer().index)
    query = parse_query(PAPER_KEYWORDS, fragment=PAPER_FRAGMENT)
    candidate = repo.get_schema(
        searcher.search(query.flatten(), top_n=1)[0].doc_id)
    element_scores = MatcherEnsemble.default().match(
        query, candidate).combined.max_per_column()
    scorer = TightnessScorer()
    result = benchmark(scorer.score, candidate, element_scores)
    assert result.score >= 0
