"""Merge every BENCH_*.json into one markdown trajectory table.

Each bench writes its own JSON next to the repository root; this tool
collapses them into the single table a reader (or a PR description)
wants: one row per headline number, grouped by subsystem, so the
performance trajectory of the codebase is visible in one place.

Run (from the repository root)::

    PYTHONPATH=src python benchmarks/summarize.py                # print
    PYTHONPATH=src python benchmarks/summarize.py --out BENCH.md # persist
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: bench-file stem -> (subsystem label, [(row label, dotted path), ...]).
#: Paths resolve through nested dicts; missing paths are skipped so the
#: table degrades gracefully when a bench predates a field.
HEADLINES: dict[str, tuple[str, list[tuple[str, str]]]] = {
    "BENCH_phase1": ("phase-1 retrieval", [
        ("corpus size", "corpus_size"),
        ("packed vs naive speedup", "speedup.packed_vs_naive"),
        ("pruned vs naive speedup", "speedup.pruned_vs_naive"),
        ("warm-cache speedup", "speedup.warm_cache_vs_naive"),
        ("rankings identical", "rankings_identical"),
    ]),
    "BENCH_phase2": ("phase-2 matching", [
        ("corpus size", "corpus_size"),
        ("profiled vs cold speedup", "speedup.profiled_vs_cold"),
        ("parallel vs cold speedup", "speedup.parallel_vs_cold"),
    ]),
    "BENCH_resilience": ("resilience", [
        ("shed burst", "shedding.burst"),
        ("shed admitted", "shedding.admitted"),
        ("shed rejected", "shedding.rejected"),
        ("accounting exact", "shedding.accounted"),
    ]),
    "BENCH_telemetry": ("telemetry", [
        ("enabled overhead %", "enabled_overhead_pct"),
        ("no-op site ns", "noop_site_nanoseconds"),
        ("disabled overhead %", "disabled_noop_overhead_pct"),
    ]),
    "BENCH_segments": ("mmap segments", [
        ("corpus size", "corpus_size"),
        ("cold-start speedup", "cold_start_speedup"),
        ("cold open s", "cold_open_seconds"),
        ("p50 mmap/memory ratio", "p50_ratio"),
        ("rankings identical", "rankings_identical"),
    ]),
    "BENCH_shards": ("process shards", [
        ("corpus size", "corpus_size"),
        ("cpu count", "cpu_count"),
        ("single-process qps", "single_process.qps"),
        ("max-shards speedup", "qps_speedup_max_shards"),
        ("rankings identical", "all_rankings_identical"),
    ]),
    "BENCH_workload": ("workload replay", [
        ("harvest deterministic", "harvest_deterministic"),
        ("closed-loop qps", "closed_loop.achieved_qps"),
        ("closed-loop p99 ms", "closed_loop.p99_ms"),
        ("open-loop shed", "open_loop.shed_fraction"),
        ("open-loop p99 ms", "open_loop.p99_ms"),
        ("A/B precision delta", "ab.precision_at_k.delta"),
        ("A/B precision p", "ab.precision_at_k.p_value"),
        ("trained no worse", "trained_no_worse_than_uniform"),
    ]),
}


def resolve(data: dict, dotted: str):
    """Walk a dotted path through nested dicts; None when absent."""
    node = data
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def render_value(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def fallback_rows(data: dict) -> list[tuple[str, str]]:
    """Top-level scalars of an unknown bench file."""
    return [(key, render_value(value)) for key, value in data.items()
            if isinstance(value, (int, float, bool))]


def summarize(root: Path) -> str:
    """The markdown trajectory table over every BENCH_*.json in root."""
    lines = ["# Benchmark trajectory", "",
             "| subsystem | metric | value |",
             "|---|---|---|"]
    found = 0
    for path in sorted(root.glob("BENCH_*.json")):
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            lines.append(f"| {path.stem} | unreadable | {exc} |")
            continue
        found += 1
        label, headline = HEADLINES.get(
            path.stem, (path.stem.removeprefix("BENCH_"), []))
        rows = []
        for row_label, dotted in headline:
            value = resolve(data, dotted)
            if value is not None:
                rows.append((row_label, render_value(value)))
        if not rows:
            rows = fallback_rows(data)
        for i, (row_label, value) in enumerate(rows):
            cell = label if i == 0 else ""
            lines.append(f"| {cell} | {row_label} | {value} |")
    if not found:
        lines.append("| (none) | no BENCH_*.json files found | |")
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--root", type=Path, default=ROOT,
                        help="directory holding BENCH_*.json "
                             "(default: repository root)")
    parser.add_argument("--out", type=Path, default=None,
                        help="also write the markdown here")
    args = parser.parse_args(argv)
    table = summarize(args.root)
    print(table, end="")
    if args.out:
        args.out.write_text(table, encoding="utf-8")
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
