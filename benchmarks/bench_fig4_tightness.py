"""F4 — Figure 4 + the Section 2 worked example: tightness-of-fit.

Reconstructs the case/patient/doctor schema, scores it with the mean
aggregation the prose narrates, prints the anchor-by-anchor walkthrough
(which elements take no / small / large penalties per anchor, and which
anchor wins), and benchmarks the scorer on schemas of growing size.
"""

import pytest

from repro.model.elements import Attribute, Entity, ForeignKey
from repro.model.schema import Schema
from repro.scoring.tightness import (
    AGGREGATION_MEAN,
    PenaltyPolicy,
    TightnessScorer,
)

from benchmarks.helpers import report


def figure4_schema() -> Schema:
    schema = Schema(name="figure4")
    schema.add_entity(Entity("patient", [
        Attribute("id"), Attribute("height"), Attribute("gender")]))
    schema.add_entity(Entity("doctor", [
        Attribute("id"), Attribute("gender")]))
    schema.add_entity(Entity("case", [
        Attribute("id"), Attribute("patient"), Attribute("doctor")]))
    schema.add_foreign_key(ForeignKey("case", "patient", "patient", "id"))
    schema.add_foreign_key(ForeignKey("case", "doctor", "doctor", "id"))
    return schema


#: Figure 4's matched elements, uniform similarity for the walkthrough.
MATCHED = {
    "case.doctor": 0.8,
    "case.patient": 0.8,
    "patient.height": 0.8,
    "patient.gender": 0.8,
    "doctor.gender": 0.8,
}


def test_fig4_report(benchmark):
    # Keep report generation alive under --benchmark-only.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    schema = figure4_schema()
    scorer = TightnessScorer(PenaltyPolicy(
        neighborhood_penalty=0.1, unrelated_penalty=0.3,
        match_floor=0.01, aggregation=AGGREGATION_MEAN))
    result = scorer.score(schema, MATCHED)
    lines = [
        "Figure 4: tightness-of-fit worked example",
        "matched elements (uniform similarity 0.80):",
        "  " + ", ".join(sorted(MATCHED)),
        "",
        "anchor walkthrough (penalty: none=in anchor, 0.1=FK "
        "neighborhood, 0.3=unrelated):",
    ]
    for anchor in result.anchors:
        lines.append(f"  anchor={anchor.anchor:<8} score="
                     f"{anchor.score:.4f}")
        for path, value in sorted(anchor.penalized_elements.items()):
            penalty = MATCHED[path] - value
            lines.append(f"    {path:<16} {MATCHED[path]:.2f} -"
                         f" {penalty:.2f} = {value:.2f}")
    lines.append("")
    lines.append(f"t_max = {result.score:.4f} at anchor "
                 f"{result.best_anchor!r}")
    report("fig4_tightness", "\n".join(lines))
    # The paper's walkthrough: case and patient anchors both hold two
    # matched elements and tie; doctor is strictly worse.
    by_anchor = {a.anchor: a.score for a in result.anchors}
    assert by_anchor["doctor"] < by_anchor["case"]
    assert result.score == pytest.approx(0.74)


@pytest.mark.parametrize("entities", [3, 10, 30])
def test_fig4_scorer_benchmark(benchmark, entities):
    """Scorer cost as matched-entity count grows (anchors x elements)."""
    schema = Schema(name="wide")
    scores = {}
    for i in range(entities):
        schema.add_entity(Entity(f"e{i}", [
            Attribute(f"a{j}") for j in range(5)]))
        for j in range(5):
            scores[f"e{i}.a{j}"] = 0.5
    for i in range(entities - 1):
        schema.add_foreign_key(ForeignKey(f"e{i}", "a0", f"e{i+1}", "a0"))
    scorer = TightnessScorer()
    result = benchmark(scorer.score, schema, scores)
    assert result.score > 0
