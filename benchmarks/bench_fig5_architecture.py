"""F5 — Figure 5: system architecture round trips.

Exercises the full request path of the architecture diagram — GUI ->
Search Service -> candidate filter -> Match Engine -> XML response, and
the visualization request (schema id -> GraphML) — over real HTTP, plus
the offline indexer refresh cycle.
"""

import pytest

from repro.service.client import SchemrClient
from repro.service.server import SchemrServer

from benchmarks.helpers import PAPER_KEYWORDS, corpus_repository, report

CORPUS_SIZE = 2000


@pytest.fixture(scope="module")
def server_and_client():
    repo, _corpus = corpus_repository(CORPUS_SIZE)
    server = SchemrServer(repo)
    server.start()
    yield server, SchemrClient(server.base_url)
    server.stop()


def test_fig5_report(benchmark, server_and_client):
    # Keep report generation alive under --benchmark-only.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    server, client = server_and_client
    results = client.search(PAPER_KEYWORDS, top_n=5)
    graph = client.schema_graph(results[0].schema_id,
                                match_scores=results[0].element_scores)
    repo, _ = corpus_repository(CORPUS_SIZE)
    applied = repo.reindex()  # scheduled-indexer path: nothing pending
    lines = [
        "Figure 5: architecture round trips",
        f"service at {server.base_url}",
        "",
        f"search request -> XML response: {len(results)} results, "
        f"top = {results[0].name!r} (score {results[0].score:.4f})",
        f"visualization request -> GraphML: {graph.number_of_nodes()} "
        f"nodes, {graph.number_of_edges()} edges",
        f"offline indexer refresh with no pending changes applied "
        f"{applied} operations",
    ]
    report("fig5_architecture", "\n".join(lines))
    assert results
    assert graph.number_of_nodes() > 1


def test_fig5_http_search_benchmark(benchmark, server_and_client):
    _server, client = server_and_client
    results = benchmark(client.search, PAPER_KEYWORDS, None, 10)
    assert results


def test_fig5_http_graphml_benchmark(benchmark, server_and_client):
    _server, client = server_and_client
    schema_id = client.search(PAPER_KEYWORDS, top_n=1)[0].schema_id
    graph = benchmark(client.schema_graph, schema_id)
    assert graph.number_of_nodes() > 1


def test_fig5_indexer_refresh_benchmark(benchmark):
    """Cost of an incremental refresh after one schema changes."""
    repo, corpus = corpus_repository(CORPUS_SIZE)
    schema = repo.get_schema(corpus[0].schema.schema_id)

    def change_and_refresh():
        repo.update_schema(schema)
        return repo.reindex()

    applied = benchmark(change_and_refresh)
    assert applied == 1
