"""Replicated-serving bench: catch-up, steady-state lag, failover.

Builds a corpus (default 5k schemas) into a file-backed repository,
indexes it into a flat segment directory, and measures the three
numbers replication exists for:

* ``catch_up`` — wall time for a cold replica to pull the primary's
  full committed state over HTTP and verify it byte-identical;
* ``steady_state`` — with the replica poll loop running, the primary
  appends batches; per batch, how long until the replica's served
  generation catches up (this is the lag ``/readyz`` gates on);
* ``failover`` — the primary runs as a real ``schemr serve`` process
  and is SIGKILLed mid-traffic; a multi-endpoint client must keep
  answering from the replica with **zero empty responses**, and the
  recorded failover time is the service gap around the kill;
* ``crash_sweep`` — every ``segments.*`` / ``replication.*`` fault
  site is armed in turn and recovery is re-checked: reopening after
  the simulated crash must yield the last committed generation with a
  clean ``verify_directory`` pass.

Run (from the repository root)::

    PYTHONPATH=src python benchmarks/bench_replication.py               # 5k
    PYTHONPATH=src python benchmarks/bench_replication.py --count 500   # smoke
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

from repro.core.config import SchemrConfig
from repro.corpus.generator import CorpusGenerator
from repro.errors import SchemrError
from repro.index.segments import (SegmentedIndex, verify_directory)
from repro.replication import DirectorySource, HttpSource, ReplicaSyncer
from repro.repository.store import SchemaRepository
from repro.resilience.faults import FAULTS
from repro.service.client import SchemrClient
from repro.service.server import SchemrServer

ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = ROOT / "BENCH_replication.json"


class SimulatedCrash(Exception):
    pass


def build_corpus(db_path: str, count: int, seed: int = 7) -> int:
    generator = CorpusGenerator(seed=seed)
    repo = SchemaRepository(db_path)
    for generated in generator.stream(count, include_junk=True):
        repo.add_schema(generated.schema)
    stored = repo.schema_count
    repo.close()
    return stored


def dir_bytes(root: Path) -> int:
    return sum(p.stat().st_size for p in root.rglob("*") if p.is_file())


def committed_state(root: Path) -> dict[str, bytes]:
    state = {}
    for manifest_path in sorted(root.rglob("MANIFEST.json")):
        rel = manifest_path.parent.relative_to(root)
        state[str(rel / "MANIFEST.json")] = manifest_path.read_bytes()
        for entry in json.loads(manifest_path.read_text())["segments"]:
            seg = manifest_path.parent / entry["file"]
            state[str(rel / entry["file"])] = seg.read_bytes()
    return state


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def wait_ready(base_url: str, timeout: float = 60.0) -> None:
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        try:
            with urllib.request.urlopen(base_url + "/readyz",
                                        timeout=2.0) as response:
                if response.status == 200:
                    return
        except OSError:
            pass
        time.sleep(0.1)
    raise RuntimeError(f"{base_url} never became ready")


# -- phases ------------------------------------------------------------------

def catch_up_phase(primary_url: str, replica_dir: Path,
                   primary_dir: Path) -> dict:
    source = HttpSource(primary_url)
    syncer = ReplicaSyncer(source, replica_dir)
    start = time.perf_counter()
    report = syncer.sync_once()
    elapsed = time.perf_counter() - start
    identical = committed_state(replica_dir) == committed_state(primary_dir)
    source.close()
    return {
        "seconds": elapsed,
        "pulled_segments": report.pulled_segments,
        "pulled_bytes": report.pulled_bytes,
        "mbytes_per_second": (report.pulled_bytes / 1e6 / elapsed
                              if elapsed else 0.0),
        "generation": report.local_generation,
        "byte_identical": identical,
        "verify_ok": verify_directory(replica_dir).ok,
    }


def steady_state_phase(db_path: str, primary_dir: Path, replica_dir: Path,
                       batches: int, batch_size: int,
                       poll_seconds: float = 0.05, seed: int = 41) -> dict:
    """Append batches on the primary; time the replica's convergence."""
    writer = SchemaRepository(db_path)
    indexer = writer.indexer(segment_dir=str(primary_dir))
    syncer = ReplicaSyncer(DirectorySource(primary_dir), replica_dir,
                           poll_seconds=poll_seconds)
    syncer.sync_once()
    syncer.start()
    generator = CorpusGenerator(seed=seed)
    lags = []
    try:
        for _ in range(batches):
            for generated in generator.stream(batch_size):
                writer.add_schema(generated.schema)
            indexer.refresh()
            target = indexer.index.last_change_id
            start = time.perf_counter()
            while syncer.generation < target:
                if time.perf_counter() - start > 30.0:
                    raise RuntimeError("replica never caught up")
                time.sleep(0.005)
            lags.append(time.perf_counter() - start)
    finally:
        syncer.stop()
        writer.close()
    return {
        "batches": batches,
        "batch_size": batch_size,
        "poll_seconds": poll_seconds,
        "max_catch_up_seconds": max(lags),
        "mean_catch_up_seconds": sum(lags) / len(lags),
        "final_generation": syncer.generation,
        "byte_identical": committed_state(replica_dir)
        == committed_state(primary_dir),
    }


def failover_phase(primary_proc: subprocess.Popen, primary_url: str,
                   replica_url: str, duration: float,
                   threads: int = 2) -> dict:
    """SIGKILL the primary mid-traffic; count gaps and empty answers."""
    keywords = "patient name address diagnosis"
    lock = threading.Lock()
    events: list[tuple[float, str, bool, bool]] = []
    stop_at = time.perf_counter() + duration
    kill_at = time.perf_counter() + duration / 3.0
    killed = [0.0]

    def client_loop(worker: int) -> None:
        client = SchemrClient([primary_url, replica_url], timeout=10.0)
        while time.perf_counter() < stop_at:
            start = time.perf_counter()
            try:
                results = client.search(keywords=keywords, top_n=10)
            except SchemrError:
                with lock:
                    events.append((start, "", False, False))
                continue
            with lock:
                events.append((start, client.last_endpoint, True,
                               not results))

    def assassin() -> None:
        while time.perf_counter() < kill_at:
            time.sleep(0.01)
        killed[0] = time.perf_counter()
        primary_proc.send_signal(signal.SIGKILL)

    pool = [threading.Thread(target=client_loop, args=(i,), daemon=True)
            for i in range(threads)]
    killer = threading.Thread(target=assassin, daemon=True)
    for thread in pool:
        thread.start()
    killer.start()
    for thread in pool:
        thread.join()
    killer.join()
    primary_proc.wait(timeout=10.0)

    failures = [t for t, _, ok, _ in events if not ok]
    post_kill_ok = sorted(t for t, _, ok, _ in events
                          if ok and t >= killed[0])
    served_by_replica = sum(1 for _, endpoint, ok, _ in events
                            if ok and endpoint == replica_url)
    return {
        "requests": len(events),
        "succeeded": sum(1 for _, _, ok, _ in events if ok),
        "failed": len(failures),
        "empty_responses": sum(1 for _, _, ok, empty in events
                               if ok and empty),
        "served_by_replica": served_by_replica,
        "failover_seconds": (post_kill_ok[0] - killed[0]
                             if post_kill_ok else None),
    }


def crash_sweep_phase(primary_dir: Path, workdir: Path) -> dict:
    """Arm each fault site; recovery must land on committed state."""
    writer_sites = ["segments.write.torn", "segments.write.pre_rename",
                    "segments.flush.pre_commit",
                    "segments.manifest.pre_rename",
                    "segments.manifest.post_rename"]
    pull_sites = ["replication.pull.chunk", "replication.pull.pre_rename",
                  "replication.pull.pre_commit"]
    from repro.index.documents import Document
    outcomes = {}
    for site in writer_sites:
        root = workdir / f"crash_{site.replace('.', '_')}"
        shutil.copytree(primary_dir, root)
        index = SegmentedIndex.open(root)
        before = committed_state(root)
        generation = index.last_change_id
        FAULTS.inject(site, error=SimulatedCrash(site), times=1)
        index.add(Document(10_000_000, "crash-doc", terms=["crash"]))
        crashed = False
        try:
            index.flush(last_change_id=generation + 1)
        except SimulatedCrash:
            crashed = True
        FAULTS.reset()
        reopened = SegmentedIndex.open(root, sweep=True)
        committed = site == "segments.manifest.post_rename"
        recovered = verify_directory(root).ok and (
            reopened.last_change_id == generation + 1 if committed
            else committed_state(root) == before)
        outcomes[site] = bool(crashed and recovered)
        shutil.rmtree(root, ignore_errors=True)
    for site in pull_sites:
        root = workdir / f"crash_{site.replace('.', '_')}"
        source_dir = workdir / f"crash_src_{site.replace('.', '_')}"
        shutil.copytree(primary_dir, source_dir)
        ReplicaSyncer(DirectorySource(source_dir), root).sync_once()
        before = committed_state(root)
        writer = SegmentedIndex.open(source_dir)
        writer.add(Document(10_000_001, "crash-doc", terms=["crash"]))
        writer.flush(last_change_id=writer.last_change_id + 1)
        FAULTS.inject(site, error=SimulatedCrash(site), times=1)
        crashed = False
        try:
            ReplicaSyncer(DirectorySource(source_dir), root).sync_once()
        except SimulatedCrash:
            crashed = True
        FAULTS.reset()
        stayed = committed_state(root) == before
        ReplicaSyncer(DirectorySource(source_dir), root).sync_once()
        converged = committed_state(root) == committed_state(source_dir)
        outcomes[site] = bool(crashed and stayed and converged
                              and verify_directory(root).ok)
        shutil.rmtree(root, ignore_errors=True)
        shutil.rmtree(source_dir, ignore_errors=True)
    return {"sites": outcomes, "all_recovered": all(outcomes.values())}


def run(count: int, duration: float, batches: int, batch_size: int,
        out_path: Path) -> dict:
    workdir = Path(tempfile.mkdtemp(prefix="schemr-bench-replication-"))
    db_path = str(workdir / "repo.db")
    primary_dir = workdir / "primary"
    env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))
    primary_proc = None
    replica_server = None
    replica_repo = None
    try:
        build_start = time.perf_counter()
        corpus_size = build_corpus(db_path, count)
        repo = SchemaRepository(db_path)
        repo.indexer(segment_dir=str(primary_dir)).refresh()
        repo.close()
        build_seconds = time.perf_counter() - build_start

        port = free_port()
        primary_url = f"http://127.0.0.1:{port}"
        primary_proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", db_path,
             "--port", str(port), "--segment-dir", str(primary_dir)],
            env=env, cwd=str(ROOT), stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)
        wait_ready(primary_url)

        catch_up = catch_up_phase(primary_url, workdir / "cold", primary_dir)

        replica_repo = SchemaRepository(db_path)
        replica_server = SchemrServer(replica_repo, port=0,
                                      config=SchemrConfig(
                                          telemetry_enabled=True,
                                          segment_dir=str(workdir / "serving"),
                                          replicate_from=primary_url,
                                          replica_poll_seconds=0.1))
        replica_server.start()
        wait_ready(replica_server.base_url)
        failover = failover_phase(primary_proc, primary_url,
                                  replica_server.base_url, duration)
        replica_server.stop()
        replica_server = None
        replica_repo.close()
        replica_repo = None

        steady = steady_state_phase(db_path, primary_dir,
                                    workdir / "steady", batches, batch_size)
        sweep = crash_sweep_phase(primary_dir, workdir)

        result = {
            "corpus_size": corpus_size,
            "build_seconds": build_seconds,
            "catch_up": catch_up,
            "steady_state": steady,
            "failover": failover,
            "crash_sweep": sweep,
            "zero_empty_responses": failover["empty_responses"] == 0,
        }
        out_path.write_text(json.dumps(result, indent=2) + "\n",
                            encoding="utf-8")
        return result
    finally:
        if replica_server is not None:
            replica_server.stop()
        if replica_repo is not None:
            replica_repo.close()
        if primary_proc is not None and primary_proc.poll() is None:
            primary_proc.kill()
            primary_proc.wait(timeout=10.0)
        shutil.rmtree(workdir, ignore_errors=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--count", type=int, default=5000,
                        help="schemas streamed into the repository "
                             "(default 5000)")
    parser.add_argument("--duration", type=float, default=6.0,
                        help="seconds of failover traffic (default 6)")
    parser.add_argument("--batches", type=int, default=3,
                        help="steady-state append batches (default 3)")
    parser.add_argument("--batch-size", type=int, default=100,
                        help="schemas per steady-state batch (default 100)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    args = parser.parse_args(argv)

    result = run(args.count, args.duration, args.batches, args.batch_size,
                 args.out)
    catch_up = result["catch_up"]
    steady = result["steady_state"]
    failover = result["failover"]
    print(f"corpus: {result['corpus_size']} schemas "
          f"(built in {result['build_seconds']:.1f}s)")
    print(f"  catch-up: {catch_up['pulled_bytes'] / 1e6:.1f} MB in "
          f"{catch_up['seconds']:.2f}s "
          f"({catch_up['mbytes_per_second']:.1f} MB/s), byte-identical: "
          f"{catch_up['byte_identical']}")
    print(f"  steady-state lag: mean "
          f"{steady['mean_catch_up_seconds'] * 1e3:.0f}ms, max "
          f"{steady['max_catch_up_seconds'] * 1e3:.0f}ms per "
          f"{steady['batch_size']}-schema batch")
    print(f"  failover: {failover['requests']} requests, "
          f"{failover['empty_responses']} empty, "
          f"{failover['served_by_replica']} served by the replica, "
          f"gap {failover['failover_seconds']:.3f}s"
          if failover["failover_seconds"] is not None else
          "  failover: no post-kill success recorded")
    print(f"  crash sweep: all recovered = "
          f"{result['crash_sweep']['all_recovered']}")
    print(f"wrote {args.out}")
    return int(not (result["crash_sweep"]["all_recovered"]
                    and result["zero_empty_responses"]
                    and catch_up["byte_identical"]))


if __name__ == "__main__":
    sys.exit(main())
