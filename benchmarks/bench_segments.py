"""Segment cold-start bench: mmap open vs full index rebuild.

Builds a repository-scale corpus (default 100k schemas, streamed in
bounded memory) into both an in-memory :class:`InvertedIndex` and an
on-disk segment directory, then measures the three numbers the mmap
format exists for:

* ``rebuild_seconds`` — the old cold-start path: re-adding every
  document to a fresh in-memory index (document construction and
  storage I/O excluded, so this is a *conservative* baseline);
* ``cold_open_seconds`` — the new path: ``SegmentedIndex.open`` on the
  segment directory plus the first query, measured on a fresh open;
* ``p50`` query latency over both backends, warm, same query set.

Every measured query's ranking is asserted byte-identical between the
two backends (``rankings_identical``), and a merge-under-traffic phase
re-checks equivalence while tiered merges rewrite segments between
query batches.  Results go to ``BENCH_segments.json`` at the
repository root.

Run (from the repository root)::

    PYTHONPATH=src python benchmarks/bench_segments.py                # 100k schemas
    PYTHONPATH=src python benchmarks/bench_segments.py --count 20000  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import random
import shutil
import statistics
import sys
import tempfile
import time
from pathlib import Path

from repro.corpus.generator import CorpusGenerator
from repro.index.documents import Document, document_from_schema
from repro.index.inverted import InvertedIndex
from repro.index.searcher import IndexSearcher
from repro.index.segments import SegmentedIndex, TieredMergePolicy

ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = ROOT / "BENCH_segments.json"
FLUSH_EVERY = 8192


def build_both(count: int, segment_dir: Path,
               seed: int = 7) -> tuple[InvertedIndex, SegmentedIndex, float]:
    """Stream ``count`` schemas into both backends.

    Returns the in-memory index, the segmented index, and
    ``rebuild_seconds``: the summed wall time of the in-memory ``add``
    calls alone, i.e. what a cold start costs when the index must be
    rebuilt from already-loaded documents.
    """
    generator = CorpusGenerator(seed=seed)
    memory = InvertedIndex()
    segmented = SegmentedIndex.open(segment_dir, create=True)
    policy = TieredMergePolicy()
    rebuild_seconds = 0.0
    pending = 0
    for i, generated in enumerate(generator.stream(count), start=1):
        schema = generated.schema
        schema.schema_id = i
        document = document_from_schema(schema)
        start = time.perf_counter()
        memory.add(document)
        rebuild_seconds += time.perf_counter() - start
        segmented.add(document)
        pending += 1
        if pending >= FLUSH_EVERY:
            segmented.flush()
            while segmented.maybe_merge(policy):
                pass
            pending = 0
    segmented.flush()
    while segmented.maybe_merge(policy):
        pass
    return memory, segmented, rebuild_seconds


def build_queries(memory: InvertedIndex, sampled: int,
                  seed: int = 23) -> list[list[str]]:
    """Queries drawn from real document vocabularies (1-4 terms)."""
    rng = random.Random(seed)
    documents = sorted(memory.documents(), key=lambda d: d.doc_id)
    queries = [["patient", "name", "address", "diagnosis"]]
    for _ in range(sampled):
        document = rng.choice(documents)
        terms = document.terms or ["patient"]
        k = min(len(terms), rng.randint(1, 4))
        queries.append(list(dict.fromkeys(rng.sample(terms, k))))
    return queries


def assert_identical(memory_index, segment_index,
                     queries: list[list[str]], top_n: int) -> bool:
    for strategy in ("packed", "pruned"):
        mem = IndexSearcher(memory_index, strategy=strategy)
        seg = IndexSearcher(segment_index, strategy=strategy)
        for query in queries:
            if mem.search(query, top_n=top_n) != seg.search(query,
                                                            top_n=top_n):
                return False
    return True


def measure_cold_open(segment_dir: Path, query: list[str],
                      top_n: int) -> float:
    start = time.perf_counter()
    index = SegmentedIndex.open(segment_dir)
    IndexSearcher(index).search(query, top_n=top_n)
    return time.perf_counter() - start


def per_query_p50(searcher: IndexSearcher, queries: list[list[str]],
                  top_n: int, repeats: int) -> float:
    times: list[float] = []
    for _ in range(repeats):
        for query in queries:
            start = time.perf_counter()
            searcher.search(query, top_n=top_n)
            times.append(time.perf_counter() - start)
    return statistics.median(times)


def merge_under_traffic(memory: InvertedIndex, segmented: SegmentedIndex,
                        queries: list[list[str]], top_n: int,
                        extra: int) -> dict:
    """Churn the index into many small segments, then query while a
    tight merge policy collapses them — rankings must hold throughout."""
    next_id = max(memory.snapshot().norms) + 1
    words = ["patient", "ledger", "orbit", "salary", "kelp", "status"]
    rng = random.Random(41)
    for i in range(extra):
        terms = [rng.choice(words) for _ in range(rng.randint(3, 8))]
        document = Document(next_id + i, f"live{i}", terms=terms)
        memory.add(document)
        segmented.add(document)
        if (i + 1) % max(1, extra // 8) == 0:
            segmented.flush()
    segmented.flush()
    policy = TieredMergePolicy(max_per_tier=1, floor_docs=256)
    searcher = IndexSearcher(segmented)
    mirror = IndexSearcher(memory)
    merges = 0
    identical = True
    times: list[float] = []
    merge_seconds = 0.0
    while True:
        start = time.perf_counter()
        merged = segmented.maybe_merge(policy)
        merge_seconds += time.perf_counter() - start
        if merged:
            merges += 1
        for query in queries[:10]:
            start = time.perf_counter()
            got = searcher.search(query, top_n=top_n)
            times.append(time.perf_counter() - start)
            if got != mirror.search(query, top_n=top_n):
                identical = False
        if not merged:
            break
    return {
        "extra_documents": extra,
        "merges": merges,
        "merge_seconds": merge_seconds,
        "rankings_identical_during_merge": identical,
        "p50_during_merge": statistics.median(times),
        "final_segment_count": segmented.segment_count,
    }


def run(count: int, sampled_queries: int, repeats: int, top_n: int,
        out_path: Path, segment_dir: Path | None) -> dict:
    owns_dir = segment_dir is None
    if owns_dir:
        segment_dir = Path(tempfile.mkdtemp(prefix="schemr-bench-seg-"))
    try:
        build_start = time.perf_counter()
        memory, segmented, rebuild_seconds = build_both(count, segment_dir)
        build_seconds = time.perf_counter() - build_start
        # Snapshot corpus stats now: the traffic phase below mutates
        # both backends.
        corpus_size = memory.document_count
        term_count = memory.term_count
        segment_count = segmented.segment_count
        mmap_bytes = segmented.mmap_bytes
        queries = build_queries(memory, sampled_queries)

        identical = assert_identical(memory, segmented, queries, top_n)

        cold_opens = [measure_cold_open(segment_dir, queries[0], top_n)
                      for _ in range(max(3, min(repeats, 5)))]
        cold_open_seconds = statistics.median(cold_opens)

        memory_p50 = per_query_p50(IndexSearcher(memory), queries,
                                   top_n, repeats)
        segment_p50 = per_query_p50(IndexSearcher(segmented), queries,
                                    top_n, repeats)

        traffic = merge_under_traffic(memory, segmented, queries, top_n,
                                      extra=max(512, count // 50))

        result = {
            "corpus_size": corpus_size,
            "terms": term_count,
            "queries": len(queries),
            "repeats": repeats,
            "top_n": top_n,
            "build_seconds": build_seconds,
            "segment_count": segment_count,
            "mmap_bytes": mmap_bytes,
            "rebuild_seconds": rebuild_seconds,
            "cold_open_seconds": cold_open_seconds,
            "cold_open_rounds": cold_opens,
            "cold_start_speedup": (rebuild_seconds / cold_open_seconds
                                   if cold_open_seconds else 0.0),
            "rankings_identical": identical,
            "p50_memory_seconds": memory_p50,
            "p50_segments_seconds": segment_p50,
            "p50_ratio": (segment_p50 / memory_p50 if memory_p50 else 0.0),
            "merge_under_traffic": traffic,
        }
        out_path.write_text(json.dumps(result, indent=2) + "\n",
                            encoding="utf-8")
        return result
    finally:
        if owns_dir:
            shutil.rmtree(segment_dir, ignore_errors=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--count", type=int, default=100_000,
                        help="schemas streamed into both backends "
                             "(default 100000; use 20000 for a CI smoke)")
    parser.add_argument("--queries", type=int, default=30,
                        help="sampled queries on top of the fixed one "
                             "(default 30)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="latency measurement rounds (default 3)")
    parser.add_argument("--top-n", type=int, default=50,
                        help="results per query (default 50)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    parser.add_argument("--segment-dir", type=Path, default=None,
                        help="keep segments here instead of a temp dir")
    args = parser.parse_args(argv)

    result = run(args.count, args.queries, args.repeats, args.top_n,
                 args.out, args.segment_dir)
    print(f"corpus: {result['corpus_size']} schemas "
          f"({result['terms']} terms), {result['segment_count']} segments, "
          f"{result['mmap_bytes'] / 1e6:.1f} MB mapped")
    print(f"  rebuild (old cold start): {result['rebuild_seconds']:.3f}s")
    print(f"  mmap open + first query:  {result['cold_open_seconds'] * 1e3:.2f}ms")
    print(f"  cold-start speedup:       {result['cold_start_speedup']:.0f}x")
    print(f"  p50 memory:   {result['p50_memory_seconds'] * 1e3:.3f}ms")
    print(f"  p50 segments: {result['p50_segments_seconds'] * 1e3:.3f}ms "
          f"({result['p50_ratio']:.2f}x)")
    print(f"  rankings identical: {result['rankings_identical']}")
    traffic = result["merge_under_traffic"]
    print(f"  merge under traffic: {traffic['merges']} merges, "
          f"p50 {traffic['p50_during_merge'] * 1e3:.3f}ms, identical: "
          f"{traffic['rankings_identical_during_merge']}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
