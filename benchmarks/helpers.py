"""Shared machinery for the benchmark harness.

Each bench regenerates one paper artefact (figure) or implied
measurement (E1-E4).  Expensive fixtures (generated corpora, populated
repositories) are cached per process so the files can share them, and
every bench writes its report — the paper-style rows — to
``benchmarks/out/<name>.txt`` in addition to printing, so the numbers in
EXPERIMENTS.md are regenerable artifacts.
"""

from __future__ import annotations

from functools import lru_cache
from pathlib import Path

from repro.corpus.domains import DOMAINS
from repro.corpus.filters import FilterStats, paper_filter
from repro.corpus.generator import CorpusGenerator, GeneratedSchema
from repro.corpus.groundtruth import QuerySampler
from repro.repository.store import SchemaRepository

OUT_DIR = Path(__file__).parent / "out"

#: The paper's running example query (Section 1 / Figure 2).
PAPER_KEYWORDS = "patient, height, gender, diagnosis"

#: The DDL fragment a designer would paste next to those keywords.
PAPER_FRAGMENT = """
CREATE TABLE patient (
  id INTEGER PRIMARY KEY,
  height DECIMAL(5,2),
  gender CHAR(1)
);
"""


def report(name: str, text: str) -> None:
    """Print a bench report and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n=== {name} ===")
    print(text)


@lru_cache(maxsize=4)
def generated_corpus(count: int, seed: int = 42) -> tuple[FilterStats, ...]:
    """Raw stream of ``count`` schemas pushed through the paper filter.

    Returned as a 1-tuple so lru_cache has a hashable value to hold.
    """
    generator = CorpusGenerator(seed=seed)
    stats = paper_filter(generator.generate_raw_stream(count))
    return (stats,)


@lru_cache(maxsize=4)
def corpus_repository(count: int, seed: int = 42) \
        -> tuple[SchemaRepository, tuple[GeneratedSchema, ...]]:
    """A repository populated and indexed with a filtered corpus."""
    (stats,) = generated_corpus(count, seed)
    repo = SchemaRepository.in_memory()
    for generated in stats.kept:
        repo.add_schema(generated.schema)
    repo.reindex()
    return repo, tuple(stats.kept)


def sampler_for(corpus: tuple[GeneratedSchema, ...],
                seed: int = 17) -> QuerySampler:
    return QuerySampler(list(corpus), DOMAINS, seed=seed)
