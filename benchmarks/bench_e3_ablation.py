"""E3 — ablations of the design choices DESIGN.md calls out.

1. coordination factor on/off (phase-1 reward for matching more terms);
2. tightness-of-fit on/off (structure-aware vs flat aggregation);
3. sum vs mean aggregation (the paper's formula vs its prose);
4. penalty magnitude sweep;
5. uniform vs learned ensemble weights (meta-learner on recorded
   search history).
"""

from repro.core.config import SchemrConfig
from repro.eval.runner import EvaluationReport, evaluate_engine
from repro.matching.ensemble import MatcherEnsemble
from repro.matching.learner import TrainingExample, WeightLearner
from repro.model.query import QueryGraph
from repro.scoring.tightness import PenaltyPolicy

from benchmarks.helpers import corpus_repository, report, sampler_for

CORPUS_SIZE = 2000
QUERY_COUNT = 25


def _queries(corpus, channel="clean"):
    return sampler_for(corpus, seed=29).sample(QUERY_COUNT,
                                               channel=channel)


def test_e3_pipeline_ablations_report(benchmark):
    # Keep report generation alive under --benchmark-only.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    repo, corpus = corpus_repository(CORPUS_SIZE)
    queries = _queries(corpus) + _queries(corpus, channel="abbreviated")
    configs = [
        ("full (sum, coord on)", SchemrConfig()),
        ("no coordination", SchemrConfig(use_coordination=False)),
        ("no tightness", SchemrConfig(use_tightness=False)),
        ("mean aggregation", SchemrConfig(
            penalties=PenaltyPolicy(aggregation="mean"))),
        ("zero penalties", SchemrConfig(penalties=PenaltyPolicy(
            neighborhood_penalty=0.0, unrelated_penalty=0.0))),
        ("harsh penalties", SchemrConfig(penalties=PenaltyPolicy(
            neighborhood_penalty=0.3, unrelated_penalty=0.8))),
    ]
    lines = [
        "E3a: pipeline ablations (50 mixed clean+abbreviated queries)",
        "",
        EvaluationReport.header(),
    ]
    results = {}
    for label, config in configs:
        rep = evaluate_engine(repo.engine(config=config), queries,
                              label=label)
        results[label] = rep
        lines.append(rep.row())
    # Significance of the headline comparison (sum vs mean), paired by
    # query on reciprocal rank.
    from repro.eval.metrics import reciprocal_rank
    from repro.eval.significance import paired_bootstrap, per_query_scores

    def ranker(config):
        engine = repo.engine(config=config)
        return lambda keywords, top_n: [
            r.schema_id
            for r in engine.search(keywords=keywords, top_n=top_n)]

    sum_scores = per_query_scores(ranker(SchemrConfig()), queries,
                                  reciprocal_rank)
    mean_scores = per_query_scores(
        ranker(SchemrConfig(penalties=PenaltyPolicy(aggregation="mean"))),
        queries, reciprocal_rank)
    comparison = paired_bootstrap(sum_scores, mean_scores,
                                  iterations=3000)
    lines.append("")
    lines.append("sum vs mean aggregation, paired bootstrap on MRR: "
                 + comparison.summary())
    report("e3_ablation_pipeline", "\n".join(lines))
    # Shapes: structural scoring must not hurt, and the sum form must
    # beat the mean form (it rewards breadth of match).
    assert results["full (sum, coord on)"].mrr >= \
        results["mean aggregation"].mrr - 0.05
    assert results["full (sum, coord on)"].map_score >= \
        results["no tightness"].map_score - 0.05
    assert comparison.delta >= 0


def _record_history(repo, corpus, engine) -> list[TrainingExample]:
    """Simulated usage: clicks land on exact-template results."""
    import random
    rng = random.Random(53)
    examples = []
    all_ids = [g.schema.schema_id for g in corpus]
    for query in sampler_for(corpus, seed=31).sample(30):
        graph = QueryGraph.build(keywords=query.keywords)
        shown = [r.schema_id
                 for r in engine.search(keywords=query.keywords, top_n=5)]
        # Off-topic impressions the user scrolled past without clicking:
        # the negative class of real click logs.
        negatives = [schema_id for schema_id in rng.sample(all_ids, 8)
                     if schema_id not in query.relevant_ids][:5]
        for schema_id in shown + negatives:
            schema = repo.get_schema(schema_id)
            per_matcher = engine.ensemble.match(graph, schema).per_matcher
            features = {name: float(matrix.values.max())
                        for name, matrix in per_matcher.items()}
            examples.append(TrainingExample(
                features=features,
                relevant=schema_id in query.exact_ids))
    return examples


def test_e3_learned_weights_report(benchmark):
    # Keep report generation alive under --benchmark-only.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    repo, corpus = corpus_repository(CORPUS_SIZE)
    uniform_engine = repo.engine()
    examples = _record_history(repo, corpus, uniform_engine)
    learner = WeightLearner(uniform_engine.ensemble.matcher_names)
    learner.fit(examples)
    learned = learner.weights()

    queries = _queries(corpus, channel="abbreviated")
    uniform_report = evaluate_engine(repo.engine(), queries,
                                     label="uniform weights")
    learned_ensemble = MatcherEnsemble.default()
    learned_ensemble.set_weights(learned)
    learned_report = evaluate_engine(
        repo.engine(ensemble=learned_ensemble), queries,
        label="learned weights")

    lines = [
        "E3b: uniform vs learned ensemble weights "
        "(logistic regression over simulated search history)",
        f"training examples: {len(examples)} "
        f"(relevant: {sum(e.relevant for e in examples)})",
        f"learned weights: "
        + ", ".join(f"{k}={v:.3f}" for k, v in learned.items()),
        f"training accuracy: {learner.accuracy(examples):.3f}",
        "",
        EvaluationReport.header(),
        uniform_report.row(),
        learned_report.row(),
    ]
    report("e3_ablation_weights", "\n".join(lines))
    assert learned_report.mrr >= uniform_report.mrr - 0.1


def test_e3_fuzzy_expansion_report(benchmark):
    """The fuzzy-expansion extension vs the paper's plain phase one, on
    the typo channel (query noise the corpus never contains)."""
    # Keep report generation alive under --benchmark-only.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    repo, corpus = corpus_repository(CORPUS_SIZE)
    queries = _queries(corpus, channel="typo")
    plain = evaluate_engine(repo.engine(), queries,
                            label="plain phase 1")
    fuzzy = evaluate_engine(
        repo.engine(config=SchemrConfig(use_fuzzy_expansion=True)),
        queries, label="fuzzy expansion")
    lines = [
        "E3c: fuzzy query-term expansion (extension) on typo queries",
        "",
        EvaluationReport.header(),
        plain.row(),
        fuzzy.row(),
    ]
    report("e3_ablation_fuzzy", "\n".join(lines))
    assert fuzzy.mrr >= plain.mrr
    assert fuzzy.precision_at_5 >= plain.precision_at_5


def test_e3_full_engine_benchmark(benchmark):
    repo, corpus = corpus_repository(CORPUS_SIZE)
    engine = repo.engine()
    query = _queries(corpus)[0]
    results = benchmark(engine.search, query.keywords, None, 10)
    assert results is not None
