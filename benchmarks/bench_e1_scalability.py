"""E1 — the Applications claim: a repository of 30,000 filtered schemas.

Reproduces the corpus pipeline at 1k / 5k / 30k raw schemas: the paper's
filter accounting, index build cost, index size, and query latency
scaling.  The headline benchmark times a query over the full 30k-scale
index.
"""

import time

import pytest

from repro.index.documents import document_from_schema
from repro.index.inverted import InvertedIndex
from repro.index.searcher import IndexSearcher

from benchmarks.helpers import generated_corpus, report

SIZES = (1000, 5000, 30000)
QUERY = ["patient", "height", "gender", "diagnosis"]


def build_index(kept) -> InvertedIndex:
    index = InvertedIndex()
    for i, generated in enumerate(kept, start=1):
        if generated.schema.schema_id is None:
            generated.schema.schema_id = i
        index.add(document_from_schema(generated.schema))
    return index


def test_e1_report(benchmark):
    # Keep report generation alive under --benchmark-only.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        "E1: corpus filter + index scaling (paper: 30,000 public schemas "
        "filtered from a 10M-table crawl)",
        "",
        f"{'raw':>7} {'kept':>7} {'nonalpha':>9} {'single':>7} "
        f"{'trivial':>8} {'index_s':>8} {'terms':>8} {'query_ms':>9}",
    ]
    for size in SIZES:
        (stats,) = generated_corpus(size)
        start = time.perf_counter()
        index = build_index(stats.kept)
        build_seconds = time.perf_counter() - start
        searcher = IndexSearcher(index)
        start = time.perf_counter()
        for _ in range(10):
            searcher.search(QUERY, top_n=50)
        query_ms = (time.perf_counter() - start) / 10 * 1000
        lines.append(
            f"{stats.total:>7} {stats.kept_count:>7} "
            f"{stats.dropped_nonalpha:>9} {stats.dropped_singleton:>7} "
            f"{stats.dropped_trivial:>8} {build_seconds:>8.2f} "
            f"{index.term_count:>8} {query_ms:>9.2f}")
    report("e1_scalability", "\n".join(lines))


def test_e1_query_at_30k_benchmark(benchmark):
    (stats,) = generated_corpus(30000)
    index = build_index(stats.kept)
    searcher = IndexSearcher(index)
    hits = benchmark(searcher.search, QUERY, 50)
    assert hits


@pytest.mark.parametrize("size", [1000, 5000])
def test_e1_index_build_benchmark(benchmark, size):
    (stats,) = generated_corpus(size)
    index = benchmark.pedantic(build_index, args=(stats.kept,),
                               rounds=1, iterations=1)
    assert index.document_count == stats.kept_count
