"""Phase-1 acceleration bench: naive vs packed vs pruned vs warm cache.

Times candidate extraction (the paper's "fast and scalable filter for
relevant candidate schemas") over a generated corpus in four searcher
configurations sharing one inverted index:

* ``naive`` — the reference loop: per-posting view objects, dict
  accumulators, the exception-raising norm accessor (the seed hot path);
* ``packed`` — the same exhaustive accumulation order over the packed
  doc-id/frequency columns with a plain-dict norms snapshot;
* ``pruned`` — MaxScore-style dynamic pruning: descending upper-bound
  term order, maintained top-k threshold, accumulator-only probing of
  the remaining lists, dense array accumulators;
* ``cached`` — the pruned searcher behind a warm generation-aware
  :class:`~repro.index.cache.QueryCache` (every measured query is a
  repeat, so this is the steady-state repeated/paged-query cost).

Every mode's rankings are asserted byte-identical to naive during the
run.  Per mode, one *round* runs the whole query set and sums wall
time; the reported figure is the median over ``--repeats`` rounds,
rounds interleaved across modes so scheduler drift hits every mode
equally.  Results go to ``BENCH_phase1.json`` at the repository root.

Run (from the repository root)::

    PYTHONPATH=src python benchmarks/bench_phase1_candidates.py              # >=10k docs
    PYTHONPATH=src python benchmarks/bench_phase1_candidates.py --count 1200 # CI smoke
"""

from __future__ import annotations

import argparse
import json
import re
import statistics
import sys
import time
from pathlib import Path

from repro.index.cache import QueryCache
from repro.index.documents import document_from_schema
from repro.index.inverted import InvertedIndex
from repro.index.searcher import IndexSearcher

from benchmarks.helpers import PAPER_KEYWORDS, generated_corpus, sampler_for

ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = ROOT / "BENCH_phase1.json"


def build_index(count: int) -> tuple[InvertedIndex, tuple]:
    """An inverted index over the filtered corpus (no repository —
    phase 1 never touches SQLite)."""
    (stats,) = generated_corpus(count)
    index = InvertedIndex()
    for i, generated in enumerate(stats.kept, start=1):
        schema = generated.schema
        schema.schema_id = i
        index.add(document_from_schema(schema))
    return index, tuple(stats.kept)


def build_queries(corpus: tuple, sampled: int) -> list[list[str]]:
    """The paper's running query plus sampled ground-truth queries."""
    queries = [re.split(r"[,\s]+", PAPER_KEYWORDS.strip())]
    sampler = sampler_for(corpus)
    for query in sampler.sample(sampled, channel="clean"):
        queries.append(list(query.keywords))
    return queries


def time_round(searcher: IndexSearcher, queries: list[list[str]],
               top_n: int) -> float:
    start = time.perf_counter()
    for query in queries:
        searcher.search(query, top_n=top_n)
    return time.perf_counter() - start


def run(count: int, sampled_queries: int, repeats: int, top_n: int,
        out_path: Path) -> dict:
    index, corpus = build_index(count)
    queries = build_queries(corpus, sampled_queries)

    searchers = {
        "naive": IndexSearcher(index, strategy="naive"),
        "packed": IndexSearcher(index, strategy="packed"),
        "pruned": IndexSearcher(index, strategy="pruned"),
        "cached": IndexSearcher(index, strategy="pruned",
                                query_cache=QueryCache(max(64, len(queries)))),
    }

    # Golden check first: every mode must reproduce naive byte for byte
    # (this also warms the cached mode, so its measured rounds are the
    # steady-state repeated-query cost).
    identical = True
    for query in queries:
        expected = searchers["naive"].search(query, top_n=top_n)
        for name in ("packed", "pruned", "cached"):
            if searchers[name].search(query, top_n=top_n) != expected:
                identical = False
    if not identical:
        raise AssertionError(
            "acceleration produced a different ranking than naive")

    rounds: dict[str, list[float]] = {name: [] for name in searchers}
    for _ in range(repeats):
        for name, searcher in searchers.items():
            rounds[name].append(time_round(searcher, queries, top_n))
    modes = {
        name: {
            "seconds": statistics.median(times),
            "rounds": times,
        }
        for name, times in rounds.items()
    }

    naive_s = modes["naive"]["seconds"]
    result = {
        "corpus_size": index.document_count,
        "terms": index.term_count,
        "queries": len(queries),
        "repeats": repeats,
        "top_n": top_n,
        "rankings_identical": identical,
        "cache_hit_rate": searchers["cached"].query_cache.hit_rate,
        "modes": modes,
        "speedup": {
            "packed_vs_naive":
                naive_s / modes["packed"]["seconds"]
                if modes["packed"]["seconds"] else 0.0,
            "pruned_vs_naive":
                naive_s / modes["pruned"]["seconds"]
                if modes["pruned"]["seconds"] else 0.0,
            "warm_cache_vs_naive":
                naive_s / modes["cached"]["seconds"]
                if modes["cached"]["seconds"] else 0.0,
        },
    }
    out_path.write_text(json.dumps(result, indent=2) + "\n",
                        encoding="utf-8")
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--count", type=int, default=12000,
                        help="raw corpus size fed to the paper filter "
                             "(default 12000, which keeps >=10k docs; "
                             "use 1200 for a CI smoke)")
    parser.add_argument("--queries", type=int, default=30,
                        help="sampled ground-truth queries on top of the "
                             "paper query (default 30)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="measurement rounds per mode (default 5)")
    parser.add_argument("--top-n", type=int, default=50,
                        help="candidates retrieved per query (default 50, "
                             "the engine's candidate_pool default)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    args = parser.parse_args(argv)

    result = run(args.count, args.queries, args.repeats, args.top_n,
                 args.out)
    speedup = result["speedup"]
    print(f"corpus: {result['corpus_size']} schemas "
          f"({result['terms']} terms), {result['queries']} queries x "
          f"{result['repeats']} rounds, top_n={result['top_n']}")
    for mode, stats in result["modes"].items():
        print(f"  {mode:>7}: {stats['seconds']:.4f}s per round")
    print(f"  packed vs naive:     {speedup['packed_vs_naive']:.2f}x")
    print(f"  pruned vs naive:     {speedup['pruned_vs_naive']:.2f}x")
    print(f"  warm cache vs naive: {speedup['warm_cache_vs_naive']:.2f}x")
    print(f"  rankings identical:  {result['rankings_identical']}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
