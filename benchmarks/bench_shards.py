"""Process-sharded serving bench: worker-pool QPS vs the single engine.

Builds a repository-scale corpus (default 20k schemas, streamed in
bounded memory) into a file-backed repository, then measures the
numbers the worker pool exists for:

* ``qps`` / ``p50`` / ``p99`` — closed-loop saturation throughput and
  latency at 1/2/4 shard workers vs the single-process engine, same
  query mix, same concurrency;
* ``rankings_identical`` — every measured arm re-checks that the
  sharded scatter-gather returns rankings byte-identical to the
  single-process engine, including the merge-under-traffic and
  kill-a-worker phases;
* ``kill_worker`` — a worker is SIGKILLed mid-loop: responses must
  stay byte-identical (local repair) and never empty, and the pool
  must respawn the worker.

The speedup ceiling is ``os.cpu_count()``: worker processes only beat
the GIL when there are cores to run them on.  The result records the
host's count so the CI gate can condition on it — on a 1-CPU
container the pool adds IPC overhead and *cannot* win; the honest
expectation there is "no catastrophic regression + strict
equivalence", not a speedup.

Run (from the repository root)::

    PYTHONPATH=src python benchmarks/bench_shards.py                # 20k schemas
    PYTHONPATH=src python benchmarks/bench_shards.py --count 4000   # quick smoke
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import signal
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.core.config import SchemrConfig
from repro.corpus.generator import CorpusGenerator
from repro.repository.store import SchemaRepository
from repro.sharding import ShardedEngine

ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = ROOT / "BENCH_shards.json"


def build_corpus(db_path: str, count: int, seed: int = 7) -> int:
    generator = CorpusGenerator(seed=seed)
    repo = SchemaRepository(db_path)
    for generated in generator.stream(count, include_junk=True):
        repo.add_schema(generated.schema)
    stored = repo.schema_count
    repo.close()
    return stored


def build_queries(engine, sampled: int, seed: int = 23) -> list[list[str]]:
    """Queries drawn from indexed document vocabularies (1-4 terms)."""
    rng = random.Random(seed)
    index = engine.searcher.index
    documents = sorted(index.documents(), key=lambda d: d.doc_id)
    queries = [["patient", "name", "address", "diagnosis"]]
    for _ in range(sampled):
        document = rng.choice(documents)
        terms = document.terms or ["patient"]
        k = min(len(terms), rng.randint(1, 4))
        queries.append(list(dict.fromkeys(rng.sample(terms, k))))
    return queries


def golden_pages(engine, queries: list[list[str]], top_n: int) -> list:
    return [engine.search(keywords=query, top_n=top_n)
            for query in queries]


def rankings_identical(engine, queries: list[list[str]], golden: list,
                       top_n: int) -> bool:
    return golden_pages(engine, queries, top_n) == golden


def closed_loop(engine, queries: list[list[str]], golden: list,
                top_n: int, threads: int, duration: float) -> dict:
    """Saturation: ``threads`` clients issue queries back-to-back for
    ``duration`` seconds; every response is checked against golden."""
    stop_at = time.perf_counter() + duration
    lock = threading.Lock()
    latencies: list[float] = []
    completed = [0]
    mismatches = [0]
    empties = [0]
    errors = [0]

    def client(worker_id: int) -> None:
        rng = random.Random(1000 + worker_id)
        while time.perf_counter() < stop_at:
            i = rng.randrange(len(queries))
            start = time.perf_counter()
            try:
                results = engine.search(keywords=queries[i], top_n=top_n)
            except Exception:
                with lock:
                    errors[0] += 1
                continue
            elapsed = time.perf_counter() - start
            with lock:
                latencies.append(elapsed)
                completed[0] += 1
                if results != golden[i]:
                    mismatches[0] += 1
                if not results and golden[i]:
                    empties[0] += 1

    pool = [threading.Thread(target=client, args=(i,), daemon=True)
            for i in range(threads)]
    started = time.perf_counter()
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    wall = time.perf_counter() - started
    latencies.sort()
    return {
        "threads": threads,
        "duration_seconds": wall,
        "completed": completed[0],
        "errors": errors[0],
        "qps": completed[0] / wall if wall else 0.0,
        "p50_seconds": statistics.median(latencies) if latencies else 0.0,
        "p99_seconds": (latencies[int(len(latencies) * 0.99)]
                        if latencies else 0.0),
        "rankings_identical": mismatches[0] == 0,
        "empty_responses": empties[0],
    }


def kill_worker_phase(engine, queries: list[list[str]], golden: list,
                      top_n: int, threads: int, duration: float) -> dict:
    """SIGKILL a worker mid-loop; serving must stay byte-identical."""
    victim = engine.pool.workers[0]
    pid_before = victim.pid

    def assassin() -> None:
        time.sleep(duration / 3.0)
        try:
            os.kill(pid_before, signal.SIGKILL)
        except ProcessLookupError:  # already gone
            pass

    killer = threading.Thread(target=assassin, daemon=True)
    killer.start()
    loop = closed_loop(engine, queries, golden, top_n, threads, duration)
    killer.join()
    # Give the gate-respawn path one more query to promote the fresh
    # process, then confirm the pool healed.
    engine.search(keywords=queries[0], top_n=top_n)
    respawned = engine.pool.usable(0, ready_timeout=5.0)
    loop.update({
        "killed_pid": pid_before,
        "worker_respawned": bool(respawned),
        "worker_restarts": victim.restarts,
    })
    return loop


def merge_under_traffic(engine, flat_engine, writer: SchemaRepository,
                        engine_repo: SchemaRepository,
                        flat_repo: SchemaRepository,
                        queries: list[list[str]], top_n: int,
                        batches: int, batch_size: int,
                        seed: int = 41) -> dict:
    """Interleave delta batches (add + refresh, segment merges and
    worker reopens included) with equivalence re-checks."""
    generator = CorpusGenerator(seed=seed)
    identical = True
    refresh_seconds = 0.0
    for _ in range(batches):
        for generated in generator.stream(batch_size):
            writer.add_schema(generated.schema)
        start = time.perf_counter()
        flat_repo.indexer().refresh()
        engine_repo.indexer().refresh()
        refresh_seconds += time.perf_counter() - start
        golden = golden_pages(flat_engine, queries[:10], top_n)
        if not rankings_identical(engine, queries[:10], golden, top_n):
            identical = False
    return {
        "batches": batches,
        "batch_size": batch_size,
        "refresh_seconds": refresh_seconds,
        "rankings_identical_during_merge": identical,
    }


def run(count: int, sampled_queries: int, top_n: int, threads: int,
        duration: float, shard_counts: list[int], out_path: Path) -> dict:
    workdir = Path(tempfile.mkdtemp(prefix="schemr-bench-shards-"))
    db_path = str(workdir / "repo.db")
    config_kwargs = dict(candidate_pool=60)
    try:
        build_start = time.perf_counter()
        corpus_size = build_corpus(db_path, count)
        build_seconds = time.perf_counter() - build_start

        flat_repo = SchemaRepository(db_path)
        flat_engine = flat_repo.engine(config=SchemrConfig(
            segment_dir=str(workdir / "flat"), **config_kwargs))
        queries = build_queries(flat_engine, sampled_queries)
        golden = golden_pages(flat_engine, queries, top_n)

        single = closed_loop(flat_engine, queries, golden, top_n,
                             threads, duration)

        arms: dict[str, dict] = {}
        for shards in shard_counts:
            repo = SchemaRepository(db_path)
            engine = ShardedEngine(repo, config=SchemrConfig(
                segment_dir=str(workdir / f"sharded_{shards}"),
                shards=shards, **config_kwargs))
            arm = closed_loop(engine, queries, golden, top_n,
                              threads, duration)
            arm["equivalence_recheck"] = rankings_identical(
                engine, queries, golden, top_n)
            if shards == max(shard_counts):
                arm["kill_worker"] = kill_worker_phase(
                    engine, queries, golden, top_n, threads,
                    max(2.0, duration / 2.0))
                writer = SchemaRepository(db_path)
                arm["merge_under_traffic"] = merge_under_traffic(
                    engine, flat_engine, writer, repo, flat_repo,
                    queries, top_n, batches=3,
                    batch_size=max(64, count // 100))
                writer.close()
            arms[str(shards)] = arm
            engine.close()
            repo.close()

        max_arm = arms[str(max(shard_counts))]
        result = {
            "corpus_size": corpus_size,
            "queries": len(queries),
            "top_n": top_n,
            "threads": threads,
            "duration_seconds": duration,
            "cpu_count": os.cpu_count(),
            "build_seconds": build_seconds,
            "single_process": single,
            "sharded": arms,
            "qps_speedup_max_shards": (max_arm["qps"] / single["qps"]
                                       if single["qps"] else 0.0),
            "qps_speedup_max_vs_one_worker": (
                max_arm["qps"] / arms[str(min(shard_counts))]["qps"]
                if arms[str(min(shard_counts))]["qps"] else 0.0),
            "all_rankings_identical": all(
                arm["rankings_identical"] and arm["equivalence_recheck"]
                for arm in arms.values()),
            "note": ("worker processes need cores: on hosts with "
                     "cpu_count < shards the pool pays IPC overhead "
                     "with no parallelism to buy back, so the speedup "
                     "gate only applies when cpu_count >= 4"),
        }
        flat_engine.close()
        flat_repo.close()
        out_path.write_text(json.dumps(result, indent=2) + "\n",
                            encoding="utf-8")
        return result
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--count", type=int, default=20_000,
                        help="schemas streamed into the repository "
                             "(default 20000)")
    parser.add_argument("--queries", type=int, default=30,
                        help="sampled queries on top of the fixed one "
                             "(default 30)")
    parser.add_argument("--top-n", type=int, default=10,
                        help="results per query (default 10)")
    parser.add_argument("--threads", type=int, default=4,
                        help="closed-loop client threads (default 4)")
    parser.add_argument("--duration", type=float, default=6.0,
                        help="seconds per closed-loop arm (default 6)")
    parser.add_argument("--shards", type=int, nargs="+",
                        default=[1, 2, 4],
                        help="shard counts to measure (default 1 2 4)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    args = parser.parse_args(argv)

    result = run(args.count, args.queries, args.top_n, args.threads,
                 args.duration, args.shards, args.out)
    single = result["single_process"]
    print(f"corpus: {result['corpus_size']} schemas, "
          f"{result['cpu_count']} cpu(s), {result['threads']} client "
          f"thread(s), {result['duration_seconds']:.0f}s per arm")
    print(f"  single-process: {single['qps']:.1f} qps, "
          f"p50 {single['p50_seconds'] * 1e3:.2f}ms, "
          f"p99 {single['p99_seconds'] * 1e3:.2f}ms")
    for shards, arm in result["sharded"].items():
        print(f"  {shards} worker(s):    {arm['qps']:.1f} qps, "
              f"p50 {arm['p50_seconds'] * 1e3:.2f}ms, "
              f"p99 {arm['p99_seconds'] * 1e3:.2f}ms, identical: "
              f"{arm['rankings_identical']}")
        if "kill_worker" in arm:
            kill = arm["kill_worker"]
            print(f"    kill-a-worker: identical {kill['rankings_identical']}, "
                  f"empty {kill['empty_responses']}, respawned "
                  f"{kill['worker_respawned']}")
        if "merge_under_traffic" in arm:
            merge = arm["merge_under_traffic"]
            print(f"    merge-under-traffic: identical "
                  f"{merge['rankings_identical_during_merge']}")
    print(f"  speedup at {max(int(s) for s in result['sharded'])} workers: "
          f"{result['qps_speedup_max_shards']:.2f}x "
          f"(ceiling: {result['cpu_count']} cpu)")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
