"""F2 — Figure 2: search results for a keyword + schema fragment query.

Runs the paper's health-clinic query over a generated repository and
prints the tabular view (name, score, matches, entities, attributes,
description), then benchmarks the end-to-end search.
"""

from repro.core.results import format_result_table

from benchmarks.helpers import (
    PAPER_FRAGMENT,
    PAPER_KEYWORDS,
    corpus_repository,
    report,
)

CORPUS_SIZE = 2000


def test_fig2_report(benchmark):
    # Keep report generation alive under --benchmark-only.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    repo, _corpus = corpus_repository(CORPUS_SIZE)
    engine = repo.engine()
    results = engine.search(keywords=PAPER_KEYWORDS,
                            fragment=PAPER_FRAGMENT, top_n=10)
    lines = [
        "Figure 2: results for keyword + fragment query",
        f"keywords: {PAPER_KEYWORDS}",
        "fragment: CREATE TABLE patient (id, height, gender)",
        "",
        format_result_table(results),
        "",
        f"best anchor of top hit: {results[0].best_anchor}",
        "top element matches:",
    ]
    for match in results[0].top_matches(8):
        lines.append(f"  {match.query_label:<24} -> "
                     f"{match.element_path:<40} {match.score:.3f}")
    report("fig2_search_results", "\n".join(lines))
    # The healthcare domain must dominate the first page.
    top_names = " ".join(r.name for r in results[:5])
    assert "healthcare" in top_names


def test_fig2_search_benchmark(benchmark):
    repo, _corpus = corpus_repository(CORPUS_SIZE)
    engine = repo.engine()
    results = benchmark(engine.search, PAPER_KEYWORDS, PAPER_FRAGMENT, 10)
    assert results
