"""Resilience bench: degraded-mode latency and quality under budgets.

The resilience layer's contract is twofold:

* **budgeted searches come back near their budget** — the deadline is
  checked between phases and per candidate in the scoring loop, so the
  overrun is bounded by one candidate's match cost, not a whole phase;
* **degraded responses are never empty when phase 1 had hits** — the
  ladder falls through reduced-pool -> name-only -> phase-1 ranking,
  and the phase-1 fallback always carries the TF/IDF results.

To exercise the ladder deterministically on small CI corpora, the bench
arms the fault injector with a fixed per-candidate delay
(``--match-delay-ms``, simulating the per-candidate cost of a large
ensemble) and drives the same query set through engines whose only
difference is ``search_budget_seconds``.  Degraded-mode quality is
reported as top-10 overlap against the unbudgeted engine's ranking.

A second section measures load shedding directly: a thread burst
against a small :class:`AdmissionController` must come back as exactly
``admitted + rejected`` with nothing lost or hung.

Results go to ``BENCH_resilience.json`` at the repository root; the CI
chaos-smoke job gates on ``within_budget_fraction`` and
``empty_with_hits`` (must be 0).

Run (from the repository root)::

    PYTHONPATH=src:. python benchmarks/bench_resilience.py                 # full
    PYTHONPATH=src:. python benchmarks/bench_resilience.py --count 400 \
        --queries 10 --out bench_resilience_smoke.json                     # CI smoke
"""

from __future__ import annotations

import argparse
import json
import statistics
import threading
import time
from pathlib import Path

from repro.core.config import SchemrConfig
from repro.errors import AdmissionRejected
from repro.resilience import AdmissionController
from repro.resilience.faults import FAULTS

from benchmarks.helpers import corpus_repository, report, sampler_for

ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = ROOT / "BENCH_resilience.json"

#: Budgets swept, seconds; None = unlimited reference engine.
BUDGETS = (None, 0.25, 0.05, 0.01)

#: Tolerance for the within-budget check: the deadline is consulted per
#: candidate, so a search may overrun by one candidate's (injected)
#: match cost plus phase-3/serialization tail.
BUDGET_SLACK_SECONDS = 0.030


def build_queries(corpus, count: int) -> list[list[str]]:
    sampler = sampler_for(corpus)
    return [list(q.keywords)
            for q in sampler.sample(count, channel="clean")]


def run_budget_sweep(repo, queries: list[list[str]],
                     match_delay_ms: float) -> list[dict]:
    """Drive the query set through one engine per budget."""
    reference_top10: list[list[int]] = []
    rows: list[dict] = []
    for budget in BUDGETS:
        engine = repo.engine(config=SchemrConfig(
            search_budget_seconds=budget))
        # warm profile/query caches so the sweep measures the pipeline,
        # not cold io, then arm the per-candidate delay
        engine.search(keywords=" ".join(queries[0]))
        FAULTS.reset()
        if match_delay_ms > 0:
            FAULTS.inject("engine.match_one",
                          delay_seconds=match_delay_ms / 1000.0)
        latencies: list[float] = []
        degradation_counts: dict[str, int] = {}
        empty_with_hits = 0
        overlaps: list[float] = []
        for i, keywords in enumerate(queries):
            started = time.perf_counter()
            results = engine.search(keywords=" ".join(keywords))
            latencies.append(time.perf_counter() - started)
            profile = engine.last_profile
            degradation_counts[profile.degradation] = \
                degradation_counts.get(profile.degradation, 0) + 1
            if profile.candidate_count > 0 and not results:
                empty_with_hits += 1
            top10 = [r.schema_id for r in results[:10]]
            if budget is None:
                reference_top10.append(top10)
            elif reference_top10[i]:
                overlaps.append(
                    len(set(top10) & set(reference_top10[i]))
                    / len(reference_top10[i]))
        FAULTS.reset()
        engine.close()
        within = (1.0 if budget is None else
                  sum(1 for s in latencies
                      if s <= budget + BUDGET_SLACK_SECONDS)
                  / len(latencies))
        rows.append({
            "budget_seconds": budget,
            "p50_ms": statistics.median(latencies) * 1000.0,
            "p95_ms": sorted(latencies)[
                max(0, int(len(latencies) * 0.95) - 1)] * 1000.0,
            "max_ms": max(latencies) * 1000.0,
            "within_budget_fraction": within,
            "degradation_counts": degradation_counts,
            "empty_with_hits": empty_with_hits,
            "top10_overlap_vs_full": (statistics.median(overlaps)
                                      if overlaps else None),
        })
    return rows


def run_shedding_burst(burst: int = 32, max_concurrent: int = 4) -> dict:
    """A thread burst against a small controller: nothing lost or hung."""
    admission = AdmissionController(max_concurrent=max_concurrent,
                                    queue_size=0)
    outcomes = {"admitted": 0, "rejected": 0}
    lock = threading.Lock()
    barrier = threading.Barrier(burst)

    def worker() -> None:
        barrier.wait()
        try:
            with admission.admitted():
                time.sleep(0.01)
        except AdmissionRejected:
            with lock:
                outcomes["rejected"] += 1
        else:
            with lock:
                outcomes["admitted"] += 1

    threads = [threading.Thread(target=worker) for _ in range(burst)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    return {
        "burst": burst,
        "max_concurrent": max_concurrent,
        "admitted": outcomes["admitted"],
        "rejected": outcomes["rejected"],
        "accounted": outcomes["admitted"] + outcomes["rejected"] == burst,
        "controller_drained": admission.active == 0,
    }


def format_report(result: dict) -> str:
    lines = [
        f"corpus: {result['count']} schemas, {result['queries']} queries, "
        f"{result['match_delay_ms']:.1f}ms injected per-candidate delay",
        "",
        f"{'budget':>10} {'p50':>9} {'p95':>9} {'max':>9} "
        f"{'in-budget':>10} {'overlap@10':>11}  degradations",
    ]
    for row in result["budgets"]:
        budget = ("unlimited" if row["budget_seconds"] is None
                  else f"{row['budget_seconds'] * 1000:.0f}ms")
        overlap = (f"{row['top10_overlap_vs_full']:.2f}"
                   if row["top10_overlap_vs_full"] is not None else "ref")
        degradations = ", ".join(
            f"{name}={n}"
            for name, n in sorted(row["degradation_counts"].items()))
        lines.append(
            f"{budget:>10} {row['p50_ms']:>7.1f}ms {row['p95_ms']:>7.1f}ms "
            f"{row['max_ms']:>7.1f}ms {row['within_budget_fraction']:>10.2f} "
            f"{overlap:>11}  {degradations}")
    shed = result["shedding"]
    lines += [
        "",
        f"shedding burst: {shed['burst']} threads vs "
        f"{shed['max_concurrent']} slots -> {shed['admitted']} admitted, "
        f"{shed['rejected']} shed "
        f"(accounted={shed['accounted']}, "
        f"drained={shed['controller_drained']})",
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--count", type=int, default=2000,
                        help="corpus size (schemas)")
    parser.add_argument("--queries", type=int, default=25)
    parser.add_argument("--match-delay-ms", type=float, default=2.0,
                        help="injected per-candidate match delay")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    repo, corpus = corpus_repository(args.count)
    queries = build_queries(corpus, args.queries)
    result = {
        "count": args.count,
        "queries": len(queries),
        "match_delay_ms": args.match_delay_ms,
        "budgets": run_budget_sweep(repo, queries, args.match_delay_ms),
        "shedding": run_shedding_burst(),
    }
    args.out.write_text(json.dumps(result, indent=2) + "\n",
                        encoding="utf-8")
    report("bench_resilience", format_report(result))
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
