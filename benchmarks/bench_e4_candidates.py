"""E4 — candidate extraction as a "fast and scalable filter".

Two claims to quantify:

* recall preservation — how often the best (grade-2) schema survives
  into the top-n candidate pool, as n shrinks;
* the latency win — full fine-grained matching over every schema in the
  repository vs the filtered pipeline.
"""

import time

from repro.core.config import SchemrConfig
from repro.index.searcher import IndexSearcher
from repro.matching.ensemble import MatcherEnsemble
from repro.model.query import QueryGraph
from repro.scoring.tightness import TightnessScorer

from benchmarks.helpers import corpus_repository, report, sampler_for

CORPUS_SIZE = 2000
POOL_SIZES = (5, 10, 25, 50, 100, 200)
QUERY_COUNT = 30


def test_e4_candidate_recall_report(benchmark):
    # Keep report generation alive under --benchmark-only.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    repo, corpus = corpus_repository(CORPUS_SIZE)
    searcher = IndexSearcher(repo.indexer().index)
    queries = sampler_for(corpus, seed=37).sample(QUERY_COUNT)
    lines = [
        "E4a: recall of grade-2 schemas in the candidate pool vs n",
        f"({QUERY_COUNT} clean queries over {repo.schema_count} schemas)",
        "",
        f"{'pool n':>7} {'any-exact recall':>17} {'exact coverage':>15}",
    ]
    recall_at = {}
    for n in POOL_SIZES:
        any_hit = 0
        coverage = 0.0
        for query in queries:
            pool = {hit.doc_id
                    for hit in searcher.search(query.keywords, top_n=n)}
            exact = query.exact_ids
            if pool & exact:
                any_hit += 1
            coverage += len(pool & exact) / len(exact)
        recall_at[n] = any_hit / QUERY_COUNT
        lines.append(f"{n:>7} {any_hit / QUERY_COUNT:>17.3f} "
                     f"{coverage / QUERY_COUNT:>15.3f}")
    report("e4_candidate_recall", "\n".join(lines))
    # Recall must be monotone non-decreasing in n and high at n=50+.
    assert recall_at[200] >= recall_at[5]
    assert recall_at[50] >= 0.8


def _match_everything(repo, corpus, query_keywords) -> list[int]:
    """The no-filter pipeline: ensemble + tightness on EVERY schema."""
    ensemble = MatcherEnsemble.default()
    scorer = TightnessScorer()
    graph = QueryGraph.build(keywords=query_keywords)
    scored = []
    for generated in corpus:
        schema = generated.schema
        combined = ensemble.match(graph, schema).combined
        result = scorer.score(schema, combined.max_per_column())
        scored.append((result.score, schema.schema_id))
    scored.sort(reverse=True)
    return [schema_id for _score, schema_id in scored[:10]]


def test_e4_latency_report(benchmark):
    # Keep report generation alive under --benchmark-only.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    repo, corpus = corpus_repository(CORPUS_SIZE)
    query = sampler_for(corpus, seed=41).sample(1)[0]

    engine = repo.engine(config=SchemrConfig(candidate_pool=50))
    start = time.perf_counter()
    filtered_results = engine.search(keywords=query.keywords, top_n=10)
    filtered_seconds = time.perf_counter() - start

    # Match-everything on a subsample, extrapolated, to keep the bench
    # fast; the per-schema cost is constant so this is fair.
    sample = corpus[:200]
    start = time.perf_counter()
    _match_everything(repo, sample, query.keywords)
    sample_seconds = time.perf_counter() - start
    projected = sample_seconds * (len(corpus) / len(sample))

    lines = [
        "E4b: filtered pipeline vs fine-grained matching of every schema",
        "",
        f"filtered (pool=50) end-to-end: {filtered_seconds * 1000:9.1f} ms",
        f"match-everything projected:    {projected * 1000:9.1f} ms "
        f"(measured {sample_seconds * 1000:.1f} ms over "
        f"{len(sample)}/{len(corpus)} schemas)",
        f"speedup: {projected / filtered_seconds:8.1f}x",
    ]
    report("e4_latency", "\n".join(lines))
    assert filtered_results
    assert projected > filtered_seconds  # filtering must pay off


def test_e4_pipeline_pool50_benchmark(benchmark):
    repo, corpus = corpus_repository(CORPUS_SIZE)
    engine = repo.engine(config=SchemrConfig(candidate_pool=50))
    query = sampler_for(corpus, seed=43).sample(1)[0]
    results = benchmark(engine.search, query.keywords, None, 10)
    assert results is not None


def test_e4_pipeline_pool200_benchmark(benchmark):
    repo, corpus = corpus_repository(CORPUS_SIZE)
    engine = repo.engine(config=SchemrConfig(candidate_pool=200))
    query = sampler_for(corpus, seed=43).sample(1)[0]
    results = benchmark(engine.search, query.keywords, None, 10)
    assert results is not None
