"""Workload bench: replay, overload behaviour, and the learning loop.

Measures the full ``repro.workload`` story on one corpus:

* **harvest determinism** — two closed-loop replays of the same spec
  must produce byte-identical history files (the reproducibility
  contract training depends on);
* **closed-loop throughput** — sustained QPS and latency percentiles
  with N concurrent simulated users;
* **open-loop overload** — arrivals at a target QPS under the diurnal
  curve with admission control in front: shed rate, degradation-level
  mix, p50/p99 latency, dispatch lag;
* **learning loop** — weights trained from the harvested clicks,
  A/B'd against uniform weights on held-out ground-truth queries with
  a paired-bootstrap p-value.  The gate: trained is never
  *significantly worse* than uniform.

Run (from the repository root)::

    PYTHONPATH=src python benchmarks/bench_workload.py            # full
    PYTHONPATH=src python benchmarks/bench_workload.py --count 200 --sessions 60
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.core.config import SchemrConfig
from repro.repository.store import SchemaRepository
from repro.resilience.shedding import AdmissionController
from repro.telemetry.history import SearchHistorySink
from repro.workload import (
    EngineTarget,
    ReplayDriver,
    WorkloadSpec,
    ab_compare,
    attach_schema_ids,
    build_catalog,
    heldout_queries,
    regenerate_corpus,
    train_weights,
)

ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = ROOT / "BENCH_workload.json"


def run(count: int, sessions: int, catalog_size: int, users: int,
        target_qps: float, heldout: int, out_path: Path) -> dict:
    workdir = Path(tempfile.mkdtemp(prefix="schemr-bench-workload-"))
    try:
        corpus_seed = 7
        corpus = regenerate_corpus(corpus_seed, count)
        repo = SchemaRepository(str(workdir / "repo.db"))
        for generated in corpus:
            repo.add_schema(generated.schema)
        matched = attach_schema_ids(repo, corpus)
        catalog = build_catalog(matched, catalog_size, seed=23)
        spec = WorkloadSpec(seed=97, sessions=sessions)
        engine = repo.engine(config=SchemrConfig(telemetry_enabled=True))

        # -- closed loop, twice: throughput + byte-identical harvest --
        histories = []
        closed_report = None
        for run_index in range(2):
            path = workdir / f"history_{run_index}.jsonl"
            sink = SearchHistorySink(path)
            driver = ReplayDriver(EngineTarget(engine), catalog, spec,
                                  sink=sink)
            report = driver.run_closed_loop(users=users)
            sink.close()
            histories.append(path.read_bytes())
            if run_index == 0:
                closed_report = report
        deterministic = histories[0] == histories[1]

        # -- open loop under overload ---------------------------------
        admission = AdmissionController(max_concurrent=max(2, users // 2),
                                        queue_size=4,
                                        queue_timeout_seconds=0.02)
        open_driver = ReplayDriver(
            EngineTarget(engine, admission=admission), catalog, spec)
        open_report = open_driver.run_open_loop(target_qps=target_qps)

        # -- learning loop --------------------------------------------
        records = SearchHistorySink.load(workdir / "history_0.jsonl")
        train_start = time.perf_counter()
        _, training = train_weights(records, repo)
        train_seconds = time.perf_counter() - train_start
        held = heldout_queries(matched, heldout, seed=51,
                               exclude=[e.query for e in catalog.entries])
        ab = ab_compare(repo, training.weights, held, top_n=spec.top_n)

        result = {
            "corpus_size": len(matched),
            "catalog_size": len(catalog),
            "sessions": sessions,
            "users": users,
            "harvest_deterministic": deterministic,
            "harvest_bytes": len(histories[0]),
            "closed_loop": closed_report.to_dict(),
            "open_loop": open_report.to_dict(),
            "history_records": len(records),
            "train_seconds": train_seconds,
            "training": training.to_dict(),
            "ab": ab.to_dict(),
            "trained_no_worse_than_uniform": ab.trained_no_worse,
        }
        engine.close()
        repo.close()
        out_path.write_text(json.dumps(result, indent=2) + "\n",
                            encoding="utf-8")
        return result
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--count", type=int, default=1000,
                        help="raw schemas generated into the repository "
                             "(default 1000)")
    parser.add_argument("--sessions", type=int, default=300,
                        help="sessions per replay arm (default 300)")
    parser.add_argument("--catalog-size", type=int, default=50,
                        help="distinct query intents (default 50)")
    parser.add_argument("--users", type=int, default=4,
                        help="closed-loop concurrent users (default 4)")
    parser.add_argument("--target-qps", type=float, default=120.0,
                        help="open-loop arrival rate (default 120)")
    parser.add_argument("--heldout", type=int, default=30,
                        help="held-out A/B queries (default 30)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    args = parser.parse_args(argv)

    result = run(args.count, args.sessions, args.catalog_size, args.users,
                 args.target_qps, args.heldout, args.out)
    closed = result["closed_loop"]
    open_loop = result["open_loop"]
    ab = result["ab"]
    print(f"corpus: {result['corpus_size']} schemas, "
          f"{result['catalog_size']} intents, "
          f"{result['sessions']} sessions")
    print(f"  harvest deterministic: {result['harvest_deterministic']} "
          f"({result['harvest_bytes']} bytes)")
    print(f"  closed loop: {closed['achieved_qps']:.1f} qps, "
          f"p50 {closed['p50_ms']:.1f}ms p99 {closed['p99_ms']:.1f}ms, "
          f"{closed['clicks']} clicks")
    print(f"  open loop @ {open_loop['target_qps']:.0f} qps: "
          f"achieved {open_loop['achieved_qps']:.1f}, "
          f"shed {open_loop['shed_fraction']:.1%}, "
          f"p50 {open_loop['p50_ms']:.1f}ms p99 {open_loop['p99_ms']:.1f}ms, "
          f"lag p99 {open_loop['lag_p99_ms']:.1f}ms")
    print(f"  degradation mix: {open_loop['degradation_mix']}")
    print(f"  trained weights: {result['training']['weights']}")
    print(f"  A/B precision: trained {ab['precision_at_k']['trained']:.4f} "
          f"vs uniform {ab['precision_at_k']['uniform']:.4f} "
          f"(p={ab['precision_at_k']['p_value']:.4f})")
    print(f"  A/B recall:    trained {ab['recall_at_k']['trained']:.4f} "
          f"vs uniform {ab['recall_at_k']['uniform']:.4f} "
          f"(p={ab['recall_at_k']['p_value']:.4f})")
    print(f"  trained no worse than uniform: "
          f"{result['trained_no_worse_than_uniform']}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
