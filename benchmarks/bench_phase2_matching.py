"""Phase-2 acceleration bench: cold vs profiled vs profiled+parallel.

Times the schema-matching phase (and the full pipeline) over the
generated corpus in three engine configurations:

* ``cold`` — the from-scratch path: the engine reads schemas straight
  from the repository (per-candidate JSON parse) and every matcher
  re-derives its artifacts per candidate;
* ``profiled`` — the acceleration layer: a warm
  :class:`~repro.matching.profile.ProfileStore` serves cached schemas
  and precomputed :class:`~repro.matching.profile.SchemaMatchProfile`
  artifacts (built at ingest by the indexer refresh);
* ``parallel`` — the profiled path with ``match_workers`` threads
  scoring candidate chunks concurrently.

Per mode, one *round* runs the whole query set and sums the per-query
phase-2 seconds; the reported figure is the median over ``--repeats``
rounds (medians shrug off scheduler noise on small machines).  Results
go to ``BENCH_phase2.json`` at the repository root.

Run (from the repository root)::

    PYTHONPATH=src python benchmarks/bench_phase2_matching.py             # 5k corpus
    PYTHONPATH=src python benchmarks/bench_phase2_matching.py --count 500 # CI smoke
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

from repro.core.config import SchemrConfig
from repro.core.engine import SchemrEngine
from repro.core.pipeline import PHASE_MATCHING

from benchmarks.helpers import PAPER_FRAGMENT, PAPER_KEYWORDS, \
    corpus_repository, sampler_for

ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = ROOT / "BENCH_phase2.json"


def build_queries(corpus, sampled: int) -> list[dict]:
    """The paper's running query plus sampled ground-truth queries."""
    queries: list[dict] = [
        {"keywords": PAPER_KEYWORDS},
        {"keywords": PAPER_KEYWORDS, "fragment": PAPER_FRAGMENT},
    ]
    sampler = sampler_for(corpus)
    for query in sampler.sample(sampled, channel="clean"):
        queries.append({"keywords": query.keywords})
    return queries


def time_round(engine: SchemrEngine, queries: list[dict]) \
        -> tuple[float, float]:
    """(phase-2 seconds, total seconds) summed over the query set."""
    phase2 = total = 0.0
    for query in queries:
        engine.search(**query)
        trace = engine.last_trace
        assert trace is not None
        phase2 += trace.phase(PHASE_MATCHING).seconds
        total += trace.total_seconds
    return phase2, total


def measure(engines: dict[str, SchemrEngine], queries: list[dict],
            repeats: int) -> dict[str, dict]:
    """Median per-mode round times, rounds interleaved across modes.

    Interleaving (cold, profiled, parallel, cold, ...) instead of
    running each mode's rounds back to back means clock-frequency and
    scheduler drift hit every mode equally, which matters when the
    margin under test is a few percent.
    """
    rounds: dict[str, dict[str, list[float]]] = {
        name: {"phase2": [], "total": []} for name in engines}
    for engine in engines.values():
        time_round(engine, queries)  # warmup round per mode
    for _ in range(repeats):
        for name, engine in engines.items():
            phase2, total = time_round(engine, queries)
            rounds[name]["phase2"].append(phase2)
            rounds[name]["total"].append(total)
    return {
        name: {
            "phase2_seconds": statistics.median(data["phase2"]),
            "total_seconds": statistics.median(data["total"]),
            "phase2_rounds": data["phase2"],
        }
        for name, data in rounds.items()
    }


def run(count: int, sampled_queries: int, repeats: int, workers: int,
        pool: int, out_path: Path) -> dict:
    repo, corpus = corpus_repository(count)
    indexer = repo.indexer()
    indexer.refresh()
    index = indexer.index
    profile_store = repo.profile_store()
    queries = build_queries(corpus, sampled_queries)

    parallel = SchemrEngine(
        index=index, source=profile_store,
        config=SchemrConfig(candidate_pool=pool, match_workers=workers))
    engines = {
        "cold": SchemrEngine(index=index, source=repo,
                             config=SchemrConfig(candidate_pool=pool)),
        "profiled": SchemrEngine(index=index, source=profile_store,
                                 config=SchemrConfig(candidate_pool=pool)),
        "parallel": parallel,
    }
    try:
        modes = measure(engines, queries, repeats)
    finally:
        parallel.close()

    cold_p2 = modes["cold"]["phase2_seconds"]
    prof_p2 = modes["profiled"]["phase2_seconds"]
    par_p2 = modes["parallel"]["phase2_seconds"]
    result = {
        "corpus_size": repo.schema_count,
        "queries": len(queries),
        "repeats": repeats,
        "match_workers": workers,
        "candidate_pool": pool,
        "modes": modes,
        "speedup": {
            "profiled_vs_cold": cold_p2 / prof_p2 if prof_p2 else 0.0,
            "parallel_vs_cold": cold_p2 / par_p2 if par_p2 else 0.0,
            "parallel_vs_profiled": prof_p2 / par_p2 if par_p2 else 0.0,
        },
    }
    out_path.write_text(json.dumps(result, indent=2) + "\n",
                        encoding="utf-8")
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--count", type=int, default=5000,
                        help="raw corpus size fed to the paper filter "
                             "(default 5000; use 500 for a CI smoke)")
    parser.add_argument("--queries", type=int, default=8,
                        help="sampled ground-truth queries on top of the "
                             "paper query (default 8)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="measurement rounds per mode (default 5)")
    parser.add_argument("--workers", type=int, default=4,
                        help="match_workers for the parallel mode")
    parser.add_argument("--pool", type=int, default=100,
                        help="candidate_pool for every mode (default 100; "
                             "a deeper pool gives phase two enough work "
                             "for stable timings)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    args = parser.parse_args(argv)

    result = run(args.count, args.queries, args.repeats, args.workers,
                 args.pool, args.out)
    speedup = result["speedup"]
    print(f"corpus: {result['corpus_size']} schemas, "
          f"{result['queries']} queries x {result['repeats']} rounds")
    for mode, stats in result["modes"].items():
        print(f"  {mode:>9}: phase2 {stats['phase2_seconds']:.4f}s  "
              f"total {stats['total_seconds']:.4f}s")
    print(f"  profiled vs cold:     {speedup['profiled_vs_cold']:.2f}x")
    print(f"  parallel vs cold:     {speedup['parallel_vs_cold']:.2f}x")
    print(f"  parallel vs profiled: {speedup['parallel_vs_profiled']:.2f}x")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
