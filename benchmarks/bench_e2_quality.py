"""E2 — ranking quality: fine-grained matching vs the coarse filter.

The paper claims (a) the matcher ensemble + tightness-of-fit captures
semantic intent better than the TF/IDF filter alone, and (b) the name
matcher is "particularly helpful" on abbreviated terms, alternate
grammatical forms, and delimiter noise.  This bench measures P@k / MRR /
MAP / NDCG for:

* tfidf-only      — candidate extraction ranking (phase 1 alone);
* name-only       — ensemble = {name matcher};
* context-only    — ensemble = {context matcher};
* schemr-full     — the paper's name+context ensemble + tightness;
* schemr-extended — full ensemble incl. exact/synonym/datatype/structure;

on each query noise channel.  Expected shape: full >= name-only >=
tfidf-only on MRR, with the name matcher's margin largest on the
abbreviated/delimiter channels.
"""

import pytest

from repro.codebook.matcher import CodebookMatcher
from repro.corpus.groundtruth import QUERY_CHANNELS
from repro.eval.runner import EvaluationReport, evaluate_engine, evaluate_ranker
from repro.index.searcher import IndexSearcher
from repro.matching.context import ContextMatcher
from repro.matching.datatype import DataTypeMatcher
from repro.matching.ensemble import MatcherEnsemble
from repro.matching.exact import ExactMatcher
from repro.matching.name import NameMatcher
from repro.matching.structure import StructureMatcher
from repro.matching.synonym import SynonymMatcher

from benchmarks.helpers import corpus_repository, report, sampler_for

CORPUS_SIZE = 2000
QUERIES_PER_CHANNEL = 25


def configurations(repo):
    searcher = IndexSearcher(repo.indexer().index)

    def tfidf_rank(keywords, top_n):
        return [hit.doc_id
                for hit in searcher.search(keywords, top_n=top_n)]

    return [
        ("tfidf-only", tfidf_rank),
        ("name-only", repo.engine(
            ensemble=MatcherEnsemble([NameMatcher()]))),
        ("context-only", repo.engine(
            ensemble=MatcherEnsemble([ContextMatcher()]))),
        ("schemr-full", repo.engine()),
        ("schemr-extended", repo.engine(ensemble=MatcherEnsemble([
            NameMatcher(), ContextMatcher(), ExactMatcher(),
            SynonymMatcher(), DataTypeMatcher(), StructureMatcher(),
            CodebookMatcher()]))),
    ]


def run_channel(repo, corpus, channel: str) -> list[EvaluationReport]:
    sampler = sampler_for(corpus)
    queries = sampler.sample(QUERIES_PER_CHANNEL, channel=channel)
    reports = []
    for label, config in configurations(repo):
        if callable(config):
            reports.append(evaluate_ranker(
                config, queries, label=f"{label}/{channel}"))
        else:
            reports.append(evaluate_engine(
                config, queries, label=f"{label}/{channel}"))
    return reports


def test_e2_report(benchmark):
    # Keep report generation alive under --benchmark-only.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    repo, corpus = corpus_repository(CORPUS_SIZE)
    lines = [
        "E2: ranking quality by configuration and query noise channel",
        f"(corpus: {repo.schema_count} schemas, "
        f"{QUERIES_PER_CHANNEL} queries/channel)",
        "",
        EvaluationReport.header(),
    ]
    by_key: dict[str, EvaluationReport] = {}
    for channel in QUERY_CHANNELS:
        for rep in run_channel(repo, corpus, channel):
            lines.append(rep.row())
            by_key[rep.label] = rep
        lines.append("")
    report("e2_quality", "\n".join(lines))

    # Shape assertions (who wins), not absolute numbers.
    for channel in ("clean", "abbreviated", "delimiter"):
        full = by_key[f"schemr-full/{channel}"]
        tfidf = by_key[f"tfidf-only/{channel}"]
        assert full.mrr >= tfidf.mrr - 0.05, channel


def _styled_schema(template, style: str):
    """Render one entity template through one naming style."""
    import random

    from repro.corpus.noise import NameStyler
    from repro.model.elements import Attribute, Entity
    from repro.model.schema import Schema

    styler = NameStyler(style, random.Random(99), plural_probability=0.3,
                        abbreviate_probability=1.0)
    entity = Entity(name=styler.render(template.name))
    rendered = {}
    for canonical in template.attributes:
        name = styler.render(canonical)
        if not entity.has_attribute(name):
            entity.add_attribute(Attribute(name))
            rendered[canonical] = f"{entity.name}.{name}"
    schema = Schema(name=f"{style}_styled",
                    entities={entity.name: entity})
    return schema, rendered


def test_e2_matcher_level_report(benchmark):
    """The paper's name-matcher claim, measured at the matcher level:
    mean similarity assigned to the TRUE (canonical query element ->
    styled schema element) pairs, per naming style.  The pipeline-level
    table above is bottlenecked by phase-1 recall on noisy queries; this
    isolates the matchers themselves."""
    # Keep report generation alive under --benchmark-only.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    from repro.corpus.domains import domain_by_name
    from repro.model.query import QueryGraph

    template = domain_by_name("healthcare").entity("patient")
    matchers = [("name", NameMatcher()), ("context", ContextMatcher()),
                ("exact", ExactMatcher())]
    styles = ("snake", "abbreviated", "squash", "dash")
    lines = [
        "E2b: mean similarity on true element pairs, by matcher and "
        "naming style",
        "(query: canonical attribute names of healthcare.patient)",
        "",
        f"{'style':<14}" + "".join(f"{name:>10}" for name, _m in matchers),
    ]
    results: dict[tuple[str, str], float] = {}
    for style in styles:
        schema, rendered = _styled_schema(template, style)
        query = QueryGraph.build(
            keywords=[a for a in template.attributes
                      if not a.endswith(" id")])
        row = f"{style:<14}"
        for matcher_name, matcher in matchers:
            matrix = matcher.match(query, schema)
            total = 0.0
            count = 0
            for canonical, path in rendered.items():
                if canonical.endswith(" id"):
                    continue
                total += matrix.get(f"kw:{canonical}", path)
                count += 1
            mean = total / max(count, 1)
            results[(style, matcher_name)] = mean
            row += f"{mean:>10.3f}"
        lines.append(row)
    report("e2_matcher_level", "\n".join(lines))
    # The name matcher's signature wins: abbreviated and squash styles.
    for style in ("abbreviated", "squash"):
        assert results[(style, "name")] > results[(style, "exact")]
        assert results[(style, "name")] > results[(style, "context")]


@pytest.mark.parametrize("label", ["tfidf-only", "schemr-full"])
def test_e2_config_benchmark(benchmark, label):
    """Latency cost of the quality gain: phase-1-only vs full pipeline."""
    repo, corpus = corpus_repository(CORPUS_SIZE)
    sampler = sampler_for(corpus)
    query = sampler.sample(1, channel="clean")[0]
    if label == "tfidf-only":
        searcher = IndexSearcher(repo.indexer().index)
        result = benchmark(searcher.search, query.keywords, 10)
    else:
        engine = repo.engine()
        result = benchmark(engine.search, query.keywords, None, 10)
    assert result
