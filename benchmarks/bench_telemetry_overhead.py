"""Telemetry overhead bench: disabled vs enabled pipeline cost.

The subsystem's contract is "near-zero cost when disabled, a few
percent when enabled".  Two measurements check it:

* **Pipeline comparison** — the same repository, query set, and warmed
  caches driven through two engines that differ only in
  ``telemetry_enabled``.  Per-query latencies are collected across
  interleaved rounds; the reported overhead is the p50 delta.
* **No-op microbench** — the disabled path costs one attribute lookup
  and one empty call per instrument site per query (never per posting).
  Timing a bundle of null-instrument calls directly and scaling it by
  the sites a search traverses bounds the disabled overhead without
  needing a second checkout to diff against: the bound is the measured
  per-query no-op cost over the measured disabled p50.

Results go to ``BENCH_telemetry.json`` at the repository root; the CI
smoke job gates on ``disabled_noop_overhead_pct`` (< 2) and
``enabled_overhead_pct`` (a loose cap, since shared runners jitter).

Run (from the repository root)::

    PYTHONPATH=src:. python benchmarks/bench_telemetry_overhead.py             # full
    PYTHONPATH=src:. python benchmarks/bench_telemetry_overhead.py --count 600 # CI smoke
"""

from __future__ import annotations

import argparse
import json
import re
import statistics
import sys
import time
from pathlib import Path

from repro.core.config import SchemrConfig
from repro.core.engine import SchemrEngine
from repro.telemetry.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
)
from repro.telemetry.trace import NULL_SPAN

from benchmarks.helpers import PAPER_KEYWORDS, corpus_repository, sampler_for

ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = ROOT / "BENCH_telemetry.json"

#: Instrument touches a single search makes on the disabled path: the
#: span enters/exits (1 root + 4 phases), the resolved counter/histogram
#: updates in ``_finish_search``, and the lazy registry resolutions.
#: Generously rounded up.
NOOP_SITES_PER_QUERY = 32


def build_engines(count: int) -> tuple[dict[str, SchemrEngine], tuple]:
    repo, corpus = corpus_repository(count)
    engines = {
        "disabled": repo.engine(config=SchemrConfig()),
        "enabled": repo.engine(
            config=SchemrConfig(telemetry_enabled=True)),
    }
    return engines, corpus


def build_queries(corpus: tuple, sampled: int) -> list[list[str]]:
    queries = [re.split(r"[,\s]+", PAPER_KEYWORDS.strip())]
    sampler = sampler_for(corpus)
    for query in sampler.sample(sampled, channel="clean"):
        queries.append(list(query.keywords))
    return queries


def measure_mode(engine: SchemrEngine, queries: list[list[str]],
                 top_n: int) -> list[float]:
    """One round: per-query wall seconds."""
    times = []
    for query in queries:
        start = time.perf_counter()
        engine.search(keywords=query, top_n=top_n)
        times.append(time.perf_counter() - start)
    return times


def noop_bundle_seconds(iterations: int) -> float:
    """Wall seconds for ``iterations`` bundles of 8 null-instrument
    touches (so one bundle ~= a quarter of NOOP_SITES_PER_QUERY)."""
    counter, gauge, histogram, span = (NULL_COUNTER, NULL_GAUGE,
                                       NULL_HISTOGRAM, NULL_SPAN)
    start = time.perf_counter()
    for _ in range(iterations):
        counter.inc()
        counter.inc(3)
        gauge.set(1.0)
        histogram.observe(0.5)
        histogram.observe(0.1)
        with span:
            pass
        with span:
            pass
    return time.perf_counter() - start


def run(count: int, sampled_queries: int, repeats: int, top_n: int,
        out_path: Path) -> dict:
    engines, corpus = build_engines(count)
    queries = build_queries(corpus, sampled_queries)

    # Warm both engines identically (query cache, profile cache, JIT-ish
    # dict warmup) so measured rounds compare steady states.
    for engine in engines.values():
        for query in queries:
            engine.search(keywords=query, top_n=top_n)

    per_query: dict[str, list[float]] = {name: [] for name in engines}
    for _ in range(repeats):
        for name, engine in engines.items():
            per_query[name].extend(measure_mode(engine, queries, top_n))

    modes = {
        name: {
            "p50_ms": statistics.median(times) * 1000.0,
            "p95_ms": statistics.quantiles(times, n=20)[-1] * 1000.0,
            "mean_ms": statistics.fmean(times) * 1000.0,
            "total_seconds": sum(times),
        }
        for name, times in per_query.items()
    }

    disabled_p50 = statistics.median(per_query["disabled"])
    enabled_p50 = statistics.median(per_query["enabled"])
    enabled_overhead_pct = ((enabled_p50 - disabled_p50) / disabled_p50
                            * 100.0 if disabled_p50 else 0.0)

    # Disabled-path bound: measured no-op cost per query over the
    # measured disabled p50.
    iterations = 200_000
    bundle_s = noop_bundle_seconds(iterations)
    per_site_s = bundle_s / (iterations * 8)
    noop_per_query_s = per_site_s * NOOP_SITES_PER_QUERY
    disabled_noop_pct = (noop_per_query_s / disabled_p50 * 100.0
                         if disabled_p50 else 0.0)

    # Sanity: the enabled engine actually recorded the traffic.
    telemetry = engines["enabled"].telemetry
    searches = telemetry.metrics.snapshot().value("schemr_searches_total")
    expected = len(queries) * (repeats + 1)  # + warmup round

    result = {
        "corpus_size": engines["disabled"].searcher.index.document_count,
        "queries": len(queries),
        "repeats": repeats,
        "top_n": top_n,
        "modes": modes,
        "enabled_overhead_pct": enabled_overhead_pct,
        "noop_site_nanoseconds": per_site_s * 1e9,
        "noop_sites_per_query": NOOP_SITES_PER_QUERY,
        "disabled_noop_overhead_pct": disabled_noop_pct,
        "enabled_searches_recorded": searches,
        "enabled_searches_expected": expected,
    }
    for engine in engines.values():
        engine.close()
    out_path.write_text(json.dumps(result, indent=2) + "\n",
                        encoding="utf-8")
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--count", type=int, default=6000,
                        help="raw corpus size fed to the paper filter "
                             "(default 6000; use 600 for a CI smoke)")
    parser.add_argument("--queries", type=int, default=25,
                        help="sampled ground-truth queries on top of the "
                             "paper query (default 25)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="measurement rounds per mode (default 5)")
    parser.add_argument("--top-n", type=int, default=10,
                        help="results per query (default 10)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    args = parser.parse_args(argv)

    result = run(args.count, args.queries, args.repeats, args.top_n,
                 args.out)
    disabled = result["modes"]["disabled"]
    enabled = result["modes"]["enabled"]
    print(f"corpus: {result['corpus_size']} docs, "
          f"{result['queries']} queries x {result['repeats']} rounds")
    print(f"disabled: p50 {disabled['p50_ms']:.3f} ms  "
          f"p95 {disabled['p95_ms']:.3f} ms")
    print(f"enabled:  p50 {enabled['p50_ms']:.3f} ms  "
          f"p95 {enabled['p95_ms']:.3f} ms")
    print(f"enabled overhead (p50): "
          f"{result['enabled_overhead_pct']:+.2f}%")
    print(f"no-op site cost: {result['noop_site_nanoseconds']:.0f} ns; "
          f"disabled-path bound: "
          f"{result['disabled_noop_overhead_pct']:.4f}%")
    print(f"searches recorded: {result['enabled_searches_recorded']:.0f}"
          f" / {result['enabled_searches_expected']}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
