"""Tests for repro.workload: catalog, sessions, clicks, replay, training."""

import json

import pytest

from repro.core.results import SearchResult
from repro.errors import AdmissionRejected, SchemrError
from repro.repository.store import SchemaRepository
from repro.resilience.shedding import AdmissionController
from repro.telemetry.history import SearchHistorySink
from repro.workload import (
    ClickModel,
    EngineTarget,
    HttpTarget,
    ReplayDriver,
    SessionGenerator,
    WorkloadSpec,
    ab_compare,
    attach_schema_ids,
    build_catalog,
    examples_from_history,
    fragment_for,
    heldout_queries,
    regenerate_corpus,
    render_keywords,
    train_weights,
)

CORPUS_SEED = 42
CORPUS_COUNT = 60


@pytest.fixture(scope="module")
def corpus():
    return regenerate_corpus(CORPUS_SEED, CORPUS_COUNT)


@pytest.fixture(scope="module")
def repository(corpus):
    repo = SchemaRepository.in_memory()
    for generated in corpus:
        repo.add_schema(generated.schema)
    yield repo
    repo.close()


@pytest.fixture(scope="module")
def matched(repository, corpus):
    return attach_schema_ids(repository, corpus)


@pytest.fixture(scope="module")
def catalog(matched):
    return build_catalog(matched, 10, seed=23)


@pytest.fixture(scope="module")
def engine(repository):
    engine = repository.engine()
    yield engine
    engine.close()


class TestCatalog:
    def test_regeneration_is_deterministic(self, corpus):
        again = regenerate_corpus(CORPUS_SEED, CORPUS_COUNT)
        assert [g.schema.name for g in again] == \
            [g.schema.name for g in corpus]

    def test_attach_schema_ids_sets_stored_ids(self, matched, repository):
        for generated in matched:
            assert generated.schema.schema_id is not None
            stored = repository.get_schema(generated.schema.schema_id)
            assert stored.name == generated.schema.name

    def test_attach_mismatched_corpus_raises(self, repository):
        other = regenerate_corpus(CORPUS_SEED + 1, 10)
        with pytest.raises(SchemrError, match="no regenerated schema"):
            attach_schema_ids(repository, other)

    def test_zipf_weights_decay(self, catalog):
        weights = [entry.weight for entry in catalog.entries]
        assert weights == sorted(weights, reverse=True)
        assert weights[0] > weights[-1]

    def test_sampling_respects_popularity(self, catalog):
        import random
        rng = random.Random(5)
        draws = [catalog.sample_intent(rng).intent_id for _ in range(2000)]
        counts = [draws.count(i) for i in range(len(catalog))]
        assert counts[0] > counts[-1]

    def test_fragment_is_parseable_ddl(self, catalog):
        from repro.parsers.query_parser import parse_fragment
        for entry in catalog.entries:
            schema = parse_fragment(entry.fragment)
            assert schema.entity_count == 1

    def test_fragment_names_derive_from_query(self, matched):
        query = build_catalog(matched, 1, seed=23).entries[0].query
        fragment = fragment_for(query)
        assert query.template.replace(" ", "_") in fragment

    def test_empty_catalog_rejected(self):
        from repro.workload.catalog import QueryCatalog
        with pytest.raises(SchemrError, match="at least one"):
            QueryCatalog([])


class TestSessions:
    def test_same_spec_same_sessions(self, catalog):
        spec = WorkloadSpec(seed=11, sessions=30, duration_seconds=3600.0)
        first = list(SessionGenerator(catalog, spec).sessions())
        second = list(SessionGenerator(catalog, spec).sessions())
        assert first == second

    def test_different_seed_different_sessions(self, catalog):
        base = WorkloadSpec(seed=11, sessions=30, duration_seconds=3600.0)
        other = WorkloadSpec(seed=12, sessions=30, duration_seconds=3600.0)
        assert list(SessionGenerator(catalog, base).sessions()) != \
            list(SessionGenerator(catalog, other).sessions())

    def test_arrivals_sorted_inside_horizon(self, catalog):
        spec = WorkloadSpec(seed=3, sessions=50, duration_seconds=1000.0)
        starts = [s.started_at
                  for s in SessionGenerator(catalog, spec).sessions()]
        assert starts == sorted(starts)
        assert all(0.0 <= t <= 1000.0 for t in starts)

    def test_diurnal_intensity_peaks_where_configured(self, catalog):
        spec = WorkloadSpec(seed=3, sessions=10, duration_seconds=1000.0,
                            diurnal_amplitude=0.8,
                            diurnal_peak_fraction=0.5, burst_count=0)
        generator = SessionGenerator(catalog, spec)
        assert generator.intensity(500.0) > generator.intensity(0.0)
        assert generator.intensity(500.0) == pytest.approx(1.8)

    def test_bursts_multiply_intensity(self, catalog):
        spec = WorkloadSpec(seed=3, sessions=10, duration_seconds=1000.0,
                            diurnal_amplitude=0.0, burst_count=1,
                            burst_multiplier=5.0)
        generator = SessionGenerator(catalog, spec)
        (burst,) = generator.bursts
        inside = generator.intensity(burst.start + burst.duration / 2)
        assert inside == pytest.approx(5.0)

    def test_session_queries_reference_catalog_intents(self, catalog):
        spec = WorkloadSpec(seed=5, sessions=20, duration_seconds=600.0)
        for session in SessionGenerator(catalog, spec).sessions():
            assert session.queries
            offsets = [q.arrival_offset for q in session.queries]
            assert offsets == sorted(offsets)
            for query in session.queries:
                entry = catalog.entry(query.intent_id)
                assert entry.intent_id == query.intent_id

    def test_fragment_fraction_zero_and_one(self, catalog):
        none_spec = WorkloadSpec(seed=5, sessions=15,
                                 duration_seconds=600.0,
                                 fragment_fraction=0.0)
        all_spec = WorkloadSpec(seed=5, sessions=15,
                                duration_seconds=600.0,
                                fragment_fraction=1.0)
        none_queries = [q for s in SessionGenerator(
            catalog, none_spec).sessions() for q in s.queries]
        all_queries = [q for s in SessionGenerator(
            catalog, all_spec).sessions() for q in s.queries]
        assert all(q.fragment is None for q in none_queries)
        assert all(q.fragment is not None for q in all_queries)

    def test_render_keywords_channels(self):
        import random
        canonical = ["patient record", "diagnosis code"]
        rng = random.Random(1)
        assert render_keywords(canonical, "clean", rng) == tuple(canonical)
        plural = render_keywords(canonical, "plural", random.Random(1))
        assert plural[0].endswith("records")
        delim = render_keywords(canonical, "delimiter", random.Random(1))
        assert " " not in delim[0]

    def test_spec_validation(self):
        with pytest.raises(SchemrError, match="sessions"):
            WorkloadSpec(sessions=0)
        with pytest.raises(SchemrError, match="fragment_fraction"):
            WorkloadSpec(fragment_fraction=1.5)
        with pytest.raises(SchemrError, match="unknown channel"):
            WorkloadSpec(channel_mix=(("nope", 1.0),))


class TestClickModel:
    def _results(self, ids):
        return [SearchResult(schema_id=i, name=f"s{i}", score=0.5,
                             match_count=1, entity_count=1,
                             attribute_count=1) for i in ids]

    def test_examination_decays_with_rank(self):
        model = ClickModel(persistence=0.5)
        assert model.examination(1) == 1.0
        assert model.examination(3) == pytest.approx(0.25)

    def test_irrelevant_results_rarely_clicked(self, catalog):
        model = ClickModel(seed=1, grade0_probability=0.0)
        query = catalog.entries[0].query
        results = self._results([999_999, 999_998])  # not in relevance
        for i in range(50):
            assert model.clicks(query, results, i, 0) == set()

    def test_relevant_top_result_usually_clicked(self, catalog):
        model = ClickModel(seed=1, grade2_probability=1.0)
        entry = next(e for e in catalog.entries if e.query.exact_ids)
        top = next(iter(entry.query.exact_ids))
        results = self._results([top])
        assert model.clicks(entry.query, results, 0, 0) == {top}

    def test_deterministic_per_identifiers(self, catalog):
        model = ClickModel(seed=9)
        entry = catalog.entries[0]
        results = self._results(list(entry.query.relevance)[:5])
        first = model.clicks(entry.query, results, 3, 1)
        again = model.clicks(entry.query, results, 3, 1)
        other = model.clicks(entry.query, results, 4, 1)
        assert first == again
        # a different session may click differently (not asserted
        # unequal — just must not raise and stays within the page)
        assert other <= {r.schema_id for r in results}

    def test_validation(self):
        with pytest.raises(SchemrError, match="persistence"):
            ClickModel(persistence=0.0)
        with pytest.raises(SchemrError, match="grade2"):
            ClickModel(grade2_probability=1.5)


class TestReplayClosedLoop:
    SPEC = WorkloadSpec(seed=7, sessions=25, duration_seconds=3600.0)

    def test_harvest_byte_identical_across_runs(self, engine, catalog,
                                                tmp_path):
        payloads = []
        for run, users in enumerate((3, 1)):
            path = tmp_path / f"h{run}.jsonl"
            sink = SearchHistorySink(path)
            driver = ReplayDriver(EngineTarget(engine), catalog, self.SPEC,
                                  sink=sink)
            report = driver.run_closed_loop(users=users)
            sink.close()
            payloads.append(path.read_bytes())
            assert report.completed == report.queries
        assert payloads[0] == payloads[1]
        assert len(payloads[0]) > 0

    def test_report_accounts_for_every_query(self, engine, catalog):
        driver = ReplayDriver(EngineTarget(engine), catalog, self.SPEC)
        report = driver.run_closed_loop(users=2)
        assert report.mode == "closed"
        assert report.sessions == self.SPEC.sessions
        assert report.queries == report.completed + report.shed + \
            report.errors
        assert report.clicks > 0
        assert report.degradation_mix.get("none") == report.completed
        data = report.to_dict()
        json.dumps(data)
        assert data["shed_fraction"] == 0.0
        assert "sessions" in report.summary()

    def test_harvested_records_carry_virtual_times(self, engine, catalog,
                                                   tmp_path):
        from repro.workload.replay import VIRTUAL_EPOCH
        path = tmp_path / "h.jsonl"
        sink = SearchHistorySink(path)
        ReplayDriver(EngineTarget(engine), catalog, self.SPEC,
                     sink=sink).run_closed_loop(users=2)
        sink.close()
        records = SearchHistorySink.load(path)
        assert records
        stamps = [r.recorded_at for r in records]
        assert all(s >= VIRTUAL_EPOCH for s in stamps)
        assert all(r.total_seconds == 0.0 for r in records)

    def test_users_validated(self, engine, catalog):
        driver = ReplayDriver(EngineTarget(engine), catalog, self.SPEC)
        with pytest.raises(SchemrError, match="users"):
            driver.run_closed_loop(users=0)


class TestReplayOpenLoop:
    SPEC = WorkloadSpec(seed=7, sessions=20, duration_seconds=3600.0)

    def test_sheds_under_admission_pressure(self, engine, catalog):
        admission = AdmissionController(max_concurrent=1, queue_size=0,
                                        queue_timeout_seconds=0.0)
        driver = ReplayDriver(EngineTarget(engine, admission=admission),
                              catalog, self.SPEC)
        report = driver.run_open_loop(target_qps=400.0, max_workers=8)
        assert report.mode == "open"
        assert report.shed > 0
        assert report.queries == report.completed + report.shed
        assert report.shed == admission.rejected_total
        assert 0.0 < report.shed_fraction <= 1.0

    def test_unloaded_open_loop_completes_everything(self, engine, catalog):
        driver = ReplayDriver(EngineTarget(engine), catalog, self.SPEC)
        report = driver.run_open_loop(target_qps=300.0)
        assert report.shed == 0
        assert report.completed == report.queries
        assert report.target_qps == 300.0

    def test_parameters_validated(self, engine, catalog):
        driver = ReplayDriver(EngineTarget(engine), catalog, self.SPEC)
        with pytest.raises(SchemrError, match="target_qps"):
            driver.run_open_loop(target_qps=0.0)
        with pytest.raises(SchemrError, match="max_workers"):
            driver.run_open_loop(target_qps=1.0, max_workers=0)


class TestReplayMetrics:
    def test_counters_flow_through_catalogued_names(self, engine, catalog):
        from repro.telemetry import Telemetry
        telemetry = Telemetry(enabled=True)
        spec = WorkloadSpec(seed=7, sessions=5, duration_seconds=600.0)
        driver = ReplayDriver(EngineTarget(engine), catalog, spec,
                              telemetry=telemetry)
        report = driver.run_closed_loop(users=1)
        text = telemetry.metrics.to_prometheus_text()
        assert "schemr_workload_sessions_total 5" in text
        assert f"schemr_workload_queries_total {report.queries}" in text
        telemetry.close()

    def test_metric_names_are_catalogued(self):
        from repro.telemetry.catalog import METRICS
        for name in ("schemr_workload_sessions_total",
                     "schemr_workload_queries_total",
                     "schemr_workload_clicks_total",
                     "schemr_workload_shed_total",
                     "schemr_workload_errors_total",
                     "schemr_workload_request_seconds",
                     "schemr_workload_lag_seconds"):
            assert name in METRICS


class TestHttpTarget:
    def test_replays_against_live_server(self, tmp_path, corpus):
        from repro.service.server import SchemrServer
        repo = SchemaRepository(str(tmp_path / "repo.db"))
        for generated in corpus:
            repo.add_schema(generated.schema)
        matched = attach_schema_ids(repo, corpus)
        catalog = build_catalog(matched, 6, seed=23)
        server = SchemrServer(repo, port=0)
        server.start()
        try:
            target = HttpTarget(server.base_url)
            spec = WorkloadSpec(seed=7, sessions=6,
                                duration_seconds=600.0)
            report = ReplayDriver(target, catalog,
                                  spec).run_closed_loop(users=2)
            assert report.completed == report.queries
            assert report.errors == 0
        finally:
            server.stop()
            repo.close()

    def test_429_maps_to_shed(self):
        from repro.errors import ServiceError

        class Boom:
            def search_meta(self, **kwargs):
                raise ServiceError("too many", status=429)

        target = HttpTarget("http://127.0.0.1:1")
        target._client = Boom()
        with pytest.raises(AdmissionRejected):
            target.search(("a",), None, 5)


class TestTrainingPipeline:
    @pytest.fixture(scope="class")
    def history(self, engine, catalog, tmp_path_factory):
        path = tmp_path_factory.mktemp("hist") / "h.jsonl"
        sink = SearchHistorySink(path)
        spec = WorkloadSpec(seed=7, sessions=40, duration_seconds=3600.0)
        ReplayDriver(EngineTarget(engine), catalog, spec,
                     sink=sink).run_closed_loop(users=2)
        sink.close()
        return SearchHistorySink.load(path)

    def test_examples_only_from_clicked_pages(self, history, repository):
        examples = examples_from_history(history, repository)
        assert examples
        clicked_pages = [r for r in history if r.clicked_ids]
        assert len(examples) == sum(len(r.results) for r in clicked_pages)
        assert any(e.relevant for e in examples)
        assert any(not e.relevant for e in examples)
        for example in examples:
            assert set(example.features) == {"name", "context"}

    def test_train_weights_normalized(self, history, repository):
        _, report = train_weights(history, repository)
        assert report.examples > 0
        assert report.positives > 0
        assert sum(report.weights.values()) == pytest.approx(1.0)
        assert all(w >= 0 for w in report.weights.values())
        assert "learned weights" in report.summary()

    def test_heldout_excludes_catalog_intents(self, matched, catalog):
        held = heldout_queries(matched, 8, seed=51,
                               exclude=[e.query for e in catalog.entries])
        catalog_keys = {tuple(e.query.canonical_keywords)
                        for e in catalog.entries}
        assert held
        for query in held:
            assert tuple(query.canonical_keywords) not in catalog_keys

    def test_ab_compare_trained_vs_uniform(self, history, repository,
                                           matched, catalog):
        _, report = train_weights(history, repository)
        held = heldout_queries(matched, 8, seed=51,
                               exclude=[e.query for e in catalog.entries])
        result = ab_compare(repository, report.weights, held, top_n=10,
                            bootstrap_iterations=200)
        assert result.queries == len(held)
        assert 0.0 <= result.precision.p_value <= 1.0
        assert result.trained_no_worse
        data = result.to_dict()
        json.dumps(data)
        assert data["precision_at_k"]["method"] == "paired-bootstrap"

    def test_ab_needs_queries(self, repository):
        with pytest.raises(SchemrError, match="at least one query"):
            ab_compare(repository, {"name": 0.5, "context": 0.5}, [])


class TestWorkloadCli:
    def test_replay_then_train_weights(self, tmp_path, capsys):
        from repro.cli import main
        db = str(tmp_path / "repo.db")
        history = str(tmp_path / "h.jsonl")
        assert main(["init", db]) == 0
        assert main(["generate", db, "--count", "60", "--seed", "42"]) == 0
        assert main(["replay", db, "--sessions", "25",
                     "--corpus-seed", "42", "--corpus-count", "60",
                     "--catalog-size", "8", "--history", history]) == 0
        out = capsys.readouterr().out
        assert "closed loop" in out
        assert "harvested" in out
        assert main(["train-weights", db, history,
                     "--corpus-seed", "42", "--corpus-count", "60",
                     "--catalog-size", "8", "--heldout", "6",
                     "--out", str(tmp_path / "ab.json")]) == 0
        out = capsys.readouterr().out
        assert "learned weights" in out
        assert "trained no worse than uniform" in out
        ab = json.loads((tmp_path / "ab.json").read_text(encoding="utf-8"))
        assert "training" in ab and "ab" in ab

    def test_replay_open_mode_with_shedding(self, tmp_path, capsys):
        from repro.cli import main
        db = str(tmp_path / "repo.db")
        assert main(["init", db]) == 0
        assert main(["generate", db, "--count", "60", "--seed", "42"]) == 0
        assert main(["replay", db, "--mode", "open", "--sessions", "15",
                     "--corpus-seed", "42", "--corpus-count", "60",
                     "--catalog-size", "8", "--target-qps", "300",
                     "--max-concurrent", "1", "--admission-queue", "0",
                     "--admission-timeout", "0"]) == 0
        out = capsys.readouterr().out
        assert "open loop" in out

    def test_train_weights_empty_history_fails(self, tmp_path, capsys):
        from repro.cli import main
        db = str(tmp_path / "repo.db")
        history = tmp_path / "empty.jsonl"
        history.write_text("", encoding="utf-8")
        assert main(["init", db]) == 0
        assert main(["train-weights", db, str(history)]) == 1
        assert "no history records" in capsys.readouterr().err


class TestBenchmarkSummarize:
    def test_merges_bench_files_into_table(self, tmp_path):
        import sys
        sys.path.insert(0, str((__import__("pathlib").Path(__file__)
                                .resolve().parent.parent / "benchmarks")))
        try:
            from summarize import summarize
        finally:
            sys.path.pop(0)
        (tmp_path / "BENCH_workload.json").write_text(json.dumps({
            "harvest_deterministic": True,
            "closed_loop": {"achieved_qps": 95.2, "p99_ms": 140.0},
            "open_loop": {"shed_fraction": 0.4, "p99_ms": 80.0},
            "ab": {"precision_at_k": {"delta": 0.01, "p_value": 0.3}},
            "trained_no_worse_than_uniform": True,
        }), encoding="utf-8")
        (tmp_path / "BENCH_unknown.json").write_text(
            json.dumps({"speed": 3.5, "ok": True}), encoding="utf-8")
        table = summarize(tmp_path)
        assert "| workload replay | harvest deterministic | yes |" in table
        assert "closed-loop qps | 95.2" in table
        assert "unknown" in table and "3.5" in table

    def test_empty_directory_degrades(self, tmp_path):
        import sys
        sys.path.insert(0, str((__import__("pathlib").Path(__file__)
                                .resolve().parent.parent / "benchmarks")))
        try:
            from summarize import summarize
        finally:
            sys.path.pop(0)
        assert "no BENCH_*.json" in summarize(tmp_path)
