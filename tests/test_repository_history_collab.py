"""Unit tests for search history and collaboration features."""

import pytest

from repro.errors import RepositoryError
from repro.matching.learner import WeightLearner
from repro.repository.collab import (
    add_comment,
    average_rating,
    comments_for,
    rate_schema,
    record_click,
    record_impressions,
    usage_stats,
)
from repro.repository.history import (
    build_training_set,
    load_history,
    record_search,
)
from repro.repository.store import SchemaRepository

from tests.conftest import build_clinic_schema


@pytest.fixture
def repo_with_schema():
    repo = SchemaRepository.in_memory()
    schema_id = repo.add_schema(build_clinic_schema())
    yield repo, schema_id
    repo.close()


class TestHistory:
    def test_record_and_load(self, repo_with_schema):
        repo, schema_id = repo_with_schema
        entry_id = record_search(repo, "patient height", schema_id,
                                 relevant=True,
                                 features={"name": 0.9, "context": 0.4})
        entries = load_history(repo)
        assert len(entries) == 1
        assert entries[0].entry_id == entry_id
        assert entries[0].relevant is True
        assert entries[0].features == {"name": 0.9, "context": 0.4}

    def test_empty_query_rejected(self, repo_with_schema):
        repo, schema_id = repo_with_schema
        with pytest.raises(RepositoryError):
            record_search(repo, "  ", schema_id, relevant=True)

    def test_unknown_schema_rejected(self, repo_with_schema):
        repo, _ = repo_with_schema
        with pytest.raises(RepositoryError):
            record_search(repo, "x", 999, relevant=True)

    def test_limit(self, repo_with_schema):
        repo, schema_id = repo_with_schema
        for i in range(5):
            record_search(repo, f"q{i}", schema_id, relevant=bool(i % 2))
        assert len(load_history(repo, limit=3)) == 3

    def test_training_set_skips_featureless(self, repo_with_schema):
        repo, schema_id = repo_with_schema
        record_search(repo, "with", schema_id, relevant=True,
                      features={"name": 0.9})
        record_search(repo, "without", schema_id, relevant=False)
        examples = build_training_set(repo)
        assert len(examples) == 1

    def test_history_feeds_learner(self, repo_with_schema):
        """End-to-end: recorded history trains the weight learner."""
        repo, schema_id = repo_with_schema
        for i in range(40):
            relevant = i % 2 == 0
            record_search(repo, f"q{i}", schema_id, relevant=relevant,
                          features={"name": 0.9 if relevant else 0.1,
                                    "context": 0.5})
        learner = WeightLearner(["name", "context"])
        learner.fit(build_training_set(repo))
        assert learner.weights()["name"] > learner.weights()["context"]


class TestRatings:
    def test_rate_and_average(self, repo_with_schema):
        repo, schema_id = repo_with_schema
        rate_schema(repo, schema_id, "alice", 5)
        rate_schema(repo, schema_id, "bob", 3)
        assert average_rating(repo, schema_id) == pytest.approx(4.0)

    def test_rerating_overwrites(self, repo_with_schema):
        repo, schema_id = repo_with_schema
        rate_schema(repo, schema_id, "alice", 5)
        rate_schema(repo, schema_id, "alice", 1)
        assert average_rating(repo, schema_id) == pytest.approx(1.0)

    def test_unrated_returns_none(self, repo_with_schema):
        repo, schema_id = repo_with_schema
        assert average_rating(repo, schema_id) is None

    def test_stars_range_enforced(self, repo_with_schema):
        repo, schema_id = repo_with_schema
        with pytest.raises(RepositoryError):
            rate_schema(repo, schema_id, "alice", 6)
        with pytest.raises(RepositoryError):
            rate_schema(repo, schema_id, "alice", 0)

    def test_empty_user_rejected(self, repo_with_schema):
        repo, schema_id = repo_with_schema
        with pytest.raises(RepositoryError):
            rate_schema(repo, schema_id, " ", 3)

    def test_unknown_schema_rejected(self, repo_with_schema):
        repo, _ = repo_with_schema
        with pytest.raises(RepositoryError):
            rate_schema(repo, 999, "alice", 3)


class TestComments:
    def test_comments_accumulate_in_order(self, repo_with_schema):
        repo, schema_id = repo_with_schema
        add_comment(repo, schema_id, "alice", "nice patient model")
        add_comment(repo, schema_id, "bob", "needs units on height")
        comments = comments_for(repo, schema_id)
        assert [c.body for c in comments] == \
            ["nice patient model", "needs units on height"]

    def test_empty_body_rejected(self, repo_with_schema):
        repo, schema_id = repo_with_schema
        with pytest.raises(RepositoryError):
            add_comment(repo, schema_id, "alice", "   ")


class TestUsageStats:
    def test_impressions_and_clicks(self, repo_with_schema):
        repo, schema_id = repo_with_schema
        record_impressions(repo, [schema_id, schema_id])
        record_click(repo, schema_id)
        stats = usage_stats(repo, schema_id)
        assert stats.impressions == 2
        assert stats.clicks == 1
        assert stats.click_through_rate == pytest.approx(0.5)

    def test_unseen_schema_zero_stats(self, repo_with_schema):
        repo, schema_id = repo_with_schema
        stats = usage_stats(repo, schema_id)
        assert stats.impressions == 0
        assert stats.click_through_rate == 0.0
