"""Tests for the extended CLI commands: summarize, annotate, export
formats."""

import pytest

from repro.cli import main

WAREHOUSE_DDL = """
CREATE TABLE patient (
  id INTEGER PRIMARY KEY,
  name VARCHAR(100),
  height DECIMAL(5,2),
  birth_date DATE
);
CREATE TABLE visit (
  id INTEGER PRIMARY KEY,
  patient_id INTEGER REFERENCES patient(id),
  visit_date DATE,
  temperature REAL
);
CREATE TABLE clinic (
  id INTEGER PRIMARY KEY,
  clinic_name VARCHAR(80),
  latitude REAL,
  longitude REAL
);
"""


@pytest.fixture
def populated_db(tmp_path):
    path = str(tmp_path / "repo.db")
    assert main(["init", path]) == 0
    ddl_file = tmp_path / "warehouse.sql"
    ddl_file.write_text(WAREHOUSE_DDL)
    assert main(["import", path, str(ddl_file), "--name", "warehouse"]) == 0
    return path


class TestSummarizeCommand:
    def test_prints_importance_ranking(self, populated_db, capsys):
        assert main(["summarize", populated_db, "1", "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "kept 2 of 3 entities" in out
        assert "importance=" in out

    def test_summary_svg_written(self, populated_db, tmp_path, capsys):
        out_file = tmp_path / "summary.svg"
        assert main(["summarize", populated_db, "1", "-k", "2",
                     "--out", str(out_file)]) == 0
        assert out_file.read_text().startswith("<svg")

    def test_missing_schema_fails(self, populated_db, capsys):
        assert main(["summarize", populated_db, "99"]) == 1


class TestAnnotateCommand:
    def test_prints_concepts_by_category(self, populated_db, capsys):
        assert main(["annotate", populated_db, "1"]) == 0
        out = capsys.readouterr().out
        assert "coverage" in out
        assert "[geographic]" in out
        assert "latitude" in out
        assert "length (m)" in out


class TestExportFormats:
    def test_export_ddl_roundtrips(self, populated_db, tmp_path, capsys):
        out_file = tmp_path / "export.sql"
        assert main(["export", populated_db, "1", "--format", "ddl",
                     "--out", str(out_file)]) == 0
        from repro.parsers.ddl import parse_ddl
        rebuilt = parse_ddl(out_file.read_text())
        assert set(rebuilt.entities) == {"patient", "visit", "clinic"}

    def test_export_xsd_parses(self, populated_db, tmp_path):
        out_file = tmp_path / "export.xsd"
        assert main(["export", populated_db, "1", "--format", "xsd",
                     "--out", str(out_file)]) == 0
        from repro.parsers.xsd import parse_xsd
        rebuilt = parse_xsd(out_file.read_text())
        assert "patient" in rebuilt.entities


class TestSampleAndExamples:
    def test_sample_then_show(self, populated_db, capsys):
        assert main(["sample", populated_db, "1", "--rows", "6"]) == 0
        out = capsys.readouterr().out
        assert "sampled 6 example rows" in out
        assert main(["examples", populated_db, "1", "--rows", "3"]) == 0
        out = capsys.readouterr().out
        assert "warehouse.patient" in out
        assert "|" in out

    def test_examples_without_sample_fails(self, populated_db, capsys):
        assert main(["examples", populated_db, "1"]) == 1
        assert "no data examples" in capsys.readouterr().out

    def test_sample_missing_schema(self, populated_db):
        assert main(["sample", populated_db, "99"]) == 1


class TestBackupAndDedup:
    def test_backup_command(self, populated_db, tmp_path, capsys):
        dest = str(tmp_path / "backup.db")
        assert main(["backup", populated_db, dest]) == 0
        assert "backed up 1 schema(s)" in capsys.readouterr().out

    def test_search_dedup_flag(self, populated_db, capsys):
        assert main(["search", populated_db, "--keywords",
                     "patient height", "--dedup"]) == 0
        out = capsys.readouterr().out
        assert "warehouse" in out
