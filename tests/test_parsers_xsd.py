"""Unit tests for the XSD parser."""

import pytest

from repro.errors import ParseError
from repro.parsers.xsd import SYNTHETIC_KEY_NOTE, parse_xsd

CLINIC_XSD = """<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
 <xs:element name="clinic">
  <xs:complexType>
   <xs:sequence>
    <xs:element name="name" type="xs:string"/>
    <xs:element name="district" type="xs:string"/>
    <xs:element name="patient">
     <xs:complexType>
      <xs:sequence>
       <xs:element name="height" type="xs:decimal"/>
       <xs:element name="gender" type="xs:string"/>
      </xs:sequence>
      <xs:attribute name="mrn" type="xs:string"/>
     </xs:complexType>
    </xs:element>
   </xs:sequence>
  </xs:complexType>
 </xs:element>
</xs:schema>"""


class TestBasicParsing:
    def test_complex_elements_become_entities(self):
        schema = parse_xsd(CLINIC_XSD)
        assert set(schema.entities) == {"clinic", "patient"}

    def test_leaf_elements_become_attributes(self):
        schema = parse_xsd(CLINIC_XSD)
        clinic = schema.entity("clinic")
        assert clinic.has_attribute("name")
        assert clinic.has_attribute("district")
        patient = schema.entity("patient")
        assert patient.has_attribute("height")
        assert patient.has_attribute("gender")

    def test_xsd_attributes_become_attributes(self):
        schema = parse_xsd(CLINIC_XSD)
        assert schema.entity("patient").has_attribute("mrn")

    def test_types_localized(self):
        schema = parse_xsd(CLINIC_XSD)
        assert schema.entity("patient").attribute("height").data_type == \
            "decimal"

    def test_source_marked(self):
        assert parse_xsd(CLINIC_XSD).source == "xsd"


class TestContainmentNormalization:
    def test_containment_becomes_fk(self):
        schema = parse_xsd(CLINIC_XSD)
        assert len(schema.foreign_keys) == 1
        fk = schema.foreign_keys[0]
        assert str(fk) == "patient.clinic_id -> clinic.id"

    def test_synthetic_keys_tagged(self):
        schema = parse_xsd(CLINIC_XSD)
        parent_key = schema.entity("clinic").attribute("id")
        child_ref = schema.entity("patient").attribute("clinic_id")
        assert parent_key.description == SYNTHETIC_KEY_NOTE
        assert child_ref.description == SYNTHETIC_KEY_NOTE
        assert parent_key.primary_key is True


class TestNamedTypes:
    XSD = """<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
     <xs:complexType name="AddressType">
      <xs:sequence>
       <xs:element name="street" type="xs:string"/>
       <xs:element name="city" type="xs:string"/>
      </xs:sequence>
     </xs:complexType>
     <xs:element name="customer">
      <xs:complexType>
       <xs:sequence>
        <xs:element name="name" type="xs:string"/>
        <xs:element name="address" type="AddressType"/>
       </xs:sequence>
      </xs:complexType>
     </xs:element>
    </xs:schema>"""

    def test_named_type_reference_resolved(self):
        schema = parse_xsd(self.XSD)
        assert "address" in schema.entities
        assert schema.entity("address").has_attribute("street")

    def test_orphan_named_type_still_indexed(self):
        xsd = """<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
         <xs:complexType name="Orphan">
          <xs:sequence><xs:element name="x" type="xs:string"/></xs:sequence>
         </xs:complexType>
        </xs:schema>"""
        schema = parse_xsd(xsd)
        assert "Orphan" in schema.entities


class TestEdgeCases:
    def test_malformed_xml_raises(self):
        with pytest.raises(ParseError, match="malformed XML"):
            parse_xsd("<xs:schema>")

    def test_non_xsd_root_raises(self):
        with pytest.raises(ParseError, match="expected xs:schema"):
            parse_xsd("<html/>")

    def test_empty_xsd_raises(self):
        with pytest.raises(ParseError, match="no elements"):
            parse_xsd('<xs:schema '
                      'xmlns:xs="http://www.w3.org/2001/XMLSchema"/>')

    def test_top_level_scalar_element(self):
        xsd = """<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
         <xs:element name="temperature" type="xs:decimal"/>
        </xs:schema>"""
        schema = parse_xsd(xsd)
        assert schema.entity("temperature").has_attribute("value")

    def test_recursive_type_terminates(self):
        xsd = """<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
         <xs:complexType name="Node">
          <xs:sequence>
           <xs:element name="label" type="xs:string"/>
           <xs:element name="child" type="Node"/>
          </xs:sequence>
         </xs:complexType>
         <xs:element name="tree" type="Node"/>
        </xs:schema>"""
        schema = parse_xsd(xsd)
        assert "tree" in schema.entities

    def test_choice_and_all_groups(self):
        xsd = """<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
         <xs:element name="contact">
          <xs:complexType>
           <xs:choice>
            <xs:element name="email" type="xs:string"/>
            <xs:element name="phone" type="xs:string"/>
           </xs:choice>
          </xs:complexType>
         </xs:element>
        </xs:schema>"""
        entity = parse_xsd(xsd).entity("contact")
        assert entity.has_attribute("email")
        assert entity.has_attribute("phone")

    def test_documentation_captured(self):
        xsd = """<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
         <xs:element name="site">
          <xs:complexType>
           <xs:annotation>
            <xs:documentation>A monitoring site.</xs:documentation>
           </xs:annotation>
           <xs:sequence>
            <xs:element name="name" type="xs:string"/>
           </xs:sequence>
          </xs:complexType>
         </xs:element>
        </xs:schema>"""
        assert parse_xsd(xsd).entity("site").description == \
            "A monitoring site."
