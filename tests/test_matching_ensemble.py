"""Unit tests for the matcher ensemble."""

import pytest

from repro.errors import MatchError
from repro.matching.base import Matcher, SimilarityMatrix
from repro.matching.ensemble import MatcherEnsemble
from repro.matching.name import NameMatcher
from repro.model.query import QueryGraph


class _ConstantMatcher(Matcher):
    """Fills the whole matrix with one value (test double)."""

    def __init__(self, name: str, value: float) -> None:
        self.name = name
        self._value = value

    def match(self, query, candidate, profile=None,
              scratch=None) -> SimilarityMatrix:
        matrix = self.empty_matrix(query, candidate,
                                   profile=profile, scratch=scratch)
        matrix.values[:] = self._value
        return matrix


@pytest.fixture
def query(paper_keywords) -> QueryGraph:
    return QueryGraph.build(keywords=paper_keywords)


class TestConfiguration:
    def test_default_is_name_plus_context(self):
        ensemble = MatcherEnsemble.default()
        assert ensemble.matcher_names == ("name", "context")
        assert set(ensemble.weights.values()) == {1.0}

    def test_empty_matcher_list_rejected(self):
        with pytest.raises(MatchError):
            MatcherEnsemble(matchers=[])

    def test_duplicate_names_rejected(self):
        with pytest.raises(MatchError, match="duplicate"):
            MatcherEnsemble(matchers=[NameMatcher(), NameMatcher()])

    def test_unknown_weight_name_rejected(self):
        ensemble = MatcherEnsemble.default()
        with pytest.raises(MatchError, match="unknown matchers"):
            ensemble.set_weights({"ghost": 1.0})

    def test_negative_weight_rejected(self):
        ensemble = MatcherEnsemble.default()
        with pytest.raises(MatchError):
            ensemble.set_weights({"name": -1.0})

    def test_all_zero_weights_rejected(self):
        ensemble = MatcherEnsemble.default()
        with pytest.raises(MatchError, match="positive"):
            ensemble.set_weights({"name": 0.0, "context": 0.0})

    def test_partial_weight_update_keeps_others(self):
        ensemble = MatcherEnsemble.default()
        ensemble.set_weights({"name": 3.0})
        assert ensemble.weights == {"name": 3.0, "context": 1.0}


class TestCombination:
    def test_uniform_combination_is_average(self, query, clinic_schema):
        ensemble = MatcherEnsemble(matchers=[
            _ConstantMatcher("a", 1.0), _ConstantMatcher("b", 0.0)])
        result = ensemble.match(query, clinic_schema)
        assert result.combined.values.max() == pytest.approx(0.5)
        assert result.combined.values.min() == pytest.approx(0.5)

    def test_weighted_combination(self, query, clinic_schema):
        ensemble = MatcherEnsemble(
            matchers=[_ConstantMatcher("a", 1.0), _ConstantMatcher("b", 0.0)],
            weights={"a": 3.0, "b": 1.0})
        result = ensemble.match(query, clinic_schema)
        assert result.combined.values.max() == pytest.approx(0.75)

    def test_per_matcher_matrices_returned(self, query, clinic_schema):
        ensemble = MatcherEnsemble.default()
        result = ensemble.match(query, clinic_schema)
        assert set(result.per_matcher) == {"name", "context"}

    def test_zero_weight_matcher_ignored_in_combined(self, query,
                                                     clinic_schema):
        ensemble = MatcherEnsemble(
            matchers=[_ConstantMatcher("a", 1.0), _ConstantMatcher("b", 0.4)],
            weights={"a": 0.0, "b": 1.0})
        result = ensemble.match(query, clinic_schema)
        assert result.combined.values.max() == pytest.approx(0.4)

    def test_default_ensemble_finds_paper_matches(self, query,
                                                  clinic_schema):
        result = MatcherEnsemble.default().match(query, clinic_schema)
        best = result.combined.max_per_column()
        assert best["patient.height"] > 0.4
        assert best["patient.gender"] > 0.4
        assert best["case.diagnosis"] > 0.3
