"""Property-based tests for the extension modules (hypothesis)."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.documents import Document
from repro.index.inverted import InvertedIndex
from repro.index.store import load_index, save_index
from repro.mapping.derive import derive_mapping
from repro.matching.base import SimilarityMatrix
from repro.parsers.ddl import parse_ddl
from repro.repository.exporter import export_ddl
from repro.viz.summarize import entity_importance, summarize_schema

from tests.test_properties import schemas, words


class TestExporterProperties:
    @settings(max_examples=40)
    @given(schemas())
    def test_ddl_roundtrip_preserves_structure(self, schema):
        rebuilt = parse_ddl(export_ddl(schema), schema.name)
        assert set(rebuilt.entities) == set(schema.entities)
        assert rebuilt.attribute_count == schema.attribute_count
        # FK multiset survives (export collapses exact duplicates only).
        assert {str(fk) for fk in rebuilt.foreign_keys} == \
            {str(fk) for fk in schema.foreign_keys}

    @settings(max_examples=40)
    @given(schemas())
    def test_ddl_roundtrip_preserves_attribute_order(self, schema):
        rebuilt = parse_ddl(export_ddl(schema), schema.name)
        for entity in schema.entities.values():
            rebuilt_names = [a.name for a in
                             rebuilt.entity(entity.name).attributes]
            assert rebuilt_names == [a.name for a in entity.attributes]


class TestIndexStoreProperties:
    @settings(max_examples=30)
    @given(st.lists(st.lists(words, min_size=1, max_size=6),
                    min_size=1, max_size=6))
    def test_persistence_preserves_statistics(self, term_lists):
        import tempfile
        from pathlib import Path
        index = InvertedIndex()
        for i, terms in enumerate(term_lists):
            index.add(Document(i, f"doc{i}", terms=terms))
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "segment.jsonl"
            save_index(index, path)
            loaded = load_index(path)
        assert loaded.document_count == index.document_count
        assert loaded.term_count == index.term_count
        for term in index.vocabulary():
            assert loaded.document_frequency(term) == \
                index.document_frequency(term)


class TestSummarizeProperties:
    @settings(max_examples=40)
    @given(schemas(), st.integers(min_value=1, max_value=6))
    def test_summary_invariants(self, schema, k):
        summary = summarize_schema(schema, k=k)
        # Size bound and importance ordering.
        assert len(summary.entities) == min(k, schema.entity_count)
        kept = set(summary.entities)
        importance = entity_importance(schema)
        if kept and len(kept) < schema.entity_count:
            worst_kept = min(importance[name] for name in kept)
            best_dropped = max(importance[name] for name in importance
                               if name not in kept)
            assert worst_kept >= best_dropped - 1e-9
        # Edges only connect kept entities.
        for edge in summary.edges:
            assert edge.source in kept
            assert edge.target in kept
            assert edge.source != edge.target

    @settings(max_examples=40)
    @given(schemas())
    def test_importance_is_distribution(self, schema):
        importance = entity_importance(schema)
        assert all(value >= 0 for value in importance.values())
        if importance:
            assert sum(importance.values()) == pytest.approx(1.0)


class TestMappingProperties:
    matrix_values = st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3),
                  st.floats(min_value=0.0, max_value=1.0)),
        min_size=0, max_size=12)

    @settings(max_examples=60)
    @given(matrix_values, st.floats(min_value=0.05, max_value=1.0))
    def test_mapping_is_one_to_one_and_thresholded(self, cells, threshold):
        rows = [f"q{i}" for i in range(4)]
        cols = [f"e{j}" for j in range(4)]
        matrix = SimilarityMatrix(rows, cols)
        for i, j, value in cells:
            if value > matrix.get(rows[i], cols[j]):
                matrix.set(rows[i], cols[j], value)
        mapping = derive_mapping(matrix, threshold=threshold)
        sources = [c.source_element for c in mapping.correspondences]
        targets = [c.target_element for c in mapping.correspondences]
        assert len(sources) == len(set(sources))
        assert len(targets) == len(set(targets))
        assert all(c.confidence >= threshold
                   for c in mapping.correspondences)

    @settings(max_examples=60)
    @given(matrix_values)
    def test_greedy_picks_global_best_pair_first(self, cells):
        rows = [f"q{i}" for i in range(4)]
        cols = [f"e{j}" for j in range(4)]
        matrix = SimilarityMatrix(rows, cols)
        for i, j, value in cells:
            if value > matrix.get(rows[i], cols[j]):
                matrix.set(rows[i], cols[j], value)
        mapping = derive_mapping(matrix, threshold=0.05)
        if mapping.correspondences:
            best = max(matrix.values.flatten())
            assert mapping.correspondences[0].confidence == \
                pytest.approx(best)


class TestCodebookProperties:
    attribute_names = st.text(
        alphabet=string.ascii_lowercase + "_", min_size=1, max_size=20)

    @settings(max_examples=80)
    @given(attribute_names, st.sampled_from(
        ["", "INTEGER", "VARCHAR(100)", "DATE", "BLOB", "DECIMAL(5,2)"]))
    def test_annotator_is_total_and_consistent(self, name, data_type):
        from repro.codebook.annotate import annotate_attribute
        first = annotate_attribute(name, data_type)
        second = annotate_attribute(name, data_type)
        if first is None:
            assert second is None
        else:
            assert second is not None
            assert first.concept.name == second.concept.name
            assert first.score >= 1.0


class TestFuzzyProperties:
    from hypothesis import strategies as _st
    vocab_lists = _st.lists(words, min_size=1, max_size=30, unique=True)

    @settings(max_examples=60)
    @given(vocab_lists, words)
    def test_suggestions_bounded_and_sorted(self, vocabulary, probe):
        from repro.index.fuzzy import TrigramIndex
        index = TrigramIndex.from_terms(vocabulary, max_suggestions=3)
        suggestions = index.suggest(probe)
        assert len(suggestions) <= 3
        sims = [s.similarity for s in suggestions]
        assert sims == sorted(sims, reverse=True)
        assert all(0.0 < s.similarity <= 1.0 for s in suggestions)
        assert all(s.term != probe for s in suggestions)
        assert all(s.term in vocabulary for s in suggestions)

    @settings(max_examples=60)
    @given(words)
    def test_trigrams_deterministic(self, term):
        from repro.index.fuzzy import term_trigrams
        assert term_trigrams(term) == term_trigrams(term)
        if len(term) >= 2:
            # Sets collapse repeated trigrams ("aaaa"), so <= not ==.
            assert 1 <= len(term_trigrams(term)) <= len(term) + 1


class TestDedupProperties:
    @settings(max_examples=40)
    @given(schemas())
    def test_fingerprint_invariant_under_restyle(self, schema):
        """Re-rendering every element name in a delimiter style must not
        change the fingerprint."""
        from repro.core.dedup import schema_fingerprint
        from repro.model.elements import Attribute, Entity
        from repro.model.schema import Schema

        def restyle(name: str) -> str:
            from repro.matching.normalize import normalize_words
            parts = normalize_words(name, expand=False)
            return "-".join(parts) if parts else name

        restyled = Schema(name=schema.name)
        for entity in schema.entities.values():
            new_entity = Entity(restyle(entity.name) or entity.name)
            seen = set()
            for attr in entity.attributes:
                renamed = restyle(attr.name) or attr.name
                if renamed in seen:
                    continue
                seen.add(renamed)
                new_entity.add_attribute(Attribute(renamed))
            try:
                restyled.add_entity(new_entity)
            except Exception:  # lint: fault-boundary (property becomes vacuous, not wrong)
                return  # restyling collided; property vacuous here
        if set(schema.entities) != {e for e in restyled.entities}:
            # entity names collided under restyling; skip
            if len(restyled.entities) != len(schema.entities):
                return
        a = schema_fingerprint(schema)
        b = schema_fingerprint(restyled)
        assert a == b


class TestSuggestProperties:
    @settings(max_examples=40)
    @given(st.lists(st.lists(words, min_size=1, max_size=5),
                    min_size=1, max_size=5), words)
    def test_every_suggestion_has_matching_prefix(self, term_lists, probe):
        from repro.index.suggest import PrefixSuggester
        index = InvertedIndex()
        for i, terms in enumerate(term_lists):
            index.add(Document(i, f"d{i}", terms=terms))
        suggester = PrefixSuggester(index)
        prefix = probe[:3]
        for suggestion in suggester.suggest(prefix):
            assert suggestion.term.startswith(prefix.lower())
            assert suggestion.document_frequency >= 1
