"""Unit tests for entity neighborhoods (FK transitive closure)."""

import pytest

from repro.errors import SchemaError
from repro.model.elements import Attribute, Entity, ForeignKey
from repro.model.schema import Schema
from repro.scoring.neighborhood import NeighborhoodIndex, entity_components


def chain_schema(n: int) -> Schema:
    """e0 -> e1 -> ... -> e{n-1} linked by FKs."""
    schema = Schema(name="chain")
    for i in range(n):
        schema.add_entity(Entity(f"e{i}", [Attribute("id")]))
    for i in range(n - 1):
        schema.add_foreign_key(ForeignKey(f"e{i}", "id", f"e{i+1}", "id"))
    return schema


class TestComponents:
    def test_figure4_single_component(self, clinic_schema):
        components = entity_components(clinic_schema)
        assert components == [{"patient", "doctor", "case"}]

    def test_isolated_entities_are_singletons(self, clinic_schema):
        clinic_schema.add_entity(Entity("island", [Attribute("x")]))
        components = entity_components(clinic_schema)
        assert {"island"} in components
        assert len(components) == 2

    def test_transitive_closure_spans_chain(self):
        schema = chain_schema(5)
        components = entity_components(schema)
        assert components == [{f"e{i}" for i in range(5)}]

    def test_two_components(self, clinic_schema, hr_schema):
        merged = Schema(name="merged")
        for schema in (clinic_schema, hr_schema):
            for entity in schema.entities.values():
                merged.add_entity(entity)
            for fk in schema.foreign_keys:
                merged.add_foreign_key(fk)
        assert len(entity_components(merged)) == 2

    def test_long_chain_does_not_recurse(self):
        # Iterative DFS must survive a 10k-entity chain.
        assert len(entity_components(chain_schema(10_000))[0]) == 10_000

    def test_empty_schema(self):
        assert entity_components(Schema(name="empty")) == []


class TestNeighborhoodIndex:
    def test_same_entity(self, clinic_schema):
        index = NeighborhoodIndex(clinic_schema)
        assert index.relation("patient", "patient") == \
            NeighborhoodIndex.SAME_ENTITY

    def test_same_neighborhood(self, clinic_schema):
        index = NeighborhoodIndex(clinic_schema)
        assert index.relation("patient", "doctor") == \
            NeighborhoodIndex.SAME_NEIGHBORHOOD
        assert index.relation("case", "patient") == \
            NeighborhoodIndex.SAME_NEIGHBORHOOD

    def test_unrelated(self, clinic_schema):
        clinic_schema.add_entity(Entity("island", [Attribute("x")]))
        index = NeighborhoodIndex(clinic_schema)
        assert index.relation("patient", "island") == \
            NeighborhoodIndex.UNRELATED

    def test_unknown_entity_raises(self, clinic_schema):
        index = NeighborhoodIndex(clinic_schema)
        with pytest.raises(SchemaError):
            index.relation("patient", "ghost")

    def test_same_neighborhood_predicate(self, clinic_schema):
        index = NeighborhoodIndex(clinic_schema)
        assert index.same_neighborhood("patient", "doctor")
        clinic_schema.add_entity(Entity("island", [Attribute("x")]))
        index = NeighborhoodIndex(clinic_schema)
        assert not index.same_neighborhood("patient", "island")

    def test_symmetry(self, clinic_schema):
        index = NeighborhoodIndex(clinic_schema)
        assert index.relation("patient", "doctor") == \
            index.relation("doctor", "patient")
