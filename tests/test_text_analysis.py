"""Unit tests for repro.text.analysis and stopwords."""

from repro.text.analysis import SCHEMA_ANALYZER, SIMPLE_ANALYZER, Analyzer
from repro.text.stopwords import STOPWORDS, is_stopword


class TestStopwords:
    def test_classic_lucene_words_present(self):
        for word in ("the", "and", "of", "with"):
            assert is_stopword(word)

    def test_schema_words_not_stopwords(self):
        for word in ("patient", "height", "name", "date"):
            assert not is_stopword(word)

    def test_frozen(self):
        assert isinstance(STOPWORDS, frozenset)


class TestSchemaAnalyzer:
    def test_splits_lowercases_stems(self):
        assert SCHEMA_ANALYZER.analyze("PatientObservations") == \
            ["patient", "observ"]

    def test_removes_stopwords(self):
        assert SCHEMA_ANALYZER.analyze("date_of_birth") == ["date", "birth"]

    def test_empty_input(self):
        assert SCHEMA_ANALYZER.analyze("") == []

    def test_all_stopwords_input(self):
        assert SCHEMA_ANALYZER.analyze("of the and") == []

    def test_analyze_all_concatenates_in_order(self):
        terms = SCHEMA_ANALYZER.analyze_all(["patient_id", "height"])
        assert terms == ["patient", "id", "height"]

    def test_unique_terms(self):
        assert SCHEMA_ANALYZER.unique_terms("patient patient_id") == \
            {"patient", "id"}


class TestSimpleAnalyzer:
    def test_no_stemming(self):
        assert SIMPLE_ANALYZER.analyze("observations") == ["observations"]

    def test_no_stopword_removal(self):
        assert SIMPLE_ANALYZER.analyze("date_of_birth") == \
            ["date", "of", "birth"]


class TestCustomAnalyzer:
    def test_length_filter(self):
        analyzer = Analyzer(min_length=3, stem=False,
                            remove_stopwords=False)
        assert analyzer.analyze("go to the db_x") == ["the"]

    def test_max_length_filter(self):
        analyzer = Analyzer(max_length=5, stem=False,
                            remove_stopwords=False)
        assert analyzer.analyze("short verylongtoken") == ["short"]

    def test_stemming_applies_after_filtering(self):
        analyzer = Analyzer(remove_stopwords=True, stem=True)
        # 'that' is a stopword; it never reaches the stemmer.
        assert analyzer.analyze("that observations") == ["observ"]
