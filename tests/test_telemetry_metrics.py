"""Unit tests for the metrics registry (counters, gauges, histograms)."""

import threading

import pytest

from repro.telemetry.metrics import (
    DEFAULT_COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter()
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            Counter().inc(-1)

    def test_callback_counter_reads_live_value(self):
        box = {"n": 0}
        c = Counter(callback=lambda: box["n"])
        assert c.value == 0
        box["n"] = 7
        assert c.value == 7


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == pytest.approx(12.0)

    def test_callback_gauge(self):
        items = [1, 2, 3]
        g = Gauge(callback=lambda: len(items))
        assert g.value == 3
        items.append(4)
        assert g.value == 4


class TestHistogram:
    def test_bucket_boundaries_are_inclusive_upper(self):
        h = Histogram(buckets=(1.0, 5.0, 10.0))
        for v in (0.5, 1.0, 1.1, 5.0, 9.9, 10.0, 11.0):
            h.observe(v)
        # <=1: 0.5, 1.0 | <=5: 1.1, 5.0 | <=10: 9.9, 10.0 | over: 11.0
        assert h.bucket_counts() == [2, 2, 2, 1]
        assert h.count == 7
        assert h.sum == pytest.approx(0.5 + 1.0 + 1.1 + 5.0 + 9.9
                                      + 10.0 + 11.0)

    def test_rejects_unsorted_or_duplicate_buckets(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram(buckets=(2.0, 1.0))
        with pytest.raises(ValueError, match="distinct"):
            Histogram(buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="at least one"):
            Histogram(buckets=())

    def test_quantile_interpolates_within_bucket(self):
        h = Histogram(buckets=(10.0, 20.0))
        for _ in range(10):
            h.observe(15.0)  # all land in the (10, 20] bucket
        # p50 interpolates half-way through the second bucket.
        assert h.quantile(0.5) == pytest.approx(15.0)
        assert h.quantile(0.0) == pytest.approx(10.0)

    def test_quantile_overflow_clamps_to_last_bound(self):
        h = Histogram(buckets=(1.0,))
        h.observe(100.0)
        assert h.quantile(0.99) == pytest.approx(1.0)

    def test_quantile_empty_is_zero(self):
        assert Histogram().quantile(0.5) == 0.0

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError, match="quantile"):
            Histogram().quantile(1.5)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "a counter")
        b = reg.counter("x_total")
        assert a is b

    def test_distinct_labels_are_distinct_series(self):
        reg = MetricsRegistry()
        a = reg.counter("hits", route="/a")
        b = reg.counter("hits", route="/b")
        assert a is not b
        a.inc(2)
        snap = reg.snapshot()
        assert snap.value("hits", route="/a") == 2
        assert snap.value("hits", route="/b") == 0

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.counter("r", x="1", y="2")
        b = reg.counter("r", y="2", x="1")
        assert a is b

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("dual")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("dual")

    def test_snapshot_find_and_value(self):
        reg = MetricsRegistry()
        reg.counter("n_total", "help").inc(3)
        snap = reg.snapshot()
        sample = snap.find("n_total")
        assert sample is not None
        assert sample.kind == "counter"
        assert sample.value == 3
        assert snap.find("missing") is None
        assert snap.value("missing") == 0.0

    def test_disabled_registry_hands_out_shared_null_instruments(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("a") is NULL_COUNTER
        assert reg.gauge("b") is NULL_GAUGE
        assert reg.histogram("c") is NULL_HISTOGRAM
        reg.counter("a").inc()
        reg.gauge("b").set(5)
        reg.histogram("c").observe(1.0)
        assert NULL_COUNTER.value == 0
        assert NULL_GAUGE.value == 0
        assert NULL_HISTOGRAM.count == 0
        assert reg.snapshot().samples == []

    def test_thread_safety_under_concurrent_updates(self):
        reg = MetricsRegistry()
        c = reg.counter("n_total")
        h = reg.histogram("t_seconds", buckets=DEFAULT_COUNT_BUCKETS)
        barrier = threading.Barrier(8)

        def work():
            barrier.wait()
            for i in range(1000):
                c.inc()
                h.observe(i % 7)
                # Lazy resolution from worker threads must be safe too.
                reg.counter("n_total").inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8 * 1000 * 2
        assert h.count == 8 * 1000
        assert sum(h.bucket_counts()) == 8 * 1000


class TestPrometheusText:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("req_total", "Requests", route="/x").inc(3)
        reg.gauge("depth", "Queue depth").set(2)
        text = reg.to_prometheus_text()
        assert "# HELP req_total Requests" in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{route="/x"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "depth 2" in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "Latency", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        h.observe(9.0)
        text = reg.to_prometheus_text()
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="2"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum 11" in text
        assert "lat_count 3" in text

    def test_help_type_emitted_once_per_family(self):
        reg = MetricsRegistry()
        reg.counter("f_total", "fam", a="1").inc()
        reg.counter("f_total", "fam", a="2").inc()
        text = reg.to_prometheus_text()
        assert text.count("# TYPE f_total counter") == 1

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("e_total", q='say "hi"\nback\\slash').inc()
        text = reg.to_prometheus_text()
        assert r'q="say \"hi\"\nback\\slash"' in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().to_prometheus_text() == ""
