"""Golden-equivalence suite for the phase-1 acceleration layer.

The packed and pruned searcher strategies and the generation-aware
query cache are *optimizations*: rankings, scores, and matched-term
counts must be byte-identical to the naive exhaustive reference loop —
exact float equality, not approx — across coordination on/off, fuzzy
expansion, paging offsets, and mid-sequence index mutations.
"""

from __future__ import annotations

import random

from repro.core.config import SchemrConfig
from repro.core.engine import DictSchemaSource, SchemrEngine
from repro.index.cache import QueryCache
from repro.index.documents import Document, document_from_schema
from repro.index.fuzzy import TrigramIndex
from repro.index.inverted import InvertedIndex
from repro.index.searcher import IndexSearcher
from repro.index.segments import SegmentedIndex, TieredMergePolicy
from repro.text.analysis import SCHEMA_ANALYZER

from tests.conftest import (
    build_clinic_schema,
    build_conservation_schema,
    build_hr_schema,
)

#: Sampling pools with sharply different document frequencies, so the
#: pruned searcher actually exercises its and-mode on the common terms.
COMMON = ["patient", "record", "status", "code", "value", "height"]
MEDIUM = ["gender", "diagnosis", "salary", "species", "orbit", "ledger"]
RARE = ["zygote", "quasar", "fjord", "kelp", "ombudsman", "yurt"]

QUERIES = [
    ["patient"],
    ["quasar"],
    ["patient", "height", "gender", "diagnosis"],
    ["zygote", "patient"],
    ["record", "status", "value", "code", "patient", "height"],
    ["fjord", "kelp", "yurt", "ombudsman"],
    ["patient", "zzznonsense"],
    ["salary", "ledger", "orbit"],
]


def synthetic_index(seed: int = 11, count: int = 250,
                    id_of=lambda i: i) -> InvertedIndex:
    rng = random.Random(seed)
    pool = COMMON * 8 + MEDIUM * 3 + RARE
    index = InvertedIndex()
    for i in range(count):
        words = [rng.choice(pool) for _ in range(rng.randint(3, 24))]
        terms = SCHEMA_ANALYZER.analyze_all(words)
        if not terms:
            terms = ["patient"]
        index.add(Document(doc_id=id_of(i), title=f"doc{i}", terms=terms))
    return index


def searcher_trio(index: InvertedIndex, use_coordination: bool = True,
                  fuzzy_factory=lambda index: None) -> list[IndexSearcher]:
    return [
        IndexSearcher(index, use_coordination=use_coordination,
                      fuzzy=fuzzy_factory(index), strategy=strategy)
        for strategy in ("naive", "packed", "pruned")
    ]


def assert_identical(index: InvertedIndex, queries=QUERIES,
                     top_ns=(1, 3, 10, 50, 1000), use_coordination=True,
                     fuzzy_factory=lambda index: None) -> None:
    naive, packed, pruned = searcher_trio(index, use_coordination,
                                          fuzzy_factory)
    for query in queries:
        for top_n in top_ns:
            expected = naive.search(query, top_n=top_n)
            assert packed.search(query, top_n=top_n) == expected
            assert pruned.search(query, top_n=top_n) == expected


class TestStrategyEquivalence:
    def test_synthetic_corpus_all_strategies(self):
        assert_identical(synthetic_index())

    def test_multiple_seeds(self):
        for seed in (3, 29, 101):
            assert_identical(synthetic_index(seed=seed, count=120),
                             top_ns=(1, 7, 40))

    def test_coordination_off(self):
        assert_identical(synthetic_index(), use_coordination=False)

    def test_fuzzy_expansion(self):
        fuzzy = lambda index: TrigramIndex.from_terms(index.vocabulary())
        queries = [
            ["pateint", "height"],        # transposition
            ["quasr"],                    # deletion
            ["zygote", "diagnossis"],
            ["patient", "gender"],        # no expansion needed
        ]
        assert_identical(synthetic_index(), queries=queries,
                         fuzzy_factory=fuzzy)

    def test_sparse_doc_ids_fall_back_exactly(self):
        """A sparse doc-id space routes pruned onto the packed path;
        results still match the naive reference."""
        index = synthetic_index(count=60, id_of=lambda i: i * 50_000 + 17)
        assert_identical(index, top_ns=(1, 5, 30))

    def test_single_document_corpus(self):
        index = InvertedIndex()
        index.add(Document(0, "only", terms=["patient", "height"]))
        assert_identical(index, top_ns=(1, 5))

    def test_mid_sequence_mutations(self):
        """add/remove/replace between queries must keep all strategies
        identical (packed columns, max-impact stats, and snapshots all
        update through the mutation path)."""
        rng = random.Random(7)
        index = synthetic_index(seed=5, count=150)
        assert_identical(index, top_ns=(1, 10))
        # Remove a third of the documents.
        for doc_id in rng.sample(range(150), 50):
            index.remove(doc_id)
        assert_identical(index, top_ns=(1, 10))
        # Replace some survivors with fresh term streams.
        survivors = [d.doc_id for d in index.documents()]
        pool = COMMON + MEDIUM + RARE
        for doc_id in rng.sample(survivors, 30):
            words = [rng.choice(pool) for _ in range(rng.randint(2, 12))]
            index.replace(Document(doc_id, f"re{doc_id}",
                                   terms=SCHEMA_ANALYZER.analyze_all(words)))
        assert_identical(index, top_ns=(1, 10))
        # Add brand-new documents on top.
        for i in range(200, 240):
            words = [rng.choice(pool) for _ in range(rng.randint(2, 12))]
            index.add(Document(i, f"new{i}",
                               terms=SCHEMA_ANALYZER.analyze_all(words)))
        assert_identical(index, top_ns=(1, 10, 500))


def segmented_clone(index: InvertedIndex, tmp_path,
                    flush_every: int = 64) -> SegmentedIndex:
    """An on-disk, multi-segment copy of ``index`` (same documents)."""
    clone = SegmentedIndex.open(tmp_path / "segments", create=True)
    for i, document in enumerate(sorted(index.documents(),
                                        key=lambda d: d.doc_id)):
        clone.add(document)
        if (i + 1) % flush_every == 0:
            clone.flush()
    clone.flush()
    return clone


def assert_backends_identical(memory: InvertedIndex,
                              segmented: SegmentedIndex,
                              queries=QUERIES, top_ns=(1, 10, 50),
                              fuzzy_factory=lambda index: None) -> None:
    """Rankings and scores from the mmapped backend must be
    byte-identical to the in-memory one for every strategy."""
    for strategy in ("naive", "packed", "pruned"):
        mem = IndexSearcher(memory, strategy=strategy,
                            fuzzy=fuzzy_factory(memory))
        seg = IndexSearcher(segmented, strategy=strategy,
                            fuzzy=fuzzy_factory(segmented))
        for query in queries:
            for top_n in top_ns:
                assert seg.search(query, top_n=top_n) == \
                    mem.search(query, top_n=top_n), (strategy, query, top_n)


class TestSegmentedEquivalence:
    """Golden-equivalence of the mmapped segment backend.

    The segmented index is an *optimization of storage*, not of
    ranking: document frequencies, norms, term frequencies and
    document counts must survive serialization exactly, so every
    score comes out byte-identical — across the delta segment,
    tombstones, flush swaps, and merges.
    """

    def test_segments_match_memory(self, tmp_path):
        index = synthetic_index()
        assert_backends_identical(index, segmented_clone(index, tmp_path))

    def test_multiple_seeds_and_sparse_ids(self, tmp_path):
        for seed, id_of in ((3, lambda i: i),
                            (29, lambda i: i * 50_000 + 17)):
            index = synthetic_index(seed=seed, count=120, id_of=id_of)
            clone = segmented_clone(index, tmp_path / str(seed))
            assert_backends_identical(index, clone, top_ns=(1, 7, 40))

    def test_mid_sequence_mutations_against_delta(self, tmp_path):
        """Mutations land in the delta; rankings must track the
        in-memory reference through every intermediate state."""
        rng = random.Random(13)
        memory = synthetic_index(seed=5, count=150)
        segmented = segmented_clone(memory, tmp_path)
        assert_backends_identical(memory, segmented)
        # Deletes tombstone mmapped documents.
        for doc_id in rng.sample(range(150), 40):
            memory.remove(doc_id)
            segmented.remove(doc_id)
        assert_backends_identical(memory, segmented)
        # Replacements shadow segment copies with delta copies.
        survivors = [d.doc_id for d in memory.documents()]
        pool = COMMON + MEDIUM + RARE
        for doc_id in rng.sample(survivors, 25):
            words = [rng.choice(pool) for _ in range(rng.randint(2, 12))]
            doc = Document(doc_id, f"re{doc_id}",
                           terms=SCHEMA_ANALYZER.analyze_all(words))
            memory.replace(doc)
            segmented.replace(doc)
        assert_backends_identical(memory, segmented)
        # Fresh adds live purely in the delta.
        for i in range(500, 540):
            words = [rng.choice(pool) for _ in range(rng.randint(2, 12))]
            doc = Document(i, f"new{i}",
                           terms=SCHEMA_ANALYZER.analyze_all(words))
            memory.add(doc)
            segmented.add(doc)
        assert_backends_identical(memory, segmented, top_ns=(1, 10, 500))

    def test_post_flush_and_post_merge(self, tmp_path):
        """Flush and merge are no-op swaps: same rankings, same
        generation, before and after."""
        rng = random.Random(17)
        memory = synthetic_index(seed=7, count=200)
        segmented = segmented_clone(memory, tmp_path, flush_every=32)
        for doc_id in rng.sample(range(200), 30):
            memory.remove(doc_id)
            segmented.remove(doc_id)
        generation = segmented.generation
        segmented.flush()
        assert segmented.generation == generation
        assert_backends_identical(memory, segmented)
        merged = segmented.maybe_merge(
            TieredMergePolicy(max_per_tier=1, floor_docs=64))
        assert merged > 1
        assert segmented.generation == generation
        assert segmented.deleted_count == 0
        assert_backends_identical(memory, segmented)

    def test_fuzzy_expansion_over_segments(self, tmp_path):
        """Trigram vocabularies built from each backend see the same
        live terms, so fuzzy-expanded rankings agree too."""
        index = synthetic_index(count=120)
        segmented = segmented_clone(index, tmp_path)
        fuzzy = lambda idx: TrigramIndex.from_terms(idx.vocabulary())
        queries = [["pateint", "height"], ["quasr"], ["diagnossis"]]
        assert_backends_identical(index, segmented, queries=queries,
                                  fuzzy_factory=fuzzy)

    def test_snapshot_matches_memory(self, tmp_path):
        index = synthetic_index(count=90)
        segmented = segmented_clone(index, tmp_path)
        segmented.remove(3)
        index.remove(3)
        mem_snap = index.snapshot()
        seg_snap = segmented.snapshot()
        assert seg_snap.norms == mem_snap.norms
        assert seg_snap.document_count == mem_snap.document_count
        assert seg_snap.max_norm == mem_snap.max_norm
        assert seg_snap.max_doc_id == mem_snap.max_doc_id


class TestNoOpSwapKeepsCacheWarm:
    """Segment swaps that preserve rankings must not nuke the warm
    query cache: eviction is keyed strictly to the generation, and
    flush/merge leave the generation alone."""

    def test_flush_preserves_cache_hits(self, tmp_path):
        index = synthetic_index(count=150)
        segmented = segmented_clone(index, tmp_path)
        cache = QueryCache(16)
        searcher = IndexSearcher(segmented, query_cache=cache)
        first = searcher.search(["patient", "height"], top_n=10)
        assert cache.misses == 1
        # Mutate (delta) then flush: the mutation bumps the
        # generation, the flush swap does not.
        segmented.add(Document(9000, "x", terms=["quasar"]))
        generation = segmented.generation
        segmented.flush()
        assert segmented.generation == generation
        searcher.search(["patient", "height"], top_n=10)  # repopulate
        assert cache.misses == 2
        again = searcher.search(["patient", "height"], top_n=10)
        assert cache.hits == 1
        assert again == searcher.search(["patient", "height"], top_n=10)
        segmented.flush()  # truly empty no-op swap
        assert searcher.search(["patient", "height"], top_n=10) == again
        assert cache.misses == 2  # still warm: no re-retrieval

    def test_merge_preserves_cache_and_evict_stale_is_noop(self, tmp_path):
        index = synthetic_index(count=200)
        segmented = segmented_clone(index, tmp_path, flush_every=32)
        cache = QueryCache(16)
        searcher = IndexSearcher(segmented, query_cache=cache)
        expected = searcher.search(["patient"], top_n=10)
        searcher.search(["quasar"], top_n=10)
        assert len(cache) == 2
        merged = segmented.maybe_merge(
            TieredMergePolicy(max_per_tier=1, floor_docs=64))
        assert merged > 1
        # The swap kept the generation, so a stale sweep removes
        # nothing and the warm entries still hit.
        assert cache.evict_stale(segmented.generation) == 0
        assert len(cache) == 2
        assert searcher.search(["patient"], top_n=10) == expected
        assert cache.hits == 1

    def test_mutation_still_invalidates_after_swap(self, tmp_path):
        index = synthetic_index(count=100)
        segmented = segmented_clone(index, tmp_path)
        cache = QueryCache(16)
        searcher = IndexSearcher(segmented, query_cache=cache)
        searcher.search(["patient"], top_n=10)
        segmented.add(Document(9100, "fresh", terms=["patient"]))
        segmented.flush()
        after = searcher.search(["patient"], top_n=10)
        assert any(hit.doc_id == 9100 for hit in after)
        assert cache.misses == 2  # generation moved: real invalidation


class TestGenerationAndSnapshot:
    def test_generation_bumps_on_every_mutation(self):
        index = InvertedIndex()
        g0 = index.generation
        index.add(Document(1, "a", terms=["patient"]))
        g1 = index.generation
        assert g1 > g0
        index.replace(Document(1, "a", terms=["height"]))
        g2 = index.generation
        assert g2 > g1
        index.remove(1)
        g3 = index.generation
        assert g3 > g2
        index.clear()
        assert index.generation > g3

    def test_snapshot_cached_per_generation(self):
        index = InvertedIndex()
        index.add(Document(1, "a", terms=["patient", "height"]))
        snap = index.snapshot()
        assert index.snapshot() is snap
        index.add(Document(2, "b", terms=["gender"]))
        fresh = index.snapshot()
        assert fresh is not snap
        assert fresh.document_count == 2
        assert fresh.max_doc_id == 2
        assert fresh.norms[1] == index.norm(1)
        # The old snapshot is immutable history.
        assert 2 not in snap.norms

    def test_snapshot_max_norm(self):
        index = InvertedIndex()
        index.add(Document(1, "long", terms=["a"] * 16))
        index.add(Document(2, "short", terms=["a"]))
        assert index.snapshot().max_norm == index.norm(2)


class TestQueryCacheIntegration:
    def test_cached_results_identical_and_hit(self):
        index = synthetic_index()
        naive = IndexSearcher(index, strategy="naive")
        cached = IndexSearcher(index, strategy="pruned",
                               query_cache=QueryCache(16))
        query = ["patient", "height", "gender"]
        first = cached.search(query, top_n=10)
        assert first == naive.search(query, top_n=10)
        assert cached.query_cache.misses == 1
        second = cached.search(query, top_n=10)
        assert second == first
        assert cached.query_cache.hits == 1

    def test_mutation_invalidates_through_generation(self):
        index = synthetic_index(count=80)
        cached = IndexSearcher(index, query_cache=QueryCache(16))
        naive = IndexSearcher(index, strategy="naive")
        query = ["patient", "zygote"]
        cached.search(query, top_n=10)
        index.add(Document(5000, "fresh",
                           terms=SCHEMA_ANALYZER.analyze_all(
                               ["zygote", "zygote", "patient"])))
        after = cached.search(query, top_n=10)
        assert after == naive.search(query, top_n=10)
        assert any(hit.doc_id == 5000 for hit in after)

    def test_stale_entries_evicted_on_generation_change(self):
        index = synthetic_index(count=40)
        cache = QueryCache(16)
        searcher = IndexSearcher(index, query_cache=cache)
        searcher.search(["patient"], top_n=5)
        searcher.search(["quasar"], top_n=5)
        assert len(cache) == 2
        index.add(Document(9000, "x", terms=["patient"]))
        searcher.search(["patient"], top_n=5)
        # Both old-generation entries were swept; one fresh entry lives.
        assert len(cache) == 1


def _engine_pair(schemas, config_kwargs=None):
    """Two engines over one corpus: query cache enabled vs disabled."""
    index = InvertedIndex()
    by_id = {}
    for i, schema in enumerate(schemas, start=1):
        schema.schema_id = i
        by_id[i] = schema
        index.add(document_from_schema(schema))
    source = DictSchemaSource(by_id)
    kwargs = dict(config_kwargs or {})
    with_cache = SchemrEngine(
        index=index, source=source,
        config=SchemrConfig(query_cache_size=32, **kwargs))
    without = SchemrEngine(
        index=index, source=source,
        config=SchemrConfig(query_cache_size=0, **kwargs))
    return with_cache, without


class TestEngineEquivalence:
    def test_paging_offsets_equal_with_and_without_cache(self):
        schemas = [build_clinic_schema(), build_hr_schema(),
                   build_conservation_schema(),
                   build_clinic_schema("clinic_two"),
                   build_hr_schema("hr_two")]
        with_cache, without = _engine_pair(schemas)
        for offset in (0, 1, 2, 4, 10):
            expected = without.search("patient, height, gender, diagnosis",
                                      top_n=2, offset=offset)
            got = with_cache.search("patient, height, gender, diagnosis",
                                    top_n=2, offset=offset)
            assert got == expected
        # Paged queries share one phase-1 ranking: only the first run
        # missed, every other offset was a cache hit.
        cache = with_cache.searcher.query_cache
        assert cache.misses == 1
        assert cache.hits == 4

    def test_fuzzy_vocabulary_refreshes_on_generation_change(self):
        """New schemas' terms must become visible to fuzzy expansion
        after an index mutation (the stale-TrigramIndex fix)."""
        schemas = [build_clinic_schema(), build_hr_schema()]
        engine, _ = _engine_pair(
            schemas, {"use_fuzzy_expansion": True})
        index = engine.searcher.index
        # Misspelling of a term nobody has indexed yet: no candidates.
        assert engine.search("kaleidoskope") == []
        late = build_conservation_schema("kaleidoscope_catalog")
        late.schema_id = 77
        engine._source._schemas[77] = late  # extend the dict source
        index.add(document_from_schema(late))
        hits = engine.search("kaleidoskope", top_n=5)
        assert any(r.schema_id == 77 for r in hits)
