"""Unit tests for repro.model.schema."""

import pytest

from repro.errors import SchemaError
from repro.model.elements import Attribute, ElementRef, Entity, ForeignKey
from repro.model.schema import Schema


class TestConstruction:
    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Schema(name="")

    def test_mismatched_entity_key_rejected(self):
        with pytest.raises(SchemaError, match="does not match"):
            Schema(name="s", entities={"wrong": Entity("right")})

    def test_add_entity_rejects_duplicates(self, clinic_schema):
        with pytest.raises(SchemaError, match="already has entity"):
            clinic_schema.add_entity(Entity("patient"))

    def test_foreign_key_unknown_entity_rejected(self, clinic_schema):
        with pytest.raises(SchemaError, match="unknown entity"):
            clinic_schema.add_foreign_key(
                ForeignKey("case", "patient", "ghost", "id"))

    def test_foreign_key_unknown_attribute_rejected(self, clinic_schema):
        with pytest.raises(SchemaError, match="unknown attribute"):
            clinic_schema.add_foreign_key(
                ForeignKey("case", "patient", "patient", "ghost"))

    def test_init_validates_preexisting_fks(self):
        entity = Entity("a", [Attribute("x")])
        with pytest.raises(SchemaError):
            Schema(name="s", entities={"a": entity},
                   foreign_keys=[ForeignKey("a", "x", "b", "y")])


class TestInspection:
    def test_counts(self, clinic_schema):
        assert clinic_schema.entity_count == 3
        assert clinic_schema.attribute_count == 12
        assert clinic_schema.element_count == 15

    def test_elements_order(self, clinic_schema):
        paths = [ref.path for ref in clinic_schema.elements()]
        assert paths[0] == "patient"
        assert "patient.height" in paths
        assert len(paths) == 15

    def test_attribute_refs_only_attributes(self, clinic_schema):
        refs = list(clinic_schema.attribute_refs())
        assert all(ref.attribute is not None for ref in refs)
        assert len(refs) == 12

    def test_element_resolution(self, clinic_schema):
        entity = clinic_schema.element(ElementRef("patient"))
        assert isinstance(entity, Entity)
        attr = clinic_schema.element(ElementRef("patient", "height"))
        assert isinstance(attr, Attribute)

    def test_has_element(self, clinic_schema):
        assert clinic_schema.has_element(ElementRef("patient", "height"))
        assert not clinic_schema.has_element(ElementRef("patient", "ghost"))
        assert not clinic_schema.has_element(ElementRef("ghost"))

    def test_entity_missing_raises(self, clinic_schema):
        with pytest.raises(SchemaError, match="no entity"):
            clinic_schema.entity("ghost")

    def test_terms_cover_every_name(self, clinic_schema):
        terms = clinic_schema.terms()
        assert "patient" in terms
        assert "diagnosis" in terms
        assert len(terms) == clinic_schema.element_count


class TestSerialization:
    def test_roundtrip_preserves_structure(self, clinic_schema):
        clinic_schema.schema_id = 42
        rebuilt = Schema.from_dict(clinic_schema.to_dict())
        assert rebuilt.name == clinic_schema.name
        assert rebuilt.schema_id == 42
        assert rebuilt.entity_count == clinic_schema.entity_count
        assert rebuilt.attribute_count == clinic_schema.attribute_count
        assert len(rebuilt.foreign_keys) == len(clinic_schema.foreign_keys)
        assert [r.path for r in rebuilt.elements()] == \
            [r.path for r in clinic_schema.elements()]

    def test_roundtrip_preserves_attribute_details(self, clinic_schema):
        rebuilt = Schema.from_dict(clinic_schema.to_dict())
        attr = rebuilt.entity("patient").attribute("id")
        assert attr.primary_key is True
        assert attr.nullable is False
        assert attr.data_type == "INTEGER"

    def test_from_dict_missing_key_raises(self):
        with pytest.raises(SchemaError, match="missing key"):
            Schema.from_dict({"description": "no name"})

    def test_copy_is_independent(self, clinic_schema):
        duplicate = clinic_schema.copy()
        duplicate.entity("patient").add_attribute(Attribute("weight"))
        assert not clinic_schema.entity("patient").has_attribute("weight")
