"""The offline integrity checker behind ``schemr verify-index``.

Corruption fixtures are surgical — flip one byte, drop one file, tear
one control file — so each test pins down which layer of the checker
(manifest CRCs, section structure, routing, tombstones) catches what.
"""

from __future__ import annotations

import json

import pytest

from repro.index.documents import Document
from repro.index.inverted import InvertedIndex
from repro.index.segments import (
    SegmentedIndex,
    open_segment_index,
    verify_directory,
    verify_segment_file,
    write_segment,
)
from repro.index.segments.sharded import SHARDS_NAME


def doc(i: int) -> Document:
    words = ["patient", "height", "salary", "orbit", "kelp", "ledger"]
    return Document(i, f"doc{i}", summary=f"s{i}",
                    terms=[words[i % 6], words[(i + 3) % 6], "common"])


def build_flat(path, count: int = 10) -> SegmentedIndex:
    index = SegmentedIndex.open(path, create=True)
    for i in range(count):
        index.add(doc(i))
    index.flush(last_change_id=count)
    return index


def committed_segment(path):
    manifest = json.loads((path / "MANIFEST.json").read_text())
    return path / manifest["segments"][0]["file"]


class TestVerifyFlat:
    def test_clean_directory_is_ok(self, tmp_path):
        build_flat(tmp_path)
        report = verify_directory(tmp_path)
        assert report.ok
        assert report.segments_checked == 1
        assert report.documents_checked == 10
        assert report.lines()[-1].startswith("OK")

    def test_flipped_byte_fails_crc(self, tmp_path):
        build_flat(tmp_path)
        seg = committed_segment(tmp_path)
        blob = bytearray(seg.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        seg.write_bytes(bytes(blob))
        report = verify_directory(tmp_path)
        assert not report.ok
        assert any("crc32" in message for _, message in report.problems)
        assert report.lines()[-1].startswith("FAIL")

    def test_truncated_segment_detected(self, tmp_path):
        build_flat(tmp_path)
        seg = committed_segment(tmp_path)
        seg.write_bytes(seg.read_bytes()[:-64])
        report = verify_directory(tmp_path)
        assert not report.ok
        assert any("bytes" in message for _, message in report.problems)

    def test_missing_referenced_segment(self, tmp_path):
        build_flat(tmp_path)
        committed_segment(tmp_path).unlink()
        report = verify_directory(tmp_path)
        assert not report.ok
        assert any("missing" in message for _, message in report.problems)

    def test_torn_manifest_is_a_problem(self, tmp_path):
        build_flat(tmp_path)
        (tmp_path / "MANIFEST.json").write_text('{"format": 1, "seg')
        report = verify_directory(tmp_path)
        assert not report.ok
        assert any("torn" in message for _, message in report.problems)

    def test_tombstone_for_absent_document(self, tmp_path):
        build_flat(tmp_path)
        manifest_path = tmp_path / "MANIFEST.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["segments"][0]["deleted"] = [424242]
        manifest_path.write_text(json.dumps(manifest))
        report = verify_directory(tmp_path)
        assert not report.ok
        assert any("tombstone" in message for _, message in report.problems)

    def test_orphans_warn_but_pass(self, tmp_path):
        build_flat(tmp_path)
        (tmp_path / "seg_77777777.seg").write_bytes(b"junk")
        (tmp_path / "seg_00000001.seg.tmp").write_bytes(b"junk")
        report = verify_directory(tmp_path)
        assert report.ok
        assert len(report.warnings) == 2
        assert any("orphan" in message for _, message in report.warnings)
        assert any("temp" in message for _, message in report.warnings)

    def test_not_a_segment_directory(self, tmp_path):
        report = verify_directory(tmp_path)
        assert not report.ok
        assert "not a segment directory" in report.problems[0][1]


class TestVerifySegmentFile:
    def test_shard_routing_violation(self, tmp_path):
        # Docs 0..5 in one segment: claiming it belongs to shard 1 of 2
        # must flag every even doc id as misrouted.
        index = InvertedIndex()
        for i in range(6):
            index.add(doc(i))
        path = tmp_path / "seg.seg"
        write_segment(path, index)
        assert verify_segment_file(path, shard=(0, 2)).ok is False
        ok_report = verify_segment_file(path, shard=(1, 2))
        assert not ok_report.ok
        assert any("routed to shard" in message
                   for _, message in ok_report.problems)
        assert verify_segment_file(path).ok  # no shard claim: fine

    def test_garbage_file_is_one_problem(self, tmp_path):
        path = tmp_path / "seg.seg"
        path.write_bytes(b"\x00" * 512)
        report = verify_segment_file(path)
        assert not report.ok
        assert report.segments_checked == 0


class TestVerifySharded:
    @pytest.fixture
    def sharded(self, tmp_path):
        index = open_segment_index(tmp_path, shards=2, create=True)
        for i in range(10):
            index.add(doc(i))
        index.flush(last_change_id=10)
        return tmp_path

    def test_clean_sharded_layout(self, sharded):
        report = verify_directory(sharded)
        assert report.ok
        assert report.segments_checked == 2
        assert report.documents_checked == 10

    def test_missing_shard_directory(self, sharded):
        import shutil
        shutil.rmtree(sharded / "shard_0001")
        report = verify_directory(sharded)
        assert not report.ok
        assert any("missing" in message for _, message in report.problems)

    def test_torn_shards_marker(self, sharded):
        (sharded / SHARDS_NAME).write_text('{"shards"')
        report = verify_directory(sharded)
        assert not report.ok

    def test_cross_shard_swap_caught_by_routing(self, sharded):
        # Byte-identical valid segments in the wrong shard directory:
        # only the routing check can see this.
        seg0 = committed_segment(sharded / "shard_0000")
        seg1 = committed_segment(sharded / "shard_0001")
        blob0, blob1 = seg0.read_bytes(), seg1.read_bytes()
        manifest0 = (sharded / "shard_0000" / "MANIFEST.json").read_text()
        manifest1 = (sharded / "shard_0001" / "MANIFEST.json").read_text()
        seg0.unlink()
        seg1.unlink()
        (sharded / "shard_0000" / seg1.name).write_bytes(blob1)
        (sharded / "shard_0001" / seg0.name).write_bytes(blob0)
        (sharded / "shard_0000" / "MANIFEST.json").write_text(manifest1)
        (sharded / "shard_0001" / "MANIFEST.json").write_text(manifest0)
        report = verify_directory(sharded)
        assert not report.ok
        assert any("routed to shard" in message
                   for _, message in report.problems)
