"""Unit tests for repro.index.inverted and documents."""

import math

import pytest

from repro.errors import IndexError_
from repro.index.documents import Document, document_from_schema
from repro.index.inverted import InvertedIndex


def make_doc(doc_id: int, terms: list[str], title: str = "t") -> Document:
    return Document(doc_id=doc_id, title=title, terms=terms)


class TestDocument:
    def test_negative_id_rejected(self):
        with pytest.raises(IndexError_):
            Document(doc_id=-1, title="x")

    def test_length(self):
        assert make_doc(1, ["a", "b", "a"]).length == 3


class TestDocumentFromSchema:
    def test_requires_schema_id(self, clinic_schema):
        with pytest.raises(IndexError_, match="no schema_id"):
            document_from_schema(clinic_schema)

    def test_flattens_title_description_and_elements(self, clinic_schema):
        clinic_schema.schema_id = 7
        doc = document_from_schema(clinic_schema)
        assert doc.doc_id == 7
        assert doc.title == "clinic_emr"
        assert "patient" in doc.terms      # element name, stemmed form
        assert "clinic" in doc.terms       # from title/description
        assert "diagnosi" in doc.terms     # stemmed 'diagnosis'


class TestInvertedIndex:
    def test_add_and_stats(self):
        index = InvertedIndex()
        index.add(make_doc(1, ["patient", "height"]))
        index.add(make_doc(2, ["patient", "salary"]))
        assert index.document_count == 2
        assert index.document_frequency("patient") == 2
        assert index.document_frequency("height") == 1
        assert index.document_frequency("ghost") == 0
        assert index.term_count == 3

    def test_duplicate_add_rejected(self):
        index = InvertedIndex()
        index.add(make_doc(1, ["a"]))
        with pytest.raises(IndexError_, match="already indexed"):
            index.add(make_doc(1, ["b"]))

    def test_remove_cleans_postings(self):
        index = InvertedIndex()
        index.add(make_doc(1, ["patient", "height"]))
        index.add(make_doc(2, ["patient"]))
        index.remove(1)
        assert index.document_count == 1
        assert index.document_frequency("height") == 0
        assert index.document_frequency("patient") == 1
        # 'height' postings list fully removed from the dictionary.
        assert index.postings("height") is None

    def test_remove_missing_raises(self):
        with pytest.raises(IndexError_):
            InvertedIndex().remove(1)

    def test_replace_updates_terms(self):
        index = InvertedIndex()
        index.add(make_doc(1, ["old"]))
        index.replace(make_doc(1, ["new"]))
        assert index.document_frequency("old") == 0
        assert index.document_frequency("new") == 1
        assert index.document_count == 1

    def test_replace_acts_as_add_when_absent(self):
        index = InvertedIndex()
        index.replace(make_doc(3, ["fresh"]))
        assert index.document_count == 1

    def test_norm_is_inverse_sqrt_length(self):
        index = InvertedIndex()
        index.add(make_doc(1, ["a", "b", "c", "d"]))
        assert index.norm(1) == pytest.approx(1.0 / math.sqrt(4))

    def test_norm_of_empty_document(self):
        index = InvertedIndex()
        index.add(make_doc(1, []))
        assert index.norm(1) == 1.0

    def test_positions_recorded(self):
        index = InvertedIndex()
        index.add(make_doc(1, ["a", "b", "a"]))
        posting = index.postings("a").get(1)
        assert posting.positions == [0, 2]

    def test_document_lookup(self):
        index = InvertedIndex()
        index.add(make_doc(1, ["a"], title="first"))
        assert index.document(1).title == "first"
        with pytest.raises(IndexError_):
            index.document(2)

    def test_contains_and_len(self):
        index = InvertedIndex()
        index.add(make_doc(5, ["a"]))
        assert 5 in index
        assert 6 not in index
        assert len(index) == 1

    def test_clear(self):
        index = InvertedIndex()
        index.add(make_doc(1, ["a"]))
        index.clear()
        assert index.document_count == 0
        assert index.term_count == 0

    def test_vocabulary(self):
        index = InvertedIndex()
        index.add(make_doc(1, ["b", "a"]))
        assert set(index.vocabulary()) == {"a", "b"}
