"""Unit tests for visualization: drill-in, layouts, SVG and ASCII."""

import math

import pytest

from repro.errors import SchemrError
from repro.model.elements import Attribute, Entity
from repro.model.graph import schema_to_networkx
from repro.model.schema import Schema
from repro.viz.ascii_art import render_ascii_tree
from repro.viz.drill import DEFAULT_MAX_DEPTH, display_subgraph, drill_in
from repro.viz.layout import find_root
from repro.viz.radial import radial_layout
from repro.viz.svg import render_side_by_side, render_svg
from repro.viz.tree import tree_layout


@pytest.fixture
def clinic_graph(clinic_schema):
    return schema_to_networkx(clinic_schema)


def deep_schema(levels: int = 6) -> Schema:
    """A schema whose graph is deeper than the display cap via a fake
    nesting chain (entities with one attribute each, wired by names)."""
    schema = Schema(name="deep")
    for i in range(levels):
        schema.add_entity(Entity(f"level{i}", [Attribute("x")]))
    return schema


class TestDisplaySubgraph:
    def test_default_cap_is_three(self):
        assert DEFAULT_MAX_DEPTH == 3

    def test_full_clinic_fits_under_cap(self, clinic_graph):
        display = display_subgraph(clinic_graph)
        assert display.number_of_nodes() == clinic_graph.number_of_nodes()

    def test_depth_attribute_assigned(self, clinic_graph):
        display = display_subgraph(clinic_graph)
        root = find_root(clinic_graph)
        assert display.nodes[root]["depth"] == 0
        assert display.nodes["patient"]["depth"] == 1
        assert display.nodes["patient.height"]["depth"] == 2

    def test_cap_cuts_attributes(self, clinic_graph):
        display = display_subgraph(clinic_graph, max_depth=1)
        assert display.has_node("patient")
        assert not display.has_node("patient.height")

    def test_collapsed_flag_on_cut_nodes(self, clinic_graph):
        display = display_subgraph(clinic_graph, max_depth=1)
        assert display.nodes["patient"]["collapsed"] is True
        full = display_subgraph(clinic_graph, max_depth=3)
        assert full.nodes["patient"]["collapsed"] is False

    def test_drill_in_recenters(self, clinic_graph):
        display = drill_in(clinic_graph, "patient")
        assert display.nodes["patient"]["depth"] == 0
        assert display.has_node("patient.height")
        assert not display.has_node("doctor")

    def test_fk_edges_kept_when_visible(self, clinic_graph):
        display = display_subgraph(clinic_graph)
        assert display.has_edge("case.patient", "patient.id")

    def test_fk_edges_dropped_when_endpoint_hidden(self, clinic_graph):
        display = drill_in(clinic_graph, "patient")
        assert not any(
            data.get("relation") == "foreign_key"
            for *_edge, data in display.edges(data=True))

    def test_unknown_focus_raises(self, clinic_graph):
        with pytest.raises(SchemrError):
            display_subgraph(clinic_graph, focus="ghost")

    def test_negative_depth_raises(self, clinic_graph):
        with pytest.raises(SchemrError):
            display_subgraph(clinic_graph, max_depth=-1)


class TestTreeLayout:
    def test_depth_maps_to_y(self, clinic_graph):
        layout = tree_layout(display_subgraph(clinic_graph))
        root = find_root(clinic_graph)
        assert layout.node(root).y < layout.node("patient").y \
            < layout.node("patient.height").y

    def test_parent_centered_over_children(self, clinic_graph):
        layout = tree_layout(display_subgraph(clinic_graph))
        children_x = [layout.node(f"patient.{a}").x
                      for a in ("id", "name", "height", "gender")]
        assert layout.node("patient").x == pytest.approx(
            (min(children_x) + max(children_x)) / 2)

    def test_leaves_do_not_overlap(self, clinic_graph):
        layout = tree_layout(display_subgraph(clinic_graph))
        leaf_xs = sorted(n.x for n in layout.nodes.values()
                         if n.kind == "attribute")
        for a, b in zip(leaf_xs, leaf_xs[1:]):
            assert b - a >= 1.0

    def test_dimensions_positive(self, clinic_graph):
        layout = tree_layout(display_subgraph(clinic_graph))
        assert layout.width > 0 and layout.height > 0

    def test_all_nodes_positioned(self, clinic_graph):
        display = display_subgraph(clinic_graph)
        layout = tree_layout(display)
        assert set(layout.nodes) == set(display.nodes)

    def test_missing_node_lookup_raises(self, clinic_graph):
        layout = tree_layout(display_subgraph(clinic_graph))
        with pytest.raises(SchemrError):
            layout.node("ghost")


class TestRadialLayout:
    def test_root_at_center(self, clinic_graph):
        layout = radial_layout(display_subgraph(clinic_graph))
        root = find_root(clinic_graph)
        center = layout.width / 2
        assert layout.node(root).x == pytest.approx(center)
        assert layout.node(root).y == pytest.approx(center)

    def test_depth_maps_to_radius(self, clinic_graph):
        layout = radial_layout(display_subgraph(clinic_graph))
        root_node = layout.node(find_root(clinic_graph))
        center = (root_node.x, root_node.y)

        def radius(node_id: str) -> float:
            node = layout.node(node_id)
            return math.hypot(node.x - center[0], node.y - center[1])

        assert radius("patient") == pytest.approx(110.0)
        assert radius("patient.height") == pytest.approx(220.0)

    def test_coordinates_non_negative(self, clinic_graph):
        layout = radial_layout(display_subgraph(clinic_graph))
        for node in layout.nodes.values():
            assert node.x >= 0 and node.y >= 0

    def test_siblings_get_distinct_angles(self, clinic_graph):
        layout = radial_layout(display_subgraph(clinic_graph))
        positions = {(round(layout.node(e).x, 3), round(layout.node(e).y, 3))
                     for e in ("patient", "doctor", "case")}
        assert len(positions) == 3


class TestSvg:
    def test_valid_svg_document(self, clinic_graph):
        svg = render_svg(tree_layout(display_subgraph(clinic_graph)),
                         title="clinic")
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "clinic" in svg

    def test_kind_colors_applied(self, clinic_graph):
        svg = render_svg(tree_layout(display_subgraph(clinic_graph)))
        assert "#dd8452" in svg  # entity color
        assert "#55a868" in svg  # attribute color

    def test_match_halo_rendered(self, clinic_graph):
        clinic_graph.nodes["patient.height"]["match_score"] = 0.9
        svg = render_svg(tree_layout(display_subgraph(clinic_graph)))
        assert "0.90" in svg  # score label inside the node

    def test_fk_edges_dashed(self, clinic_graph):
        svg = render_svg(tree_layout(display_subgraph(clinic_graph)))
        assert "stroke-dasharray" in svg

    def test_labels_escaped(self):
        schema = Schema(name="s")
        schema.add_entity(Entity("a<b", [Attribute("x")]))
        svg = render_svg(tree_layout(
            display_subgraph(schema_to_networkx(schema))))
        assert "a<b" not in svg.replace("a&lt;b", "")

    def test_side_by_side_contains_both(self, clinic_schema, hr_schema):
        layouts = [
            tree_layout(display_subgraph(schema_to_networkx(s)))
            for s in (clinic_schema, hr_schema)
        ]
        svg = render_side_by_side(layouts)
        assert "clinic_emr" in svg
        assert "hr_payroll" in svg

    def test_side_by_side_empty(self):
        assert render_side_by_side([]).startswith("<svg")


class TestAscii:
    def test_tree_structure_rendered(self, clinic_graph):
        art = render_ascii_tree(display_subgraph(clinic_graph))
        assert "clinic_emr" in art.splitlines()[0]
        assert "├──" in art or "└──" in art
        assert "patient" in art

    def test_types_and_kinds_shown(self, clinic_graph):
        art = render_ascii_tree(display_subgraph(clinic_graph))
        assert "[entity]" in art
        assert "DECIMAL(5,2)" in art

    def test_match_scores_shown(self, clinic_graph):
        clinic_graph.nodes["patient.height"]["match_score"] = 0.75
        art = render_ascii_tree(display_subgraph(clinic_graph))
        assert "(match 0.75)" in art

    def test_collapsed_marker(self, clinic_graph):
        art = render_ascii_tree(display_subgraph(clinic_graph, max_depth=1))
        assert "+" in art
