"""Unit tests for repro.text.splitter."""

from repro.text.splitter import split_identifier, split_words_lower


class TestSplitIdentifier:
    def test_snake_case(self):
        assert split_identifier("patient_height") == ["patient", "height"]

    def test_camel_case(self):
        assert split_identifier("patientHeight") == ["patient", "Height"]

    def test_pascal_case(self):
        assert split_identifier("PatientHeight") == ["Patient", "Height"]

    def test_acronym_boundary(self):
        assert split_identifier("XMLHttpRequest") == ["XML", "Http", "Request"]

    def test_trailing_acronym_kept_whole(self):
        assert split_identifier("parseURL") == ["parse", "URL"]

    def test_digit_boundaries(self):
        assert split_identifier("addr2") == ["addr", "2"]
        assert split_identifier("2ndAddress") == ["2", "nd", "Address"]

    def test_mixed_delimiters(self):
        assert split_identifier("first-name.last_name") == \
            ["first", "name", "last", "name"]

    def test_spaces(self):
        assert split_identifier("order  date") == ["order", "date"]

    def test_empty_string(self):
        assert split_identifier("") == []

    def test_only_delimiters(self):
        assert split_identifier("___--..") == []

    def test_punctuation_stripped(self):
        assert split_identifier("price($)") == ["price"]

    def test_single_word(self):
        assert split_identifier("diagnosis") == ["diagnosis"]


class TestSplitWordsLower:
    def test_lowercases(self):
        assert split_words_lower("PatientHeight") == ["patient", "height"]

    def test_preserves_order(self):
        assert split_words_lower("last_name_first") == \
            ["last", "name", "first"]
