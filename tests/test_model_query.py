"""Unit tests for repro.model.query."""

import pytest

from repro.errors import QueryError
from repro.model.query import QueryGraph, QueryItem, QueryItemKind


class TestQueryItem:
    def test_keyword_item_requires_keyword(self):
        with pytest.raises(QueryError):
            QueryItem(QueryItemKind.KEYWORD)

    def test_fragment_item_requires_fragment(self):
        with pytest.raises(QueryError):
            QueryItem(QueryItemKind.FRAGMENT)

    def test_keyword_item_rejects_fragment(self, clinic_schema):
        with pytest.raises(QueryError):
            QueryItem(QueryItemKind.KEYWORD, keyword="x",
                      fragment=clinic_schema)


class TestQueryGraph:
    def test_build_mixes_keywords_and_fragments(self, clinic_schema):
        graph = QueryGraph.build(keywords=["height"],
                                 fragments=[clinic_schema])
        assert graph.keywords == ["height"]
        assert graph.fragments == [clinic_schema]
        assert not graph.is_empty()

    def test_empty_keyword_rejected(self):
        graph = QueryGraph()
        with pytest.raises(QueryError):
            graph.add_keyword("   ")

    def test_keyword_whitespace_stripped(self):
        graph = QueryGraph()
        graph.add_keyword("  height ")
        assert graph.keywords == ["height"]

    def test_element_labels_namespaced(self, clinic_schema):
        graph = QueryGraph.build(keywords=["patient"],
                                 fragments=[clinic_schema])
        labels = graph.element_labels()
        assert labels[0] == "kw:patient"
        assert "f0:patient" in labels
        assert "f0:patient.height" in labels

    def test_labels_unique_with_duplicate_keywords(self):
        graph = QueryGraph.build(keywords=["gender", "gender"])
        labels = graph.element_labels()
        assert len(labels) == len(set(labels)) == 2
        assert labels == ["kw:gender", "kw:gender#2"]

    def test_labels_unique_with_two_fragments(self, clinic_schema,
                                              hr_schema):
        graph = QueryGraph.build(fragments=[clinic_schema, hr_schema])
        labels = graph.element_labels()
        assert len(labels) == len(set(labels))
        assert any(label.startswith("f0:") for label in labels)
        assert any(label.startswith("f1:") for label in labels)

    def test_element_names_use_local_names(self, clinic_schema):
        graph = QueryGraph.build(fragments=[clinic_schema])
        names = graph.element_names()
        assert "height" in names
        assert "patient" in names
        # Paths never leak into names.
        assert all("." not in name for name in names
                   if name not in ("patient", "doctor", "case"))

    def test_flatten_matches_keyword_plus_fragment(self, clinic_schema,
                                                   paper_keywords):
        graph = QueryGraph.build(keywords=paper_keywords,
                                 fragments=[clinic_schema])
        flattened = graph.flatten()
        assert flattened[:4] == paper_keywords
        assert len(flattened) == 4 + clinic_schema.element_count

    def test_len_counts_elements(self, clinic_schema):
        graph = QueryGraph.build(keywords=["a", "b"],
                                 fragments=[clinic_schema])
        assert len(graph) == 2 + clinic_schema.element_count

    def test_labels_and_names_align(self, clinic_schema):
        graph = QueryGraph.build(keywords=["height"],
                                 fragments=[clinic_schema])
        assert len(graph.element_labels()) == len(graph.element_names())
