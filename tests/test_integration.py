"""End-to-end integration tests: the whole system on a generated corpus."""

import pytest

from repro.corpus.domains import DOMAINS
from repro.corpus.generator import CorpusGenerator
from repro.corpus.filters import paper_filter
from repro.corpus.groundtruth import QuerySampler
from repro.core.config import SchemrConfig
from repro.eval.runner import evaluate_engine
from repro.matching.ensemble import MatcherEnsemble
from repro.matching.learner import WeightLearner
from repro.repository.collab import record_click, record_impressions, usage_stats
from repro.repository.history import build_training_set, record_search
from repro.repository.store import SchemaRepository
from repro.service.client import SchemrClient
from repro.service.server import SchemrServer


@pytest.fixture(scope="module")
def corpus_repository():
    """A 150-schema filtered corpus stored and indexed once per module."""
    generator = CorpusGenerator(seed=42)
    stats = paper_filter(generator.generate_raw_stream(180))
    repo = SchemaRepository.in_memory()
    for generated in stats.kept:
        repo.add_schema(generated.schema)
    repo.reindex()
    yield repo, stats.kept
    repo.close()


class TestSearchQuality:
    def test_clean_queries_rank_well(self, corpus_repository):
        repo, corpus = corpus_repository
        engine = repo.engine()
        sampler = QuerySampler(corpus, DOMAINS, seed=9)
        report = evaluate_engine(engine, sampler.sample(15), label="full")
        assert report.mrr > 0.7
        assert report.ndcg_at_10 > 0.6

    def test_full_beats_tfidf_baseline_on_noisy_queries(self,
                                                        corpus_repository):
        """The paper's core claim: fine-grained matching + structure
        beats the coarse TF/IDF filter alone."""
        repo, corpus = corpus_repository
        sampler = QuerySampler(corpus, DOMAINS, seed=10)
        queries = (sampler.sample(10, channel="clean")
                   + sampler.sample(10, channel="delimiter"))
        engine = repo.engine()

        def full_rank(keywords, top_n):
            return [r.schema_id
                    for r in engine.search(keywords=keywords, top_n=top_n)]

        # TF-IDF-only baseline: rank by the phase-1 coarse score alone.
        searcher = repo.engine(
            config=SchemrConfig(use_tightness=False)).searcher

        def tfidf_rank(keywords, top_n):
            return [hit.doc_id
                    for hit in searcher.search(keywords, top_n=top_n)]

        # Paired comparison on per-query reciprocal rank: the full
        # pipeline must not be *significantly worse* at putting a right
        # answer first.  (On strict graded ground truth the tightness
        # sum trades some MAP depth for breadth-of-match ranking — a
        # documented property, see EXPERIMENTS.md E2 — so first-hit
        # quality is the claim to hold.)
        from repro.eval.metrics import reciprocal_rank
        from repro.eval.significance import paired_bootstrap, per_query_scores
        full_scores = per_query_scores(full_rank, queries,
                                       reciprocal_rank)
        tfidf_scores = per_query_scores(tfidf_rank, queries,
                                        reciprocal_rank)
        comparison = paired_bootstrap(full_scores, tfidf_scores,
                                      iterations=2000)
        assert comparison.delta >= 0 or not comparison.significant, \
            comparison.summary()

    def test_search_is_deterministic(self, corpus_repository):
        repo, _ = corpus_repository
        engine = repo.engine()
        first = engine.search(keywords="patient height gender")
        second = engine.search(keywords="patient height gender")
        assert [r.schema_id for r in first] == \
            [r.schema_id for r in second]


class TestLearnedWeights:
    def test_history_improves_or_preserves_weighting(self,
                                                     corpus_repository):
        """Record clicks where the name matcher was informative; learned
        weights must favor name over context afterwards."""
        repo, corpus = corpus_repository
        engine = repo.engine()
        sampler = QuerySampler(corpus, DOMAINS, seed=11)
        for query in sampler.sample(25):
            results = engine.search(keywords=query.keywords, top_n=5)
            for result in results:
                relevant = result.schema_id in query.exact_ids
                ensemble_result = engine.ensemble.match(
                    _query_graph(query), repo.get_schema(result.schema_id))
                features = {
                    name: float(matrix.values.max())
                    for name, matrix in ensemble_result.per_matcher.items()
                }
                record_search(repo, " ".join(query.keywords),
                              result.schema_id, relevant, features)
        examples = build_training_set(repo)
        assert len(examples) >= 50
        learner = WeightLearner(engine.ensemble.matcher_names)
        learner.fit(examples)
        weights = learner.weights()
        ensemble = MatcherEnsemble.default()
        ensemble.set_weights(weights)  # must be accepted
        assert sum(weights.values()) == pytest.approx(1.0)


def _query_graph(query):
    from repro.model.query import QueryGraph
    return QueryGraph.build(keywords=query.keywords)


class TestServiceOverCorpus:
    def test_http_roundtrip_on_generated_corpus(self, corpus_repository):
        repo, corpus = corpus_repository
        server = SchemrServer(repo)
        with server.running() as base_url:
            client = SchemrClient(base_url)
            results = client.search("patient height gender", top_n=5)
            assert results
            graph = client.schema_graph(results[0].schema_id,
                                        match_scores=results[0]
                                        .element_scores)
            assert graph.number_of_nodes() > 1

    def test_usage_stats_workflow(self, corpus_repository):
        repo, _ = corpus_repository
        engine = repo.engine()
        results = engine.search(keywords="species site observation",
                                top_n=5)
        assert results
        record_impressions(repo, [r.schema_id for r in results])
        record_click(repo, results[0].schema_id)
        stats = usage_stats(repo, results[0].schema_id)
        assert stats.impressions >= 1
        assert stats.clicks >= 1


class TestDesignIterationScenario:
    """The paper's 'new model development process': search, refine the
    draft with what was found, search again."""

    def test_iterative_refinement(self, corpus_repository):
        repo, _ = corpus_repository
        engine = repo.engine()
        draft = "CREATE TABLE patient (height DECIMAL, gender CHAR(1));"
        first = engine.search(fragment=draft, top_n=5)
        assert first
        # Designer adopts an element from the top hit and searches again.
        refined = ("CREATE TABLE patient (height DECIMAL, gender CHAR(1),"
                   " blood_type VARCHAR(3));")
        second = engine.search(fragment=refined, top_n=5)
        assert second
        assert second[0].match_count >= first[0].match_count
