"""Tests for the server-rendered HTML GUI."""

import urllib.parse
import urllib.request

import pytest

from repro.service.gui import render_schema_svg, render_search_page
from repro.service.server import SchemrServer


@pytest.fixture
def base_url(small_repository):
    server = SchemrServer(small_repository)
    server.start()
    yield server.base_url
    server.stop()


def fetch(url: str, data: bytes | None = None) -> tuple[int, str, str]:
    request = urllib.request.Request(url, data=data)
    with urllib.request.urlopen(request, timeout=10) as response:
        return (response.status,
                response.headers.get("Content-Type", ""),
                response.read().decode("utf-8"))


class TestRenderSearchPage:
    def test_empty_form(self):
        html = render_search_page()
        assert html.startswith("<!DOCTYPE html>")
        assert '<form method="post"' in html
        assert "result(s)" not in html

    def test_results_table(self, small_repository, paper_keywords):
        engine = small_repository.engine()
        results = engine.search(keywords=paper_keywords)
        html = render_search_page("patient", "", results)
        assert "clinic_emr" in html
        assert "/schema/1/svg" in html
        assert f"{len(results)} result(s)" in html

    def test_escaping(self, small_repository):
        html = render_search_page('<script>alert("x")</script>', "", [])
        assert "<script>" not in html


class TestRenderSchemaSvg:
    def test_radial_default(self, clinic_schema):
        svg = render_schema_svg(clinic_schema)
        assert svg.startswith("<svg")
        assert "clinic_emr" in svg

    def test_tree_layout(self, clinic_schema):
        assert render_schema_svg(clinic_schema,
                                 layout="tree").startswith("<svg")

    def test_focus_drills_in(self, clinic_schema):
        svg = render_schema_svg(clinic_schema, focus="patient")
        assert "height" in svg
        assert "doctor" not in svg

    def test_match_scores_rendered(self, clinic_schema):
        svg = render_schema_svg(
            clinic_schema, match_scores={"patient.height": 0.9})
        assert "0.90" in svg


class TestGuiOverHttp:
    def test_root_serves_form(self, base_url):
        status, content_type, body = fetch(f"{base_url}/")
        assert status == 200
        assert "text/html" in content_type
        assert "Schemr" in body

    def test_get_query_renders_results(self, base_url):
        query = urllib.parse.urlencode(
            {"keywords": "patient height gender"})
        _status, _type, body = fetch(f"{base_url}/?{query}")
        assert "clinic_emr" in body
        assert "<table>" in body

    def test_post_form_with_fragment(self, base_url):
        form = urllib.parse.urlencode({
            "keywords": "diagnosis",
            "fragment": "CREATE TABLE patient (height DECIMAL);",
        }).encode("ascii")
        _status, _type, body = fetch(f"{base_url}/", data=form)
        assert "clinic_emr" in body

    def test_svg_endpoint(self, base_url):
        status, content_type, body = fetch(
            f"{base_url}/schema/1/svg?layout=tree")
        assert status == 200
        assert "image/svg+xml" in content_type
        assert body.startswith("<svg")

    def test_svg_with_scores_and_focus(self, base_url):
        scores = urllib.parse.quote("patient.height:0.8")
        _s, _t, body = fetch(
            f"{base_url}/schema/1/svg?focus=patient&scores={scores}")
        assert "0.80" in body

    def test_svg_bad_id(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(f"{base_url}/schema/nope/svg")
        assert excinfo.value.code == 400

    def test_figure2_two_panel_flow(self, base_url):
        """Search in the left panel, open the visualization linked from
        the results row — the Figure 2 interaction, over HTTP."""
        query = urllib.parse.urlencode(
            {"keywords": "patient height gender diagnosis"})
        _s, _t, page = fetch(f"{base_url}/?{query}")
        # Pull the first SVG link out of the results table.
        start = page.index('href="') + len('href="')
        link = page[start:page.index('"', start)].replace("&amp;", "&")
        _s, content_type, svg = fetch(f"{base_url}{link}")
        assert "image/svg+xml" in content_type
        assert svg.startswith("<svg")


class TestGuiPagination:
    def test_next_page_link_on_full_page(self):
        results = []
        from repro.core.results import SearchResult
        for i in range(10):
            results.append(SearchResult(
                schema_id=i + 1, name=f"s{i}", score=1.0 - i * 0.05,
                match_count=1, entity_count=1, attribute_count=3))
        html = render_search_page("patient", "", results)
        assert "next 10 schemas" in html
        assert "offset=10" in html

    def test_no_next_link_on_short_page(self):
        from repro.core.results import SearchResult
        results = [SearchResult(schema_id=1, name="s", score=1.0,
                                match_count=1, entity_count=1,
                                attribute_count=3)]
        html = render_search_page("patient", "", results)
        assert "next 10 schemas" not in html

    def test_offset_shown_in_header(self):
        from repro.core.results import SearchResult
        results = [SearchResult(schema_id=1, name="s", score=1.0,
                                match_count=1, entity_count=1,
                                attribute_count=3)]
        html = render_search_page("patient", "", results, offset=10)
        assert "results 11" in html

    def test_http_offset_round_trip(self, base_url):
        import urllib.parse
        query = urllib.parse.urlencode(
            {"keywords": "name gender id", "offset": 1})
        _s, _t, body = fetch(f"{base_url}/?{query}")
        assert "<table>" in body or "result(s)" in body
