"""Tests for result deduplication and repository backup."""

import pytest

from repro.core.dedup import (
    collapse_duplicates,
    fingerprint_overlap,
    format_deduped,
    schema_fingerprint,
)
from repro.errors import RepositoryError, SchemrError
from repro.repository.backup import (
    backup_repository,
    restore_repository,
    vacuum_repository,
)
from repro.repository.store import SchemaRepository

from tests.conftest import build_clinic_schema, build_hr_schema


class TestFingerprint:
    def test_style_noise_washes_out(self):
        from repro.parsers.ddl import parse_ddl
        snake = parse_ddl(
            "CREATE TABLE patient_record (first_name TEXT, "
            "birth_date DATE);", "a")
        camel = parse_ddl(
            "CREATE TABLE PatientRecord (FirstName TEXT, "
            "BirthDate DATE);", "b")
        assert schema_fingerprint(snake) == schema_fingerprint(camel)

    def test_different_schemas_differ(self, clinic_schema, hr_schema):
        overlap = fingerprint_overlap(schema_fingerprint(clinic_schema),
                                      schema_fingerprint(hr_schema))
        assert overlap < 0.5

    def test_empty_fingerprint_zero_overlap(self):
        assert fingerprint_overlap(frozenset(), frozenset({"x"})) == 0.0


class TestCollapseDuplicates:
    @pytest.fixture
    def repo_with_duplicates(self):
        """Three renderings of the clinic schema + one HR schema."""
        from repro.model.elements import Attribute, Entity
        from repro.model.schema import Schema
        repo = SchemaRepository.in_memory()
        repo.add_schema(build_clinic_schema(name="clinic_a"))
        repo.add_schema(build_clinic_schema(name="clinic_b"))
        # A camelCase rendering of the same vocabulary.
        variant = Schema(name="ClinicC")
        for entity in build_clinic_schema().entities.values():
            renamed = Entity("".join(
                w.capitalize() for w in entity.name.split("_")))
            for attr in entity.attributes:
                renamed.add_attribute(Attribute(
                    "".join(w.capitalize() for w in attr.name.split("_")),
                    attr.data_type))
            variant.add_entity(renamed)
        repo.add_schema(variant)
        repo.add_schema(build_hr_schema())
        repo.reindex()
        yield repo
        repo.close()

    def test_duplicates_collapsed(self, repo_with_duplicates,
                                  paper_keywords):
        engine = repo_with_duplicates.engine()
        results = engine.search(keywords=paper_keywords, top_n=10)
        assert len(results) >= 3
        groups = collapse_duplicates(results, repo_with_duplicates)
        clinic_groups = [g for g in groups
                         if "linic" in g.representative.name]
        assert len(clinic_groups) == 1
        assert clinic_groups[0].similar_count == 2

    def test_representative_is_best_ranked(self, repo_with_duplicates,
                                           paper_keywords):
        engine = repo_with_duplicates.engine()
        results = engine.search(keywords=paper_keywords, top_n=10)
        groups = collapse_duplicates(results, repo_with_duplicates)
        assert groups[0].representative.schema_id == results[0].schema_id

    def test_distinct_schemas_not_collapsed(self, repo_with_duplicates):
        engine = repo_with_duplicates.engine()
        results = engine.search(keywords="name gender salary", top_n=10)
        groups = collapse_duplicates(results, repo_with_duplicates)
        names = {g.representative.name for g in groups}
        assert any("hr" in name for name in names)

    def test_overlap_validation(self, repo_with_duplicates):
        with pytest.raises(SchemrError):
            collapse_duplicates([], repo_with_duplicates, overlap=0.0)

    def test_format_shows_similar_counts(self, repo_with_duplicates,
                                         paper_keywords):
        engine = repo_with_duplicates.engine()
        results = engine.search(keywords=paper_keywords, top_n=10)
        text = format_deduped(
            collapse_duplicates(results, repo_with_duplicates))
        assert "+2 similar" in text


class TestBackup:
    def test_backup_and_restore_roundtrip(self, tmp_path):
        repo = SchemaRepository(tmp_path / "live.db")
        schema_id = repo.add_schema(build_clinic_schema())
        count = backup_repository(repo, tmp_path / "backup.db")
        assert count == 1
        restored = restore_repository(tmp_path / "backup.db",
                                      tmp_path / "restored.db")
        assert restored.get_schema(schema_id).name == "clinic_emr"
        restored.close()
        repo.close()

    def test_backup_refuses_overwrite(self, tmp_path):
        repo = SchemaRepository.in_memory()
        target = tmp_path / "backup.db"
        target.write_text("precious")
        with pytest.raises(RepositoryError, match="already exists"):
            backup_repository(repo, target)
        repo.close()

    def test_restore_validations(self, tmp_path):
        with pytest.raises(RepositoryError, match="does not exist"):
            restore_repository(tmp_path / "ghost.db", tmp_path / "out.db")
        source = tmp_path / "src.db"
        repo = SchemaRepository(source)
        repo.close()
        existing = tmp_path / "exists.db"
        existing.write_text("x")
        with pytest.raises(RepositoryError, match="already exists"):
            restore_repository(source, existing)

    def test_backup_while_in_use(self, tmp_path):
        """Online backup works mid-session with the index live."""
        repo = SchemaRepository(tmp_path / "live.db")
        repo.add_schema(build_clinic_schema())
        engine = repo.engine()
        assert engine.search(keywords="patient")
        count = backup_repository(repo, tmp_path / "hot-backup.db")
        assert count == 1
        repo.close()

    def test_vacuum_runs(self, tmp_path):
        repo = SchemaRepository(tmp_path / "live.db")
        schema_id = repo.add_schema(build_clinic_schema())
        repo.delete_schema(schema_id)
        vacuum_repository(repo)  # must not raise
        assert repo.schema_count == 0
        repo.close()
