"""Unit tests for the mmap segment subsystem.

The equivalence suite (test_index_searcher_equivalence.py) proves
segment-backed rankings are byte-identical to in-memory ones; this
file covers the machinery itself: the binary format, the manifest
directory, merge-policy selection, and the SegmentedIndex lifecycle.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import IndexError_
from repro.index.documents import Document
from repro.index.inverted import InvertedIndex
from repro.index.segments import (
    MAGIC,
    MmapSegment,
    NoMergePolicy,
    SegmentDirectory,
    SegmentedIndex,
    TieredMergePolicy,
    make_merge_policy,
    write_segment,
)


def small_index(count: int = 20, seed: int = 11) -> InvertedIndex:
    rng = random.Random(seed)
    words = ["patient", "height", "salary", "orbit", "kelp", "ledger",
             "status", "code", "quasar", "fjord"]
    index = InvertedIndex()
    for i in range(count):
        terms = [rng.choice(words) for _ in range(rng.randint(2, 9))]
        index.add(Document(i, f"doc{i}", summary=f"s{i}", terms=terms))
    return index


class TestSegmentFormat:
    def test_roundtrip_postings_and_documents(self, tmp_path):
        index = small_index()
        path = tmp_path / "a.seg"
        write_segment(path, index)
        segment = MmapSegment(path)
        assert segment.document_count == index.document_count
        assert list(segment.vocabulary()) == sorted(index.vocabulary())
        for term in index.vocabulary():
            want = index.postings(term)
            got = segment.postings(term)
            assert list(got.doc_ids()) == list(want.doc_ids())
            for doc_id in want.doc_ids():
                assert got.frequency(doc_id) == want.frequency(doc_id)
                assert got.get(doc_id).positions == \
                    want.get(doc_id).positions
            assert got.max_frequency == want.max_frequency
            assert got.collection_frequency == want.collection_frequency
        for doc_id in index.doc_ids() if hasattr(index, "doc_ids") else \
                [d.doc_id for d in index.documents()]:
            assert segment.norm(doc_id) == index.norm(doc_id)
            assert segment.document(doc_id) == index.document(doc_id)

    def test_empty_segment(self, tmp_path):
        path = tmp_path / "empty.seg"
        write_segment(path, InvertedIndex())
        segment = MmapSegment(path)
        assert segment.document_count == 0
        assert list(segment.vocabulary()) == []
        assert segment.postings("anything") is None

    def test_magic_prefix(self, tmp_path):
        path = tmp_path / "a.seg"
        write_segment(path, small_index(3))
        assert path.read_bytes()[:8] == MAGIC

    def test_unknown_term_and_missing_doc(self, tmp_path):
        path = tmp_path / "a.seg"
        write_segment(path, small_index(5))
        segment = MmapSegment(path)
        assert segment.postings("zzz-absent") is None
        assert segment.document_frequency("zzz-absent") == 0
        assert not segment.has_document(99999)

    def test_rejects_bad_magic(self, tmp_path):
        path = tmp_path / "bad.seg"
        path.write_bytes(b"NOTASEG!" * 64)
        with pytest.raises(IndexError_, match="bad magic"):
            MmapSegment(path)

    def test_rejects_future_version(self, tmp_path):
        path = tmp_path / "a.seg"
        write_segment(path, small_index(3))
        blob = bytearray(path.read_bytes())
        blob[8] = 0xFE  # format version field
        path.write_bytes(bytes(blob))
        with pytest.raises(IndexError_, match="unsupported format"):
            MmapSegment(path)

    def test_detects_truncation(self, tmp_path):
        path = tmp_path / "a.seg"
        write_segment(path, small_index(3))
        path.write_bytes(path.read_bytes()[:-8])
        with pytest.raises(IndexError_, match="truncated"):
            MmapSegment(path)

    def test_detects_header_corruption(self, tmp_path):
        """The CRC guards the header (counts and section offsets) —
        the part whose corruption would misdirect every later read."""
        path = tmp_path / "a.seg"
        write_segment(path, small_index(3))
        blob = bytearray(path.read_bytes())
        blob[24] ^= 0xFF  # inside the doc_count field
        path.write_bytes(bytes(blob))
        with pytest.raises(IndexError_, match="checksum"):
            MmapSegment(path)


class TestSegmentDirectory:
    def test_create_and_reopen(self, tmp_path):
        directory = SegmentDirectory.open(tmp_path / "d", create=True)
        assert directory.read_manifest()["segments"] == []
        again = SegmentDirectory.open(tmp_path / "d")
        assert again.read_manifest()["next_id"] == \
            directory.read_manifest()["next_id"]

    def test_missing_manifest_rejected(self, tmp_path):
        (tmp_path / "d").mkdir()
        with pytest.raises(IndexError_, match="MANIFEST"):
            SegmentDirectory.open(tmp_path / "d")

    def test_orphan_sweep(self, tmp_path):
        directory = SegmentDirectory.open(tmp_path / "d", create=True)
        orphan = directory.segment_path(7)
        orphan.write_bytes(b"junk")
        stale_tmp = tmp_path / "d" / "seg_00000009.seg.tmp"
        stale_tmp.write_bytes(b"junk")
        directory.write_manifest(next_id=1, last_change_id=0, segments=[])
        assert not orphan.exists()
        assert not stale_tmp.exists()

    def test_manifest_keeps_referenced_segments(self, tmp_path):
        index = small_index(4)
        directory = SegmentDirectory.open(tmp_path / "d", create=True)
        path = directory.segment_path(0)
        write_segment(path, index)
        directory.write_manifest(next_id=1, last_change_id=5,
                                 segments=[{"file": path.name,
                                            "deleted": []}])
        assert path.exists()
        manifest = directory.read_manifest()
        assert manifest["segments"][0]["file"] == path.name
        assert manifest["last_change_id"] == 5


class TestMergePolicies:
    def test_factory(self):
        assert isinstance(make_merge_policy("tiered"), TieredMergePolicy)
        assert isinstance(make_merge_policy("none"), NoMergePolicy)
        with pytest.raises(IndexError_, match="unknown merge policy"):
            make_merge_policy("bogus")

    def test_no_merge_policy_never_selects(self):
        assert NoMergePolicy().select([10, 10, 10], [0, 0, 0]) is None

    def test_tiered_selects_overfull_tier(self):
        policy = TieredMergePolicy(max_per_tier=2, tier_factor=10,
                                   floor_docs=100)
        # Three floor-tier segments: one over the per-tier budget.
        picked = policy.select([50, 60, 70], [0, 0, 0])
        assert len(picked) == 3
        # Two is within budget: nothing to do.
        assert policy.select([50, 60], [0, 0]) is None

    def test_tiered_ignores_distinct_tiers(self):
        policy = TieredMergePolicy(max_per_tier=2, tier_factor=10,
                                   floor_docs=100)
        assert policy.select([50, 5_000, 500_000], [0, 0, 0]) is None

    def test_dead_fraction_triggers_rewrite(self):
        policy = TieredMergePolicy(max_per_tier=8, max_dead_fraction=0.3)
        picked = policy.select([100, 100], [60, 0])
        assert picked == [0]


class TestSegmentedIndexLifecycle:
    def test_flush_and_reopen_resumes_cursor(self, tmp_path):
        index = SegmentedIndex.open(tmp_path / "d", create=True)
        for i in range(10):
            index.add(Document(i, f"d{i}", terms=["patient", "code"]))
        index.flush(last_change_id=42)
        reopened = SegmentedIndex.open(tmp_path / "d")
        assert reopened.document_count == 10
        assert reopened.last_change_id == 42
        assert reopened.segment_count == 1

    def test_unflushed_delta_is_not_persisted(self, tmp_path):
        index = SegmentedIndex.open(tmp_path / "d", create=True)
        index.add(Document(1, "a", terms=["patient"]))
        index.flush()
        index.add(Document(2, "b", terms=["salary"]))
        assert SegmentedIndex.open(tmp_path / "d").document_count == 1

    def test_mutations_bump_generation_swaps_do_not(self, tmp_path):
        index = SegmentedIndex.open(tmp_path / "d", create=True)
        generation = index.generation
        index.add(Document(1, "a", terms=["patient"]))
        assert index.generation == generation + 1
        generation = index.generation
        index.flush()
        assert index.generation == generation
        index.remove(1)
        assert index.generation == generation + 1

    def test_replace_shadows_segment_copy(self, tmp_path):
        index = SegmentedIndex.open(tmp_path / "d", create=True)
        index.add(Document(1, "old", terms=["patient", "height"]))
        index.flush()
        index.replace(Document(1, "new", terms=["salary"]))
        assert index.document(1).title == "new"
        assert index.document_frequency("patient") == 0
        assert index.document_frequency("salary") == 1
        assert index.document_count == 1

    def test_merge_purges_tombstones(self, tmp_path):
        index = SegmentedIndex.open(tmp_path / "d", create=True)
        for batch in range(4):
            for i in range(batch * 10, batch * 10 + 10):
                index.add(Document(i, f"d{i}", terms=["patient", "code"]))
            index.flush()
        for i in range(0, 40, 2):
            index.remove(i)
        index.flush()
        assert index.segment_count == 4
        assert index.deleted_count == 20
        policy = TieredMergePolicy(max_per_tier=1, floor_docs=8)
        while index.maybe_merge(policy):  # one merge per call
            pass
        assert index.segment_count == 1
        assert index.deleted_count == 0
        assert index.document_count == 20
        reopened = SegmentedIndex.open(tmp_path / "d")
        assert reopened.document_count == 20
        assert not reopened.has_document(0)
        assert reopened.has_document(1)

    def test_no_merge_policy_leaves_segments(self, tmp_path):
        index = SegmentedIndex.open(tmp_path / "d", create=True)
        for batch in range(3):
            index.add(Document(batch, f"d{batch}", terms=["patient"]))
            index.flush()
        assert index.maybe_merge(NoMergePolicy()) == 0
        assert index.segment_count == 3

    def test_clear_drops_everything(self, tmp_path):
        index = SegmentedIndex.open(tmp_path / "d", create=True)
        for i in range(5):
            index.add(Document(i, f"d{i}", terms=["patient"]))
        index.flush()
        index.clear()
        assert index.document_count == 0
        assert len(index) == 0
        index.flush()
        assert SegmentedIndex.open(tmp_path / "d").document_count == 0

    def test_contains_and_len_protocol(self, tmp_path):
        index = SegmentedIndex.open(tmp_path / "d", create=True)
        index.add(Document(1, "a", terms=["patient", "height"]))
        index.flush()
        index.add(Document(2, "b", terms=["salary"]))
        assert 1 in index  # membership is by doc_id, like InvertedIndex
        assert 2 in index
        assert 99 not in index
        assert "patient" not in index  # strings never match doc ids
        assert len(index) == 2
        assert index.term_count == 3

    def test_documents_iterates_live_docs_once(self, tmp_path):
        index = SegmentedIndex.open(tmp_path / "d", create=True)
        index.add(Document(1, "a", terms=["patient"]))
        index.flush()
        index.replace(Document(1, "a2", terms=["patient"]))
        index.add(Document(2, "b", terms=["salary"]))
        titles = sorted(d.title for d in index.documents())
        assert titles == ["a2", "b"]

    def test_snapshot_cached_per_generation(self, tmp_path):
        index = SegmentedIndex.open(tmp_path / "d", create=True)
        index.add(Document(1, "a", terms=["patient"]))
        snap = index.snapshot()
        assert index.snapshot() is snap
        index.flush()  # swap: snapshot identity may change, content not
        assert index.snapshot().norms == snap.norms
        index.add(Document(2, "b", terms=["salary"]))
        assert index.snapshot() is not snap
