"""Tests for the schemr command-line interface."""

import json

import pytest

from repro.cli import main

CLINIC_DDL = """
CREATE TABLE patient (
  id INTEGER PRIMARY KEY,
  height DECIMAL(5,2),
  gender CHAR(1)
);
CREATE TABLE visit (
  id INTEGER PRIMARY KEY,
  patient_id INTEGER REFERENCES patient(id),
  diagnosis TEXT
);
"""


@pytest.fixture
def db(tmp_path):
    path = str(tmp_path / "repo.db")
    assert main(["init", path]) == 0
    return path


@pytest.fixture
def populated_db(db, tmp_path):
    ddl_file = tmp_path / "clinic.sql"
    ddl_file.write_text(CLINIC_DDL)
    assert main(["import", db, str(ddl_file), "--name", "clinic"]) == 0
    return db


class TestInit:
    def test_creates_file(self, tmp_path, capsys):
        path = str(tmp_path / "new.db")
        assert main(["init", path]) == 0
        assert "initialized" in capsys.readouterr().out

    def test_refuses_overwrite(self, db, capsys):
        assert main(["init", db]) == 1
        assert "already exists" in capsys.readouterr().err


class TestImport:
    def test_import_reports_counts(self, db, tmp_path, capsys):
        ddl_file = tmp_path / "clinic.sql"
        ddl_file.write_text(CLINIC_DDL)
        assert main(["import", db, str(ddl_file), "--name", "clinic"]) == 0
        out = capsys.readouterr().out
        assert "imported 'clinic'" in out
        assert "2 entities" in out

    def test_import_missing_repo(self, tmp_path, capsys):
        ddl_file = tmp_path / "x.sql"
        ddl_file.write_text(CLINIC_DDL)
        assert main(["import", str(tmp_path / "ghost.db"),
                     str(ddl_file)]) == 1
        assert "does not exist" in capsys.readouterr().err

    def test_import_xsd_autodetected(self, db, tmp_path, capsys):
        xsd = tmp_path / "x.xsd"
        xsd.write_text(
            '<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">'
            '<xs:element name="site" type="xs:string"/></xs:schema>')
        assert main(["import", db, str(xsd)]) == 0
        assert "imported" in capsys.readouterr().out


class TestGenerateAndIndex:
    def test_generate(self, db, capsys):
        assert main(["generate", db, "--count", "50", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "filtered 50 raw schemas" in out
        assert "stored" in out

    def test_index_reports_stats(self, populated_db, capsys):
        assert main(["index", populated_db]) == 0
        out = capsys.readouterr().out
        assert "documents" in out

    def test_index_save_segment(self, populated_db, tmp_path, capsys):
        segment = tmp_path / "seg.jsonl"
        assert main(["index", populated_db, "--save", str(segment)]) == 0
        assert segment.exists()


class TestSearch:
    def test_search_prints_table(self, populated_db, capsys):
        assert main(["search", populated_db, "--keywords",
                     "patient height gender"]) == 0
        out = capsys.readouterr().out
        assert "clinic" in out
        assert "Score" in out

    def test_search_with_trace(self, populated_db, capsys):
        assert main(["search", populated_db, "--keywords", "patient",
                     "--trace"]) == 0
        assert "candidate_extraction" in capsys.readouterr().out

    def test_search_with_fragment_file(self, populated_db, tmp_path,
                                       capsys):
        fragment = tmp_path / "frag.sql"
        fragment.write_text("CREATE TABLE patient (height DECIMAL);")
        assert main(["search", populated_db, "--fragment",
                     str(fragment)]) == 0
        assert "clinic" in capsys.readouterr().out

    def test_empty_search_fails_cleanly(self, populated_db, capsys):
        assert main(["search", populated_db]) == 1
        assert "error" in capsys.readouterr().err


class TestShowAndExport:
    def test_show_ascii(self, populated_db, capsys):
        assert main(["show", populated_db, "1"]) == 0
        out = capsys.readouterr().out
        assert "patient" in out
        assert "[entity]" in out

    def test_show_svg_to_file(self, populated_db, tmp_path, capsys):
        out_file = tmp_path / "schema.svg"
        assert main(["show", populated_db, "1", "--layout", "tree",
                     "--out", str(out_file)]) == 0
        assert out_file.read_text().startswith("<svg")

    def test_show_radial_stdout(self, populated_db, capsys):
        assert main(["show", populated_db, "1", "--layout", "radial"]) == 0
        assert "<svg" in capsys.readouterr().out

    def test_show_focus_drill_in(self, populated_db, capsys):
        assert main(["show", populated_db, "1", "--focus", "patient"]) == 0
        out = capsys.readouterr().out
        assert "height" in out
        assert "visit" not in out

    def test_show_missing_schema(self, populated_db, capsys):
        assert main(["show", populated_db, "99"]) == 1

    def test_export_json(self, populated_db, capsys):
        assert main(["export", populated_db, "1"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["name"] == "clinic"

    def test_export_graphml_to_file(self, populated_db, tmp_path):
        out_file = tmp_path / "schema.graphml"
        assert main(["export", populated_db, "1", "--format", "graphml",
                     "--out", str(out_file)]) == 0
        assert "graphml" in out_file.read_text()


class TestStats:
    def test_repository_mode_text_summary(self, populated_db, capsys):
        assert main(["stats", populated_db,
                     "--warmup", "patient height, diagnosis"]) == 0
        out = capsys.readouterr().out
        assert f"repository: {populated_db} (1 schemas)" in out
        assert "searches:        2" in out
        assert "query cache:" in out
        assert "p50 ms" in out

    def test_repository_mode_prometheus(self, populated_db, capsys):
        assert main(["stats", populated_db, "--warmup", "patient",
                     "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE schemr_searches_total counter" in out
        assert "schemr_searches_total 1" in out

    def test_no_warmup_still_reports_index(self, populated_db, capsys):
        assert main(["stats", populated_db]) == 0
        out = capsys.readouterr().out
        assert "searches:        0" in out
        assert "index documents:  1" in out

    def test_stopword_warmup_is_not_fatal(self, populated_db, capsys):
        assert main(["stats", populated_db, "--warmup", "the, ,of"]) == 0
        assert "searches:" in capsys.readouterr().out

    def test_url_mode_scrapes_running_server(self, populated_db, capsys):
        from repro.repository.store import SchemaRepository
        from repro.service.server import SchemrServer
        with SchemaRepository(populated_db) as repo:
            server = SchemrServer(repo)
            with server.running() as base_url:
                assert main(["stats", base_url]) == 0
                stats_out = capsys.readouterr().out
                assert main(["stats", base_url,
                             "--format", "prometheus"]) == 0
                metrics_out = capsys.readouterr().out
        assert "<stats>" in stats_out
        assert "# TYPE schemr_index_documents gauge" in metrics_out

    def test_missing_repository_fails(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "absent.db")]) == 1
        assert "" != capsys.readouterr().err
