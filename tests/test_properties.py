"""Property-based tests (hypothesis) on core data structures and
invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.documents import Document
from repro.index.inverted import InvertedIndex
from repro.matching.base import SimilarityMatrix
from repro.matching.name import name_similarity
from repro.matching.ngram import ngrams, weighted_ngram_similarity
from repro.model.elements import Attribute, Entity, ForeignKey
from repro.model.schema import Schema
from repro.scoring.neighborhood import entity_components
from repro.scoring.tightness import PenaltyPolicy, TightnessScorer
from repro.text.splitter import split_identifier
from repro.text.stemmer import porter_stem

# -- strategies --------------------------------------------------------------

words = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=12)
identifiers = st.text(
    alphabet=string.ascii_letters + string.digits + "_- .",
    min_size=1, max_size=30)


@st.composite
def schemas(draw) -> Schema:
    """Random valid schemas with optional FK edges."""
    entity_count = draw(st.integers(min_value=1, max_value=5))
    schema = Schema(name=draw(words))
    for i in range(entity_count):
        attr_count = draw(st.integers(min_value=1, max_value=5))
        attributes = [Attribute(f"a{j}_{draw(words)}")
                      for j in range(attr_count)]
        schema.add_entity(Entity(f"e{i}", attributes))
    entities = list(schema.entities.values())
    fk_count = draw(st.integers(min_value=0, max_value=entity_count))
    for _ in range(fk_count):
        source = draw(st.sampled_from(entities))
        target = draw(st.sampled_from(entities))
        if source.name == target.name:
            continue
        schema.add_foreign_key(ForeignKey(
            source.name, source.attributes[0].name,
            target.name, target.attributes[0].name))
    return schema


# -- text --------------------------------------------------------------------

class TestTextProperties:
    @given(words)
    def test_stemmer_never_grows_words(self, word):
        assert len(porter_stem(word)) <= len(word)

    @given(words)
    def test_stemmer_total(self, word):
        # Never raises, always returns a string.
        assert isinstance(porter_stem(word), str)

    @given(identifiers)
    def test_splitter_preserves_alnum_content(self, identifier):
        joined = "".join(split_identifier(identifier))
        expected = "".join(c for c in identifier if c.isalnum())
        assert joined == expected

    @given(identifiers)
    def test_splitter_tokens_nonempty(self, identifier):
        assert all(token for token in split_identifier(identifier))


# -- n-grams and name similarity ----------------------------------------------

class TestSimilarityProperties:
    @given(words, words)
    def test_ngram_similarity_symmetric(self, a, b):
        assert weighted_ngram_similarity(a, b) == \
            weighted_ngram_similarity(b, a)

    @given(words, words)
    def test_ngram_similarity_bounded(self, a, b):
        assert 0.0 <= weighted_ngram_similarity(a, b) <= 1.0

    @given(words)
    def test_ngram_similarity_identity(self, word):
        assert weighted_ngram_similarity(word, word) == 1.0

    @given(words, st.integers(min_value=1, max_value=5))
    def test_ngram_count_bound(self, word, n):
        grams = ngrams(word, min_n=n, max_n=n)
        assert len(grams) <= max(len(word) - n + 1, 0)

    @given(st.lists(words, min_size=1, max_size=4),
           st.lists(words, min_size=1, max_size=4))
    def test_name_similarity_bounded_and_symmetric(self, a, b):
        a_t, b_t = tuple(a), tuple(b)
        score = name_similarity(a_t, b_t)
        assert 0.0 <= score <= 1.0
        assert score == name_similarity(b_t, a_t)


# -- schema model --------------------------------------------------------------

class TestSchemaProperties:
    @settings(max_examples=50)
    @given(schemas())
    def test_serialization_roundtrip(self, schema):
        assert Schema.from_dict(schema.to_dict()).to_dict() == \
            schema.to_dict()

    @settings(max_examples=50)
    @given(schemas())
    def test_element_count_consistency(self, schema):
        assert schema.element_count == \
            sum(1 for _ in schema.elements())
        assert schema.element_count == \
            schema.entity_count + schema.attribute_count

    @settings(max_examples=50)
    @given(schemas())
    def test_components_partition_entities(self, schema):
        components = entity_components(schema)
        seen: set[str] = set()
        for component in components:
            assert not (component & seen)
            seen |= component
        assert seen == set(schema.entities)


# -- similarity matrix ----------------------------------------------------------

class TestMatrixProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1.0),
                    min_size=2, max_size=6))
    def test_combine_stays_bounded(self, values):
        matrices = []
        for value in values:
            matrix = SimilarityMatrix(["q"], ["e"])
            matrix.set("q", "e", value)
            matrices.append(matrix)
        combined = SimilarityMatrix.combine(matrices)
        assert min(values) - 1e-9 <= combined.get("q", "e") <= \
            max(values) + 1e-9


# -- inverted index ---------------------------------------------------------------

class TestIndexProperties:
    @settings(max_examples=50)
    @given(st.lists(st.lists(words, min_size=1, max_size=8),
                    min_size=1, max_size=8))
    def test_add_remove_returns_to_empty(self, term_lists):
        index = InvertedIndex()
        for i, terms in enumerate(term_lists):
            index.add(Document(i, f"d{i}", terms=terms))
        for i in range(len(term_lists)):
            index.remove(i)
        assert index.document_count == 0
        assert index.term_count == 0

    @settings(max_examples=50)
    @given(st.lists(st.lists(words, min_size=1, max_size=8),
                    min_size=1, max_size=8))
    def test_df_never_exceeds_document_count(self, term_lists):
        index = InvertedIndex()
        for i, terms in enumerate(term_lists):
            index.add(Document(i, f"d{i}", terms=terms))
        for term in index.vocabulary():
            assert 1 <= index.document_frequency(term) <= \
                index.document_count


# -- tightness-of-fit ------------------------------------------------------------

class TestTightnessProperties:
    @settings(max_examples=50)
    @given(schemas(), st.data())
    def test_score_bounded_by_matched_count(self, schema, data):
        paths = [ref.path for ref in schema.elements()]
        scores = {
            path: data.draw(st.floats(min_value=0.0, max_value=1.0))
            for path in paths
        }
        result = TightnessScorer().score(schema, scores)
        # Sum aggregation: bounded by the number of matched elements.
        assert 0.0 <= result.score <= len(result.matched_elements) + 1e-9

    @settings(max_examples=50)
    @given(schemas(), st.data())
    def test_zero_penalties_recover_raw_aggregate(self, schema, data):
        paths = [ref.path for ref in schema.elements()]
        scores = {
            path: data.draw(st.floats(min_value=0.3, max_value=1.0))
            for path in paths
        }
        policy = PenaltyPolicy(neighborhood_penalty=0.0,
                               unrelated_penalty=0.0)
        result = TightnessScorer(policy).score(schema, scores)
        expected = sum(result.matched_elements.values())
        assert result.score == __import__("pytest").approx(expected)

    @settings(max_examples=50)
    @given(schemas(), st.data())
    def test_larger_penalties_never_increase_score(self, schema, data):
        paths = [ref.path for ref in schema.elements()]
        scores = {
            path: data.draw(st.floats(min_value=0.3, max_value=1.0))
            for path in paths
        }
        gentle = TightnessScorer(PenaltyPolicy(
            neighborhood_penalty=0.05, unrelated_penalty=0.1))
        harsh = TightnessScorer(PenaltyPolicy(
            neighborhood_penalty=0.2, unrelated_penalty=0.5))
        assert harsh.score(schema, scores).score <= \
            gentle.score(schema, scores).score + 1e-9

    @settings(max_examples=50)
    @given(schemas(), st.data())
    def test_best_anchor_is_argmax(self, schema, data):
        paths = [ref.path for ref in schema.elements()]
        scores = {
            path: data.draw(st.floats(min_value=0.3, max_value=1.0))
            for path in paths
        }
        result = TightnessScorer().score(schema, scores)
        if result.anchors:
            assert result.score == max(a.score for a in result.anchors)
