"""The runtime lock-order sanitizer: inversion detection on a seeded
two-lock fixture, condition-wait bookkeeping, class instrumentation,
telemetry, and the runtime site-catalog aggregator."""

from __future__ import annotations

import threading

import pytest

from repro.analysis.sanitizer import (
    LockOrderInversion,
    LockOrderSanitizer,
    SanitizedCondition,
    SanitizedLock,
    _seed_inversion,
    instrument_project,
)
from repro.analysis.sites import load_catalog, validate
from repro.telemetry.metrics import MetricsRegistry


def _two_locks(sanitizer: LockOrderSanitizer):
    first = sanitizer.wrap(threading.Lock(), "Fixture.first")
    second = sanitizer.wrap(threading.Lock(), "Fixture.second")
    return first, second


def test_consistent_order_is_quiet():
    sanitizer = LockOrderSanitizer()
    first, second = _two_locks(sanitizer)
    for _ in range(3):
        with first:
            with second:
                pass
    assert sanitizer.inversions == []
    assert set(sanitizer.edges()) == {
        ("Fixture.first", "Fixture.second")}


def test_seeded_inversion_raises_with_both_witnesses():
    sanitizer = LockOrderSanitizer()
    first, second = _two_locks(sanitizer)
    with first:
        with second:
            pass
    with pytest.raises(LockOrderInversion) as excinfo:
        with second:
            with first:
                pass
    message = str(excinfo.value)
    assert "Fixture.second -> Fixture.first" in message
    assert "Fixture.first -> Fixture.second" in message
    assert "thread" in message
    assert len(sanitizer.inversions) == 1


def test_inversion_across_threads_is_detected():
    sanitizer = LockOrderSanitizer(raise_on_inversion=False)
    first, second = _two_locks(sanitizer)
    with first:
        with second:
            pass

    def reversed_order():
        with second:
            with first:
                pass

    worker = threading.Thread(target=reversed_order)
    worker.start()
    worker.join(5.0)
    assert len(sanitizer.inversions) == 1
    assert "conflicts with" in sanitizer.report()


def test_nonreentrant_self_reacquire_is_flagged_before_blocking():
    sanitizer = LockOrderSanitizer()
    lock = sanitizer.wrap(threading.Lock(), "Fixture.lock")
    with pytest.raises(LockOrderInversion, match="re-acquired"):
        with lock:
            with lock:
                pass
    # The wrapper flagged it *before* calling the real acquire, so the
    # test did not deadlock; release from the outer with succeeded.
    assert not lock.inner.locked()


def test_rlock_reentry_is_legal():
    sanitizer = LockOrderSanitizer()
    rlock = sanitizer.wrap(threading.RLock(), "Fixture.rlock")
    with rlock:
        with rlock:
            pass
    assert sanitizer.inversions == []
    assert sanitizer.edges() == {}


def test_condition_wait_releases_held_tracking():
    sanitizer = LockOrderSanitizer()
    cond = sanitizer.wrap(threading.Condition(), "Fixture.cond")
    lock = sanitizer.wrap(threading.Lock(), "Fixture.lock")
    assert isinstance(cond, SanitizedCondition)
    with lock:
        with cond:
            # wait() drops and re-takes the condition; the held stack
            # must stay balanced and re-record the lock->cond edge
            # without a spurious inversion.
            cond.wait(timeout=0.01)
    assert sanitizer.inversions == []
    assert set(sanitizer.edges()) == {("Fixture.lock", "Fixture.cond")}
    # The stack unwound completely: a fresh consistent pass is quiet.
    with lock:
        with cond:
            pass
    assert sanitizer.inversions == []


def test_explicit_acquire_release_tracked():
    sanitizer = LockOrderSanitizer()
    first, second = _two_locks(sanitizer)
    assert first.acquire(timeout=1.0)
    assert second.acquire(timeout=1.0)
    second.release()
    first.release()
    assert set(sanitizer.edges()) == {
        ("Fixture.first", "Fixture.second")}


def test_wrap_object_and_instrument_class():
    sanitizer = LockOrderSanitizer()

    class Widget:
        def __init__(self):
            self._lock = threading.Lock()
            self._cond = threading.Condition()
            self._plain = 7

    sanitizer.instrument_class(Widget)
    try:
        widget = Widget()
        assert isinstance(widget._lock, SanitizedLock)
        assert isinstance(widget._cond, SanitizedCondition)
        assert widget._lock.name == "Widget._lock"
        assert widget._plain == 7
        assert sanitizer.locks_wrapped == 2
    finally:
        sanitizer.uninstrument()
    pristine = Widget()
    assert not isinstance(pristine._lock, SanitizedLock)


def test_instrument_project_wraps_real_classes():
    sanitizer = LockOrderSanitizer()
    try:
        classes = instrument_project(sanitizer)
        assert classes, "no project classes instrumented"
        from repro.resilience.breaker import CircuitBreaker
        breaker = CircuitBreaker("t")
        assert isinstance(breaker._lock, SanitizedLock)
        assert breaker.allow() in (True, False)
    finally:
        sanitizer.uninstrument()


def test_sanitizer_metrics_exported():
    registry = MetricsRegistry()
    sanitizer = LockOrderSanitizer(metrics=registry,
                                   raise_on_inversion=False)
    first, second = _two_locks(sanitizer)
    with first:
        with second:
            pass
    with second:
        with first:
            pass
    snap = registry.snapshot()
    assert snap.value("schemr_sanitizer_locks_wrapped") == 2
    assert snap.value("schemr_sanitizer_order_edges") == 2
    assert snap.value("schemr_sanitizer_inversions_total") == 1


def test_seed_inversion_entry_point_exits_nonzero():
    assert _seed_inversion() == 1


# -- runtime site-catalog aggregator -----------------------------------

def test_live_catalogs_validate_clean():
    assert validate() == []


def test_catalog_contents_round_trip():
    catalog = load_catalog()
    assert catalog.crash_sites <= set(catalog.sites)
    assert catalog.is_known_site("engine.phase1")
    assert not catalog.is_known_site("no.such.site")
    assert "phase1" in catalog.tags
    assert catalog.request_tags <= set(catalog.tags)
    assert catalog.response_tags <= set(catalog.tags)


def test_validate_reports_drift():
    from repro.analysis.sites import SiteCatalog
    drifted = SiteCatalog(
        sites={"a.site": "help"},
        crash_sites=frozenset(("a.site", "ghost.site")),
        tags={"ping": "probe"},
        request_tags=frozenset(("ping", "phantom")),
        response_tags=frozenset(("ping",)),
    )
    problems = validate(drifted)
    assert any("ghost.site" in p for p in problems)
    assert any("phantom" in p for p in problems)
