"""Unit/integration tests for the three-phase SchemrEngine."""

import pytest

from repro.core.config import SchemrConfig
from repro.core.engine import DictSchemaSource, SchemrEngine
from repro.core.pipeline import ALL_PHASES
from repro.errors import QueryError
from repro.index.documents import document_from_schema
from repro.index.inverted import InvertedIndex
from repro.matching.ensemble import MatcherEnsemble
from repro.model.query import QueryGraph
from repro.scoring.tightness import PenaltyPolicy

from tests.conftest import (
    build_clinic_schema,
    build_conservation_schema,
    build_hr_schema,
)


@pytest.fixture
def engine() -> SchemrEngine:
    schemas = {}
    index = InvertedIndex()
    for i, builder in enumerate([build_clinic_schema, build_hr_schema,
                                 build_conservation_schema], start=1):
        schema = builder()
        schema.schema_id = i
        schemas[i] = schema
        index.add(document_from_schema(schema))
    return SchemrEngine(index=index, source=DictSchemaSource(schemas))


class TestSearch:
    def test_paper_query_ranks_clinic_first(self, engine, paper_keywords):
        results = engine.search(keywords=paper_keywords)
        assert results[0].name == "clinic_emr"
        assert results[0].schema_id == 1

    def test_result_row_fields(self, engine, paper_keywords):
        result = engine.search(keywords=paper_keywords)[0]
        assert result.entity_count == 3
        assert result.attribute_count == 12
        assert result.match_count > 0
        assert result.description == "health clinic records"
        assert result.coarse_score > 0
        assert result.best_anchor is not None

    def test_scores_descend(self, engine):
        results = engine.search(keywords="name gender salary species")
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)

    def test_top_n_respected(self, engine):
        assert len(engine.search(keywords="name", top_n=2)) <= 2

    def test_bad_top_n_rejected(self, engine):
        with pytest.raises(QueryError):
            engine.search(keywords="name", top_n=0)

    def test_empty_query_rejected(self, engine):
        with pytest.raises(QueryError):
            engine.search()

    def test_fragment_query(self, engine):
        ddl = "CREATE TABLE patient (height DECIMAL, gender CHAR(1));"
        results = engine.search(fragment=ddl)
        assert results[0].name == "clinic_emr"

    def test_keyword_plus_fragment(self, engine):
        ddl = "CREATE TABLE patient (height DECIMAL);"
        results = engine.search(keywords="diagnosis", fragment=ddl)
        assert results[0].name == "clinic_emr"

    def test_search_graph_prebuilt(self, engine, paper_keywords):
        query = QueryGraph.build(keywords=paper_keywords)
        results = engine.search_graph(query)
        assert results[0].name == "clinic_emr"

    def test_search_graph_empty_rejected(self, engine):
        with pytest.raises(QueryError):
            engine.search_graph(QueryGraph())

    def test_element_matches_exposed(self, engine, paper_keywords):
        result = engine.search(keywords=paper_keywords)[0]
        pairs = {(m.query_label, m.element_path)
                 for m in result.element_matches}
        assert ("kw:height", "patient.height") in pairs

    def test_top_matches_sorted(self, engine, paper_keywords):
        result = engine.search(keywords=paper_keywords)[0]
        top = result.top_matches(3)
        assert len(top) <= 3
        scores = [m.score for m in top]
        assert scores == sorted(scores, reverse=True)


class TestTrace:
    def test_all_phases_recorded(self, engine, paper_keywords):
        engine.search(keywords=paper_keywords)
        trace = engine.last_trace
        assert trace is not None
        assert [p.name for p in trace.phases] == list(ALL_PHASES)

    def test_phase_counts_flow(self, engine, paper_keywords):
        engine.search(keywords=paper_keywords)
        trace = engine.last_trace
        candidates = trace.phase("candidate_extraction")
        matching = trace.phase("schema_matching")
        assert candidates.items_in == 4  # four keywords
        assert matching.items_in == candidates.items_out

    def test_search_graph_has_no_parse_phase(self, engine, paper_keywords):
        engine.search_graph(QueryGraph.build(keywords=paper_keywords))
        names = [p.name for p in engine.last_trace.phases]
        assert "query_parse" not in names

    def test_trace_summary_renders(self, engine, paper_keywords):
        engine.search(keywords=paper_keywords)
        summary = engine.last_trace.summary()
        assert "candidate_extraction" in summary
        assert "total" in summary


class TestConfiguration:
    def test_candidate_pool_limits_matching(self, paper_keywords):
        schemas = {}
        index = InvertedIndex()
        for i in range(1, 6):
            schema = build_clinic_schema(name=f"clinic_{i}")
            schema.schema_id = i
            schemas[i] = schema
            index.add(document_from_schema(schema))
        engine = SchemrEngine(index=index, source=DictSchemaSource(schemas),
                              config=SchemrConfig(candidate_pool=2))
        engine.search(keywords=paper_keywords)
        assert engine.last_trace.phase("schema_matching").items_in == 2

    def test_invalid_candidate_pool(self):
        with pytest.raises(QueryError):
            SchemrConfig(candidate_pool=0)

    def test_tightness_ablation_drops_anchor(self, paper_keywords):
        schema = build_clinic_schema()
        schema.schema_id = 1
        index = InvertedIndex()
        index.add(document_from_schema(schema))
        engine = SchemrEngine(
            index=index, source=DictSchemaSource({1: schema}),
            config=SchemrConfig(use_tightness=False))
        result = engine.search(keywords=paper_keywords)[0]
        assert result.best_anchor is None
        assert result.score > 0

    def test_custom_ensemble_used(self, paper_keywords):
        schema = build_clinic_schema()
        schema.schema_id = 1
        index = InvertedIndex()
        index.add(document_from_schema(schema))
        from repro.matching.name import NameMatcher
        ensemble = MatcherEnsemble(matchers=[NameMatcher()])
        engine = SchemrEngine(index=index,
                              source=DictSchemaSource({1: schema}),
                              ensemble=ensemble)
        assert engine.ensemble.matcher_names == ("name",)
        assert engine.search(keywords=paper_keywords)

    def test_custom_penalties_flow_through(self, paper_keywords):
        schema = build_clinic_schema()
        schema.schema_id = 1
        index = InvertedIndex()
        index.add(document_from_schema(schema))
        config = SchemrConfig(penalties=PenaltyPolicy(
            neighborhood_penalty=0.0, unrelated_penalty=0.0))
        engine = SchemrEngine(index=index,
                              source=DictSchemaSource({1: schema}),
                              config=config)
        no_penalty_score = engine.search(keywords=paper_keywords)[0].score
        default_engine = SchemrEngine(index=index,
                                      source=DictSchemaSource({1: schema}))
        default_score = default_engine.search(
            keywords=paper_keywords)[0].score
        assert no_penalty_score >= default_score


class TestPaging:
    """Offset/top_n edge cases, sequential and parallel.

    Parallel dispatch must not disturb the ranking, so every case runs
    with ``match_workers`` of 1 and 4 and expects identical pages.
    """

    POOL = 4  # candidate_pool smaller than the corpus below

    @staticmethod
    def _engine(match_workers: int) -> SchemrEngine:
        schemas = {}
        index = InvertedIndex()
        builders = [build_clinic_schema, build_hr_schema,
                    build_conservation_schema]
        for i in range(1, 7):
            schema = builders[(i - 1) % len(builders)](name=f"schema_{i}")
            schema.schema_id = i
            schemas[i] = schema
            index.add(document_from_schema(schema))
        config = SchemrConfig(candidate_pool=TestPaging.POOL,
                              match_workers=match_workers)
        return SchemrEngine(index=index, source=DictSchemaSource(schemas),
                            config=config)

    QUERY = "name gender salary species height"

    @pytest.mark.parametrize("workers", [1, 4])
    def test_offset_at_pool_returns_empty(self, workers):
        with self._engine(workers) as engine:
            assert engine.search(keywords=self.QUERY,
                                 offset=self.POOL) == []

    @pytest.mark.parametrize("workers", [1, 4])
    def test_offset_beyond_pool_returns_empty(self, workers):
        with self._engine(workers) as engine:
            assert engine.search(keywords=self.QUERY,
                                 offset=self.POOL + 10) == []

    @pytest.mark.parametrize("workers", [1, 4])
    def test_page_straddling_pool_boundary_returns_tail(self, workers):
        with self._engine(workers) as engine:
            full = engine.search(keywords=self.QUERY, top_n=self.POOL)
            assert len(full) == self.POOL
            # offset + top_n overshoots the pool: just the tail comes back.
            tail = engine.search(keywords=self.QUERY,
                                 top_n=3, offset=self.POOL - 1)
            assert [r.schema_id for r in tail] == [full[-1].schema_id]

    @pytest.mark.parametrize("workers", [1, 4])
    def test_pages_tile_the_ranking(self, workers):
        with self._engine(workers) as engine:
            full = engine.search(keywords=self.QUERY, top_n=self.POOL)
            paged = []
            for offset in range(0, self.POOL, 2):
                paged.extend(engine.search(keywords=self.QUERY,
                                           top_n=2, offset=offset))
            assert [r.schema_id for r in paged] == \
                [r.schema_id for r in full]

    @pytest.mark.parametrize("workers", [1, 4])
    def test_negative_offset_rejected(self, workers):
        with self._engine(workers) as engine:
            with pytest.raises(QueryError):
                engine.search(keywords=self.QUERY, offset=-1)

    def test_parallel_ranking_matches_sequential(self):
        with self._engine(1) as seq, self._engine(4) as par:
            seq_results = seq.search(keywords=self.QUERY, top_n=self.POOL)
            par_results = par.search(keywords=self.QUERY, top_n=self.POOL)
            assert [(r.schema_id, r.score) for r in seq_results] == \
                [(r.schema_id, r.score) for r in par_results]

    def test_invalid_match_workers_rejected(self):
        with pytest.raises(QueryError):
            SchemrConfig(match_workers=0)

    def test_close_is_idempotent(self):
        engine = self._engine(4)
        engine.search(keywords=self.QUERY)
        engine.close()
        engine.close()


class TestDictSchemaSource:
    def test_lookup(self, clinic_schema):
        clinic_schema.schema_id = 1
        source = DictSchemaSource({1: clinic_schema})
        assert source.get_schema(1) is clinic_schema

    def test_missing_raises(self):
        with pytest.raises(QueryError):
            DictSchemaSource({}).get_schema(9)
