"""Unit tests for the XML result serialization and GraphML writer."""

import pytest

from repro.core.results import ElementMatch, SearchResult
from repro.errors import ServiceError
from repro.service.graphml import graphml_for_schema, parse_graphml
from repro.service.xmlresponse import parse_results_xml, results_to_xml


def make_result() -> SearchResult:
    matches = [ElementMatch("kw:height", "patient.height", 0.91)]
    return SearchResult(
        schema_id=3, name="clinic_emr", score=0.7421, match_count=4,
        entity_count=3, attribute_count=12,
        description="health clinic <records> & more",
        coarse_score=1.25, best_anchor="case",
        element_scores={"patient.height": 0.91},
        element_matches=matches)


class TestResultsXml:
    def test_roundtrip(self):
        original = [make_result()]
        parsed = parse_results_xml(results_to_xml(original, query="q"))
        assert len(parsed) == 1
        result = parsed[0]
        assert result.schema_id == 3
        assert result.name == "clinic_emr"
        assert result.score == pytest.approx(0.7421)
        assert result.coarse_score == pytest.approx(1.25)
        assert result.best_anchor == "case"
        assert result.match_count == 4
        assert result.description == "health clinic <records> & more"
        assert result.element_matches[0].element_path == "patient.height"
        assert result.element_matches[0].score == pytest.approx(0.91)

    def test_special_characters_escaped(self):
        xml = results_to_xml([make_result()])
        assert "&lt;records&gt;" in xml or "<description>" in xml
        # Either way it must parse back.
        assert parse_results_xml(xml)[0].description == \
            "health clinic <records> & more"

    def test_empty_result_list(self):
        assert parse_results_xml(results_to_xml([])) == []

    def test_ranks_sequential(self):
        results = [make_result(), make_result()]
        xml = results_to_xml(results)
        assert 'rank="1"' in xml and 'rank="2"' in xml

    def test_malformed_xml_raises(self):
        with pytest.raises(ServiceError, match="malformed"):
            parse_results_xml("<searchResults")

    def test_wrong_root_raises(self):
        with pytest.raises(ServiceError, match="unexpected root"):
            parse_results_xml("<somethingElse/>")

    def test_bad_numeric_field_raises(self):
        xml = ('<searchResults count="1">'
               '<result rank="1" schemaId="oops" name="x" score="0.1" '
               'matches="0" entities="0" attributes="0"/></searchResults>')
        with pytest.raises(ServiceError, match="malformed result"):
            parse_results_xml(xml)


class TestGraphml:
    def test_roundtrip_structure(self, clinic_schema):
        graph = parse_graphml(graphml_for_schema(clinic_schema))
        assert graph.has_node("patient")
        assert graph.has_node("patient.height")
        assert graph.has_edge("patient", "patient.height")
        # 1 root + 3 entities + 12 attributes
        assert graph.number_of_nodes() == 16

    def test_node_attributes_preserved(self, clinic_schema):
        graph = parse_graphml(graphml_for_schema(clinic_schema))
        assert graph.nodes["patient"]["kind"] == "entity"
        assert graph.nodes["patient.height"]["kind"] == "attribute"
        assert graph.nodes["patient.height"]["data_type"] == "DECIMAL(5,2)"

    def test_fk_edges_tagged(self, clinic_schema):
        graph = parse_graphml(graphml_for_schema(clinic_schema))
        assert graph.edges["case.patient", "patient.id"]["relation"] == \
            "foreign_key"

    def test_match_scores_encoded(self, clinic_schema):
        graphml = graphml_for_schema(
            clinic_schema, match_scores={"patient.height": 0.85})
        graph = parse_graphml(graphml)
        assert graph.nodes["patient.height"]["match_score"] == \
            pytest.approx(0.85)

    def test_unknown_score_paths_ignored(self, clinic_schema):
        graphml = graphml_for_schema(clinic_schema,
                                     match_scores={"ghost.attr": 0.9})
        assert parse_graphml(graphml).number_of_nodes() == 16

    def test_malformed_graphml_raises(self):
        with pytest.raises(ServiceError):
            parse_graphml("<graphml")

    def test_wrong_root_raises(self):
        with pytest.raises(ServiceError, match="unexpected root"):
            parse_graphml("<html/>")

    def test_graph_name_preserved(self, clinic_schema):
        graph = parse_graphml(graphml_for_schema(clinic_schema))
        assert graph.graph["name"] == "clinic_emr"
