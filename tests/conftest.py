"""Shared fixtures: the paper's worked-example schemas and small corpora."""

from __future__ import annotations

import pytest

from repro.model.elements import Attribute, Entity, ForeignKey
from repro.model.schema import Schema
from repro.repository.store import SchemaRepository


def build_clinic_schema(name: str = "clinic_emr") -> Schema:
    """The Figure 4 schema: case -> patient, case -> doctor.

    ``case`` and ``patient`` are FK-connected through ``case``;
    ``doctor`` connects to ``case`` too, so all three share one
    neighborhood, while any added isolated entity is unrelated.
    """
    schema = Schema(name=name, description="health clinic records",
                    source="test")
    schema.add_entity(Entity("patient", [
        Attribute("id", "INTEGER", primary_key=True, nullable=False),
        Attribute("name", "VARCHAR(100)"),
        Attribute("height", "DECIMAL(5,2)"),
        Attribute("gender", "CHAR(1)"),
    ]))
    schema.add_entity(Entity("doctor", [
        Attribute("id", "INTEGER", primary_key=True, nullable=False),
        Attribute("name", "VARCHAR(100)"),
        Attribute("gender", "CHAR(1)"),
        Attribute("specialty", "VARCHAR(50)"),
    ]))
    schema.add_entity(Entity("case", [
        Attribute("id", "INTEGER", primary_key=True, nullable=False),
        Attribute("patient", "INTEGER"),
        Attribute("doctor", "INTEGER"),
        Attribute("diagnosis", "TEXT"),
    ]))
    schema.add_foreign_key(ForeignKey("case", "patient", "patient", "id"))
    schema.add_foreign_key(ForeignKey("case", "doctor", "doctor", "id"))
    return schema


def build_hr_schema(name: str = "hr_payroll") -> Schema:
    schema = Schema(name=name, description="employee payroll", source="test")
    schema.add_entity(Entity("employee", [
        Attribute("id", "INTEGER", primary_key=True, nullable=False),
        Attribute("first_name", "VARCHAR(50)"),
        Attribute("last_name", "VARCHAR(50)"),
        Attribute("salary", "DECIMAL(10,2)"),
        Attribute("dept_id", "INTEGER"),
    ]))
    schema.add_entity(Entity("department", [
        Attribute("id", "INTEGER", primary_key=True, nullable=False),
        Attribute("name", "VARCHAR(50)"),
        Attribute("manager", "VARCHAR(50)"),
    ]))
    schema.add_foreign_key(
        ForeignKey("employee", "dept_id", "department", "id"))
    return schema


def build_conservation_schema(name: str = "conservation_monitoring") -> Schema:
    schema = Schema(name=name, description="species observations",
                    source="test")
    schema.add_entity(Entity("site", [
        Attribute("id", "INTEGER", primary_key=True, nullable=False),
        Attribute("site_name", "VARCHAR(80)"),
        Attribute("latitude", "REAL"),
        Attribute("longitude", "REAL"),
    ]))
    schema.add_entity(Entity("observation", [
        Attribute("id", "INTEGER", primary_key=True, nullable=False),
        Attribute("site_id", "INTEGER"),
        Attribute("species", "VARCHAR(100)"),
        Attribute("obs_date", "DATE"),
        Attribute("count", "INTEGER"),
    ]))
    schema.add_foreign_key(ForeignKey("observation", "site_id", "site", "id"))
    return schema


@pytest.fixture
def clinic_schema() -> Schema:
    return build_clinic_schema()


@pytest.fixture
def hr_schema() -> Schema:
    return build_hr_schema()


@pytest.fixture
def conservation_schema() -> Schema:
    return build_conservation_schema()


@pytest.fixture
def small_repository() -> SchemaRepository:
    """A repository holding the three fixture schemas, indexed."""
    repo = SchemaRepository.in_memory()
    repo.add_schema(build_clinic_schema())
    repo.add_schema(build_hr_schema())
    repo.add_schema(build_conservation_schema())
    repo.reindex()
    yield repo
    repo.close()


#: The paper's running query: "patient, height, gender, diagnosis".
PAPER_KEYWORDS = ["patient", "height", "gender", "diagnosis"]


@pytest.fixture
def paper_keywords() -> list[str]:
    return list(PAPER_KEYWORDS)


# -- lock-order sanitizer (opt-in) -------------------------------------------
#
# ``SCHEMR_LOCK_SANITIZER=1 pytest ...`` runs the whole session with the
# runtime lock-order sanitizer instrumenting the lock-owning project
# classes (repro.analysis.sanitizer).  An observed inversion raises
# LockOrderInversion at the acquisition site, and the session fixture
# re-asserts at teardown so inversions swallowed by worker threads still
# fail the run.  The CI ``sanitizer-smoke`` job runs the chaos and
# sharding suites this way.

import os


@pytest.fixture(scope="session", autouse=True)
def _lock_order_sanitizer():
    if os.environ.get("SCHEMR_LOCK_SANITIZER") != "1":
        yield None
        return
    from repro.analysis.sanitizer import (LockOrderSanitizer,
                                          instrument_project)
    from repro.telemetry.metrics import MetricsRegistry

    sanitizer = LockOrderSanitizer(metrics=MetricsRegistry())
    instrument_project(sanitizer)
    try:
        yield sanitizer
    finally:
        sanitizer.uninstrument()
        assert not sanitizer.inversions, sanitizer.report()
