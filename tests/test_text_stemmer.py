"""Unit tests for the Porter stemmer.

Expected outputs follow Porter's 1980 paper examples and the reference
implementation's behaviour on common schema vocabulary.
"""

import pytest

from repro.text.stemmer import porter_stem


class TestStep1:
    @pytest.mark.parametrize("word,expected", [
        ("caresses", "caress"),
        ("ponies", "poni"),
        ("ties", "ti"),
        ("caress", "caress"),
        ("cats", "cat"),
    ])
    def test_plurals(self, word, expected):
        assert porter_stem(word) == expected

    @pytest.mark.parametrize("word,expected", [
        ("feed", "feed"),
        ("agreed", "agre"),
        ("plastered", "plaster"),
        ("bled", "bled"),
        ("motoring", "motor"),
        ("sing", "sing"),
    ])
    def test_ed_ing(self, word, expected):
        assert porter_stem(word) == expected

    @pytest.mark.parametrize("word,expected", [
        ("conflated", "conflat"),
        ("troubled", "troubl"),
        ("sized", "size"),
        ("hopping", "hop"),
        ("tanned", "tan"),
        ("falling", "fall"),
        ("hissing", "hiss"),
        ("fizzed", "fizz"),
        ("failing", "fail"),
        ("filing", "file"),
    ])
    def test_cleanup_rules(self, word, expected):
        assert porter_stem(word) == expected

    def test_y_to_i(self):
        assert porter_stem("happy") == "happi"
        assert porter_stem("sky") == "sky"


class TestLaterSteps:
    @pytest.mark.parametrize("word,expected", [
        ("relational", "relat"),
        ("conditional", "condit"),
        ("rational", "ration"),
        ("valenci", "valenc"),
        ("digitizer", "digit"),
        ("operator", "oper"),
        ("feudalism", "feudal"),
        ("decisiveness", "decis"),
        ("hopefulness", "hope"),
        ("formaliti", "formal"),
    ])
    def test_step2(self, word, expected):
        assert porter_stem(word) == expected

    @pytest.mark.parametrize("word,expected", [
        ("triplicate", "triplic"),
        ("formative", "form"),
        ("formalize", "formal"),
        ("electrical", "electr"),
        ("hopeful", "hope"),
        ("goodness", "good"),
    ])
    def test_step3(self, word, expected):
        assert porter_stem(word) == expected

    @pytest.mark.parametrize("word,expected", [
        ("revival", "reviv"),
        ("allowance", "allow"),
        ("inference", "infer"),
        ("airliner", "airlin"),
        ("adjustment", "adjust"),
        ("dependent", "depend"),
        ("adoption", "adopt"),
        ("effective", "effect"),
        ("bowdlerize", "bowdler"),
    ])
    def test_step4(self, word, expected):
        assert porter_stem(word) == expected

    @pytest.mark.parametrize("word,expected", [
        ("probate", "probat"),
        ("rate", "rate"),
        ("cease", "ceas"),
        ("controll", "control"),
        ("roll", "roll"),
    ])
    def test_step5(self, word, expected):
        assert porter_stem(word) == expected


class TestSchemaVocabulary:
    """Morphological variants of schema words must share stems — this is
    what lets the index match "observations" to "observation"."""

    @pytest.mark.parametrize("a,b", [
        ("patients", "patient"),
        ("observations", "observation"),
        ("enrollments", "enrollment"),
        ("salaries", "salary"),
        ("addresses", "address"),
        ("categories", "category"),
    ])
    def test_variant_pairs_share_stem(self, a, b):
        assert porter_stem(a) == porter_stem(b)

    def test_short_words_untouched(self):
        assert porter_stem("id") == "id"
        assert porter_stem("is") == "is"

    def test_stemming_is_idempotent_on_common_words(self):
        for word in ("patient", "diagnosis", "observation", "salary"):
            once = porter_stem(word)
            assert porter_stem(once) == once
