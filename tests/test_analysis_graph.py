"""The graph-level lint rules: seeded lock-order cycles, leaked
resources, catalog drift, and blocking-under-lock each yield exactly
one finding with a witness; pragmas, baselines, and the new runner
flags (`--rule`, `--changed-only`) behave."""

from __future__ import annotations

import json
import subprocess
import textwrap
from pathlib import Path

from repro.analysis import run_lint
from repro.analysis.runner import changed_files, main as lint_main


def _write_corpus(tmp_path: Path, files: dict[str, str]) -> Path:
    """A synthetic ``repro`` package so modules resolve as ``repro.*``."""
    root = tmp_path / "repro"
    root.mkdir(exist_ok=True)
    for name, code in files.items():
        (root / name).write_text(textwrap.dedent(code), encoding="utf-8")
    return root


def _findings(result, rule_id: str) -> list:
    return [f for f in result.findings if f.rule == rule_id]


# -- lock-order --------------------------------------------------------

CYCLE = """
    import threading

    class Pair:
        def __init__(self):
            self._a = threading.Lock()
            self._b = threading.Lock()

        def forward(self):
            with self._a:
                self._step()

        def _step(self):
            with self._b:
                pass

        def backward(self):
            with self._b:
                with self._a:
                    pass
"""


def test_lock_order_cycle_is_one_finding_with_witnesses(tmp_path):
    root = _write_corpus(tmp_path, {"pair.py": CYCLE})
    found = _findings(run_lint([root]), "lock-order")
    assert len(found) == 1
    message = found[0].message
    assert "potential deadlock" in message
    # Both edges of the cycle carry their witness path, including the
    # interprocedural one through _step.
    assert "Pair._a -> Pair._b" in message
    assert "Pair._b -> Pair._a" in message
    assert "_step" in message


def test_lock_order_cycle_exits_one(tmp_path):
    root = _write_corpus(tmp_path, {"pair.py": CYCLE})
    assert lint_main([str(root), "--rule", "lock-order"]) == 1


def test_lock_order_quiet_on_consistent_order(tmp_path):
    clean = CYCLE.replace(
        "with self._b:\n                with self._a:",
        "with self._a:\n                with self._b:")
    root = _write_corpus(tmp_path, {"pair.py": clean})
    assert _findings(run_lint([root]), "lock-order") == []


def test_lock_order_flags_nonreentrant_self_acquire(tmp_path):
    code = """
        import threading

        class Once:
            def __init__(self):
                self._lock = threading.Lock()

            def outer(self):
                with self._lock:
                    self.inner()

            def inner(self):
                with self._lock:
                    pass
    """
    root = _write_corpus(tmp_path, {"once.py": code})
    found = _findings(run_lint([root]), "lock-order")
    assert len(found) == 1
    assert "re-acquir" in found[0].message or "reentrant" in \
        found[0].message.lower()


# -- resource-lifecycle ------------------------------------------------

LEAKED_MMAP = """
    import mmap

    def sizes(fileno):
        handle = mmap.mmap(fileno, 0)
        return handle.size()
"""


def test_leaked_mmap_is_one_finding(tmp_path):
    root = _write_corpus(tmp_path, {"leak.py": LEAKED_MMAP})
    found = _findings(run_lint([root]), "resource-lifecycle")
    assert len(found) == 1
    assert "mmap" in found[0].message
    assert lint_main([str(root), "--rule", "resource-lifecycle"]) == 1


def test_managed_mmap_is_quiet(tmp_path):
    code = """
        import mmap

        def sizes(fileno):
            with mmap.mmap(fileno, 0) as handle:
                return handle.size()
    """
    root = _write_corpus(tmp_path, {"ok.py": code})
    assert _findings(run_lint([root]), "resource-lifecycle") == []


def test_def_line_owned_by_pragma_covers_whole_method(tmp_path):
    code = """
        import mmap

        class Holder:
            def adopt(self, fileno):  # lint: owned-by(handle) (registry takes ownership)
                handle = mmap.mmap(fileno, 0)
                return handle.size()
    """
    root = _write_corpus(tmp_path, {"holder.py": code})
    result = run_lint([root])
    assert _findings(result, "resource-lifecycle") == []
    assert result.suppressed >= 1


def test_owned_by_in_string_literal_never_suppresses(tmp_path):
    code = '''
        import mmap

        def sizes(fileno):
            note = "# lint: owned-by(handle) (just prose)"
            handle = mmap.mmap(fileno, 0)
            return handle.size()
    '''
    root = _write_corpus(tmp_path, {"leaky.py": code})
    assert len(_findings(run_lint([root]), "resource-lifecycle")) == 1


# -- site-catalog ------------------------------------------------------

SITE_CATALOG = """
    KNOWN_SITES = {
        "store.read": "reading a schema row",
    }
"""

SITE_USER = """
    FAULTS = None

    def work():
        FAULTS.hit("store.read")
        FAULTS.hit("store.unregistered")
"""


def test_unregistered_fault_site_is_one_finding(tmp_path):
    root = _write_corpus(tmp_path, {"faultcat.py": SITE_CATALOG,
                                    "use.py": SITE_USER})
    found = _findings(run_lint([root]), "site-catalog")
    assert len(found) == 1
    assert "store.unregistered" in found[0].message
    assert found[0].path.endswith("use.py")
    assert lint_main([str(root), "--rule", "site-catalog"]) == 1


def test_fault_sites_round_trip_clean(tmp_path):
    clean_user = SITE_USER.replace(
        '        FAULTS.hit("store.unregistered")\n', "")
    root = _write_corpus(tmp_path, {"faultcat.py": SITE_CATALOG,
                                    "use.py": clean_user})
    assert _findings(run_lint([root]), "site-catalog") == []


# -- api-blocking ------------------------------------------------------

def test_sleep_under_lock_is_flagged(tmp_path):
    code = """
        import threading
        import time

        class Poller:
            def __init__(self):
                self._lock = threading.Lock()

            def bad(self):
                with self._lock:
                    time.sleep(0.1)

            def fine(self):
                time.sleep(0.1)
                with self._lock:
                    pass
    """
    root = _write_corpus(tmp_path, {"poller.py": code})
    found = _findings(run_lint([root]), "api-blocking")
    assert len(found) == 1
    assert "sleep" in found[0].message


# -- baselines over graph findings -------------------------------------

def test_graph_findings_baseline_round_trip(tmp_path, capsys):
    root = _write_corpus(tmp_path, {"pair.py": CYCLE})
    baseline = tmp_path / "baseline.json"
    assert lint_main([str(root), "--rule", "lock-order",
                      "--baseline", str(baseline),
                      "--update-baseline"]) == 0
    capsys.readouterr()
    payload = json.loads(baseline.read_text(encoding="utf-8"))
    rendered = json.dumps(payload)
    # The grandfathered message keeps its witness path.
    assert "potential deadlock" in rendered
    assert "Pair._a -> Pair._b" in rendered
    assert lint_main([str(root), "--rule", "lock-order",
                      "--baseline", str(baseline)]) == 0


# -- --rule and --changed-only -----------------------------------------

def test_rule_flag_restricts_rules(tmp_path, capsys):
    root = _write_corpus(tmp_path, {"pair.py": CYCLE,
                                    "leak.py": LEAKED_MMAP})
    assert lint_main([str(root), "--rule", "resource-lifecycle",
                      "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    rules = {f["rule"] for f in payload["findings"]}
    assert rules == {"resource-lifecycle"}


def test_unknown_rule_id_exits_two(tmp_path, capsys):
    root = _write_corpus(tmp_path, {"pair.py": CYCLE})
    assert lint_main([str(root), "--rule", "no-such-rule"]) == 2
    assert "no-such-rule" in capsys.readouterr().err


def _git(root: Path, *args: str) -> None:
    subprocess.run(
        ("git", "-c", "user.email=lint@test", "-c", "user.name=lint")
        + args,
        cwd=root, check=True, capture_output=True)


def test_changed_only_filters_to_changed_files(tmp_path, capsys,
                                               monkeypatch):
    root = _write_corpus(tmp_path, {"pair.py": CYCLE})
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-qm", "seed")
    # A new (untracked) leak rides on top of the committed cycle.
    (root / "leak.py").write_text(textwrap.dedent(LEAKED_MMAP),
                                  encoding="utf-8")
    monkeypatch.chdir(tmp_path)
    changed = changed_files()
    assert changed is not None
    assert (root / "leak.py").resolve() in changed

    assert lint_main([str(root), "--changed-only",
                      "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    paths = {f["path"] for f in payload["findings"]}
    assert all(path.endswith("leak.py") for path in paths), paths


def test_changed_only_degrades_without_git(tmp_path, capsys,
                                           monkeypatch):
    root = _write_corpus(tmp_path, {"pair.py": CYCLE})
    monkeypatch.chdir(tmp_path)
    assert lint_main([str(root), "--rule", "lock-order",
                      "--changed-only"]) == 1
    captured = capsys.readouterr()
    assert "git work tree" in captured.err
    assert "potential deadlock" in captured.out
