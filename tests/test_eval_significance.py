"""Unit tests for the paired significance tests."""

import random

import pytest

from repro.errors import SchemrError
from repro.eval.significance import (
    ComparisonResult,
    paired_bootstrap,
    per_query_scores,
    wilcoxon_signed_rank,
)


def correlated_samples(n: int, effect: float, seed: int = 7):
    """Paired scores where A = B + effect + noise."""
    rng = random.Random(seed)
    b = [rng.uniform(0.2, 0.8) for _ in range(n)]
    a = [min(1.0, value + effect + rng.gauss(0, 0.02)) for value in b]
    return a, b


class TestPairedBootstrap:
    def test_clear_effect_is_significant(self):
        a, b = correlated_samples(40, effect=0.15)
        result = paired_bootstrap(a, b, iterations=2000)
        assert result.delta > 0.1
        assert result.significant

    def test_no_effect_is_not_significant(self):
        a, b = correlated_samples(40, effect=0.0)
        result = paired_bootstrap(a, b, iterations=2000)
        assert not result.significant

    def test_identical_scores_p_one(self):
        scores = [0.5, 0.7, 0.9]
        result = paired_bootstrap(scores, list(scores))
        assert result.p_value == 1.0
        assert result.delta == 0.0

    def test_deterministic_per_seed(self):
        a, b = correlated_samples(20, effect=0.05)
        x = paired_bootstrap(a, b, iterations=500, seed=3)
        y = paired_bootstrap(a, b, iterations=500, seed=3)
        assert x.p_value == y.p_value

    def test_negative_effect_detected(self):
        a, b = correlated_samples(40, effect=-0.15)
        result = paired_bootstrap(a, b, iterations=2000)
        assert result.delta < 0
        assert result.significant

    def test_length_mismatch_rejected(self):
        with pytest.raises(SchemrError):
            paired_bootstrap([1.0], [1.0, 2.0])

    def test_too_few_observations_rejected(self):
        with pytest.raises(SchemrError):
            paired_bootstrap([1.0], [0.5])


class TestWilcoxon:
    def test_clear_effect_is_significant(self):
        a, b = correlated_samples(40, effect=0.15)
        assert wilcoxon_signed_rank(a, b).significant

    def test_all_ties_p_one(self):
        scores = [0.5] * 10
        result = wilcoxon_signed_rank(scores, list(scores))
        assert result.p_value == 1.0

    def test_agrees_with_bootstrap_on_direction(self):
        a, b = correlated_samples(30, effect=0.1)
        bootstrap = paired_bootstrap(a, b, iterations=1000)
        wilcoxon = wilcoxon_signed_rank(a, b)
        assert (bootstrap.delta > 0) == (wilcoxon.delta > 0)


class TestComparisonResult:
    def test_summary_marks_significance(self):
        significant = ComparisonResult(0.9, 0.5, 0.4, 0.001, "test")
        insignificant = ComparisonResult(0.9, 0.89, 0.01, 0.4, "test")
        assert "*" in significant.summary()
        assert "*" not in insignificant.summary().split("(")[0][-2:]


class TestPerQueryScores:
    def test_aligned_with_queries(self, small_repository, paper_keywords):
        from repro.corpus.groundtruth import GroundTruthQuery
        from repro.eval.metrics import reciprocal_rank
        engine = small_repository.engine()

        def rank(keywords, top_n):
            return [r.schema_id
                    for r in engine.search(keywords=keywords, top_n=top_n)]

        queries = [
            GroundTruthQuery(
                keywords=paper_keywords,
                canonical_keywords=paper_keywords,
                domain="healthcare", template="patient", channel="clean",
                relevance={1: 2}),
            GroundTruthQuery(
                keywords=["employee", "salary"],
                canonical_keywords=["employee", "salary"],
                domain="hr", template="employee", channel="clean",
                relevance={2: 2}),
        ]
        scores = per_query_scores(rank, queries, reciprocal_rank)
        assert scores == [1.0, 1.0]
