"""Unit tests for normalization and the n-gram machinery."""

import pytest

from repro.matching.ngram import dice_similarity, ngrams, weighted_ngram_similarity
from repro.matching.normalize import (
    expand_abbreviations,
    normalize_name,
    normalize_words,
)


class TestNormalize:
    def test_delimiters_removed(self):
        assert normalize_name("Patient_Height") == "patientheight"
        assert normalize_name("patient-height") == "patientheight"
        assert normalize_name("patient.height") == "patientheight"

    def test_camel_case_flattened(self):
        assert normalize_name("patientHeight") == "patientheight"

    def test_abbreviations_expanded(self):
        assert normalize_name("qty") == "quantity"
        assert normalize_name("pat_ht") == "patheight"
        assert normalize_name("dob") == "dateofbirth"

    def test_expansion_optional(self):
        assert normalize_name("qty", expand=False) == "qty"

    def test_normalize_words_keeps_word_list(self):
        assert normalize_words("first_name") == ["first", "name"]
        assert normalize_words("dob") == ["date", "of", "birth"]

    def test_expand_abbreviations_passthrough(self):
        assert expand_abbreviations(["patient", "ht"]) == \
            ["patient", "height"]

    def test_empty_name(self):
        assert normalize_name("") == ""


class TestNgrams:
    def test_all_lengths_by_default(self):
        grams = ngrams("abc")
        assert grams == {"a", "b", "c", "ab", "bc", "abc"}

    def test_bounded_lengths(self):
        assert ngrams("abcd", min_n=2, max_n=2) == {"ab", "bc", "cd"}

    def test_empty_string(self):
        assert ngrams("") == set()

    def test_min_n_validation(self):
        with pytest.raises(ValueError):
            ngrams("abc", min_n=0)


class TestDice:
    def test_identical_sets(self):
        grams = ngrams("abc")
        assert dice_similarity(grams, grams) == 1.0

    def test_disjoint_sets(self):
        assert dice_similarity({"a"}, {"b"}) == 0.0

    def test_empty_sets(self):
        assert dice_similarity(set(), set()) == 0.0


class TestWeightedNgramSimilarity:
    def test_identical_strings(self):
        assert weighted_ngram_similarity("patient", "patient") == 1.0

    def test_disjoint_strings(self):
        assert weighted_ngram_similarity("abc", "xyz") == 0.0

    def test_empty_string(self):
        assert weighted_ngram_similarity("", "abc") == 0.0

    def test_symmetric(self):
        a = weighted_ngram_similarity("patientheight", "patht")
        b = weighted_ngram_similarity("patht", "patientheight")
        assert a == pytest.approx(b)

    def test_bounded(self):
        score = weighted_ngram_similarity("patient", "patients")
        assert 0.0 < score < 1.0

    def test_abbreviation_scores_well(self):
        """The paper's motivating case: abbreviated forms must score
        meaningfully against the full form."""
        full_vs_abbrev = weighted_ngram_similarity("patientheight", "patht")
        full_vs_unrelated = weighted_ngram_similarity("patientheight",
                                                      "salary")
        assert full_vs_abbrev > 3 * full_vs_unrelated

    def test_morphological_variant_scores_high(self):
        assert weighted_ngram_similarity("observation",
                                         "observations") > 0.85

    def test_longer_shared_substrings_weighted_higher(self):
        # 'diagnose'/'diagnosis' share a long prefix; 'sit'/'its' share
        # only short grams.
        long_shared = weighted_ngram_similarity("diagnose", "diagnosis")
        short_shared = weighted_ngram_similarity("sit", "its")
        assert long_shared > short_shared
