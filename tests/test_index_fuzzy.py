"""Unit tests for fuzzy query-term expansion."""

import pytest

from repro.core.config import SchemrConfig
from repro.core.engine import DictSchemaSource, SchemrEngine
from repro.index.documents import document_from_schema
from repro.index.fuzzy import (
    Expansion,
    TrigramIndex,
    expand_query_terms,
    term_trigrams,
)
from repro.index.inverted import InvertedIndex
from repro.index.searcher import IndexSearcher

from tests.conftest import build_clinic_schema


class TestTrigrams:
    def test_padded_trigrams(self):
        assert term_trigrams("pat") == {"$pa", "pat", "at$"}

    def test_short_terms_have_no_signal(self):
        assert term_trigrams("a") == set()
        assert term_trigrams("") == set()

    def test_two_char_term(self):
        assert term_trigrams("id") == {"$id", "id$"}


class TestTrigramIndex:
    @pytest.fixture
    def vocabulary(self) -> TrigramIndex:
        return TrigramIndex.from_terms(
            ["patient", "height", "gender", "diagnosi", "salari",
             "observ", "registr"])

    def test_contains_and_len(self, vocabulary):
        assert "patient" in vocabulary
        assert "ghost" not in vocabulary
        assert len(vocabulary) == 7

    def test_suggests_close_term(self, vocabulary):
        suggestions = vocabulary.suggest("pateint")  # transposition
        assert suggestions
        assert suggestions[0].term == "patient"

    def test_suggests_for_deletion(self, vocabulary):
        suggestions = vocabulary.suggest("hight")
        assert suggestions and suggestions[0].term == "height"

    def test_no_suggestion_for_garbage(self, vocabulary):
        assert vocabulary.suggest("zzzqqq") == []

    def test_identical_term_not_suggested(self, vocabulary):
        assert all(e.term != "patient"
                   for e in vocabulary.suggest("patient"))

    def test_suggestions_sorted_best_first(self, vocabulary):
        suggestions = vocabulary.suggest("registratio")
        similarities = [e.similarity for e in suggestions]
        assert similarities == sorted(similarities, reverse=True)

    def test_max_suggestions_respected(self):
        index = TrigramIndex.from_terms(
            ["pat", "pate", "pater", "patern"], max_suggestions=2)
        assert len(index.suggest("pati")) <= 2

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TrigramIndex(min_similarity=0.0)
        with pytest.raises(ValueError):
            TrigramIndex(max_suggestions=0)


class TestExpandQueryTerms:
    def test_abbreviations_expanded(self):
        assert expand_query_terms(["pat", "ht"]) == ["pat", "height"]

    def test_case_normalized(self):
        assert expand_query_terms(["HT"]) == ["height"]


class TestFuzzySearch:
    @pytest.fixture
    def searcher_pair(self) -> tuple[IndexSearcher, IndexSearcher]:
        index = InvertedIndex()
        schema = build_clinic_schema()
        schema.schema_id = 1
        index.add(document_from_schema(schema))
        plain = IndexSearcher(index)
        fuzzy = IndexSearcher(
            index, fuzzy=TrigramIndex.from_terms(index.vocabulary()))
        return plain, fuzzy

    def test_typo_recovered_only_with_fuzzy(self, searcher_pair):
        plain, fuzzy = searcher_pair
        assert plain.search(["pateint"], top_n=5) == []
        hits = fuzzy.search(["pateint"], top_n=5)
        assert hits and hits[0].doc_id == 1

    def test_expansion_discounted_below_exact(self, searcher_pair):
        _plain, fuzzy = searcher_pair
        exact = fuzzy.search(["patient"], top_n=1)[0].score
        typo = fuzzy.search(["pateint"], top_n=1)[0].score
        assert 0 < typo < exact

    def test_known_terms_unchanged_by_fuzzy(self, searcher_pair):
        plain, fuzzy = searcher_pair
        a = plain.search(["patient", "height"], top_n=5)
        b = fuzzy.search(["patient", "height"], top_n=5)
        assert [(h.doc_id, h.score) for h in a] == \
            [(h.doc_id, h.score) for h in b]

    def test_abbreviation_reaches_index(self, searcher_pair):
        _plain, fuzzy = searcher_pair
        hits = fuzzy.search(["ht"], top_n=5)  # expands to height
        assert hits and hits[0].doc_id == 1

    def test_engine_config_flag(self):
        schema = build_clinic_schema()
        schema.schema_id = 1
        index = InvertedIndex()
        index.add(document_from_schema(schema))
        source = DictSchemaSource({1: schema})
        plain_engine = SchemrEngine(index=index, source=source)
        fuzzy_engine = SchemrEngine(
            index=index, source=source,
            config=SchemrConfig(use_fuzzy_expansion=True))
        assert plain_engine.search(keywords="pateint gnder") == []
        results = fuzzy_engine.search(keywords="pateint gnder")
        assert results and results[0].name == "clinic_emr"

    def test_expansion_dataclass(self):
        expansion = Expansion(term="patient", similarity=0.8)
        assert expansion.term == "patient"
