"""Unit tests for the WebTable importer and the query parser."""

import pytest

from repro.errors import ParseError, QueryError
from repro.model.schema import Schema
from repro.parsers.query_parser import detect_format, parse_fragment, parse_query
from repro.parsers.webtable import schema_from_webtable


class TestWebTable:
    def test_single_entity_schema(self):
        schema = schema_from_webtable("presidents",
                                      ["name", "party", "term"])
        assert set(schema.entities) == {"presidents"}
        assert schema.attribute_count == 3
        assert schema.source == "webtable"

    def test_duplicate_columns_disambiguated(self):
        schema = schema_from_webtable("t", ["x", "x", "x"])
        names = [a.name for a in schema.entity("t").attributes]
        assert names == ["x", "x_2", "x_3"]

    def test_blank_columns_dropped(self):
        schema = schema_from_webtable("t", ["a", "  ", "", "b"])
        assert schema.attribute_count == 2

    def test_empty_title_rejected(self):
        with pytest.raises(ParseError):
            schema_from_webtable("  ", ["a"])

    def test_no_usable_columns_rejected(self):
        with pytest.raises(ParseError, match="no usable"):
            schema_from_webtable("t", ["", "  "])


class TestDetectFormat:
    def test_ddl(self):
        assert detect_format("CREATE TABLE x (y INT);") == "ddl"

    def test_ddl_case_insensitive(self):
        assert detect_format("create table x (y int);") == "ddl"

    def test_xsd(self):
        assert detect_format('<xs:schema xmlns:xs="..."/>') == "xsd"

    def test_keywords(self):
        assert detect_format("patient height gender") == "keywords"

    def test_empty(self):
        assert detect_format("   ") == "keywords"


class TestParseFragment:
    def test_dispatches_to_ddl(self):
        schema = parse_fragment("CREATE TABLE t (x INTEGER);")
        assert "t" in schema.entities

    def test_dispatches_to_xsd(self):
        xsd = """<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
         <xs:element name="a" type="xs:string"/></xs:schema>"""
        assert "a" in parse_fragment(xsd).entities

    def test_plain_text_rejected(self):
        with pytest.raises(ParseError, match="neither DDL .* nor XSD"):
            parse_fragment("just some words")


class TestParseQuery:
    def test_keywords_string_split_on_commas_and_spaces(self):
        graph = parse_query("patient, height gender,diagnosis")
        assert graph.keywords == ["patient", "height", "gender",
                                  "diagnosis"]

    def test_keywords_list(self):
        graph = parse_query(["patient height", "gender"])
        assert graph.keywords == ["patient", "height", "gender"]

    def test_fragment_text(self):
        graph = parse_query(fragment="CREATE TABLE t (x INTEGER);")
        assert len(graph.fragments) == 1

    def test_fragment_schema_object(self, clinic_schema):
        graph = parse_query(fragment=clinic_schema)
        assert graph.fragments == [clinic_schema]

    def test_mixed_query(self, clinic_schema):
        graph = parse_query("height", fragment=clinic_schema)
        assert graph.keywords == ["height"]
        assert len(graph.fragments) == 1

    def test_empty_query_rejected(self):
        with pytest.raises(QueryError, match="at least one"):
            parse_query()

    def test_whitespace_fragment_ignored(self):
        with pytest.raises(QueryError):
            parse_query(fragment="   ")

    def test_figure1_shape(self, clinic_schema):
        """Figure 1: a query graph holding a fragment and a keyword is a
        forest where the keyword is a one-item tree."""
        graph = parse_query("diagnosis", fragment=clinic_schema)
        assert len(graph.items) == 2
        assert isinstance(graph.fragments[0], Schema)
        assert graph.element_labels()[0] == "kw:diagnosis"


class TestMultiFragmentQueries:
    def test_list_of_fragment_texts(self):
        graph = parse_query(fragment=[
            "CREATE TABLE a (x INTEGER);",
            "CREATE TABLE b (y INTEGER);",
        ])
        assert len(graph.fragments) == 2
        names = [f.name for f in graph.fragments]
        assert names == ["query_fragment_0", "query_fragment_1"]

    def test_mixed_text_and_schema(self, clinic_schema):
        graph = parse_query(fragment=[
            clinic_schema, "CREATE TABLE b (y INTEGER);"])
        assert len(graph.fragments) == 2
        assert graph.fragments[0] is clinic_schema

    def test_labels_stay_unique_across_fragments(self):
        graph = parse_query(fragment=[
            "CREATE TABLE t (x INTEGER);",
            "CREATE TABLE t (x INTEGER);",
        ])
        labels = graph.element_labels()
        assert len(labels) == len(set(labels))

    def test_empty_list_rejected(self):
        with pytest.raises(QueryError):
            parse_query(fragment=[])

    def test_engine_accepts_multi_fragment(self, small_repository):
        engine = small_repository.engine()
        results = engine.search(fragment=[
            "CREATE TABLE patient (height DECIMAL, gender CHAR(1));",
            "CREATE TABLE site (latitude REAL, longitude REAL);",
        ])
        names = {r.name for r in results}
        assert "clinic_emr" in names
        assert "conservation_monitoring" in names
