"""Replicated serving: segment shipping, failover, crash recovery.

Three concerns share this file because they share the same property:
committed state is the only state that exists.

* The **syncer** (`repro.replication`) must make a replica directory
  byte-identical to the primary's committed manifest — flat or
  sharded, from scratch or incrementally — and a merge-only change on
  the primary must not bump the replica's serving generation (warm
  caches survive, per the PR 6 contract).
* The **client** must fail over across endpoints, demote dead or
  shedding targets, prefer the freshest replica, and honor
  ``Retry-After`` with capped, jittered backoff — all under a fake
  clock/sleep/rng so the suite never actually waits.
* The **crash harness** arms each ``segments.*`` / ``replication.*``
  fault site in turn and asserts the recovery invariant: reopening the
  directory (with the orphan sweep) always yields the last *committed*
  generation, byte-identical, at every site.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.errors import (IndexError_, SchemrError, SegmentDirectoryError,
                          ServiceError)
from repro.index.documents import Document
from repro.index.segments import (
    SegmentedIndex,
    TieredMergePolicy,
    open_segment_index,
    verify_directory,
)
from repro.index.segments.sharded import SHARDS_NAME
from repro.replication import (
    DirectorySource,
    ReplicaSyncer,
    build_replication_manifest,
    valid_segment_ref,
    validate_replication_manifest,
)
from repro.resilience.faults import FAULTS
from repro.resilience.retry import RetryPolicy
from repro.service.client import SchemrClient
from repro.telemetry import Telemetry


class SimulatedCrash(Exception):
    """Raised by an armed fault site; models the process dying there."""


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(autouse=True)
def clean_faults():
    FAULTS.reset()
    yield
    FAULTS.reset()


def doc(i: int) -> Document:
    words = ["patient", "height", "salary", "orbit", "kelp", "ledger"]
    return Document(i, f"doc{i}", summary=f"s{i}",
                    terms=[words[i % len(words)], words[(i + 1) % 6], "common"])


def make_primary(path, count: int = 8, shards: int | None = None):
    index = open_segment_index(path, shards=shards, create=True)
    for i in range(count):
        index.add(doc(i))
    index.flush(last_change_id=count)
    return index


def committed_state(root) -> dict[str, bytes]:
    """Every committed byte under ``root``: control files plus the
    segment files the manifests actually reference."""
    state = {}
    for manifest_path in sorted(root.rglob("MANIFEST.json")):
        rel_dir = manifest_path.parent.relative_to(root)
        state[str(rel_dir / "MANIFEST.json")] = manifest_path.read_bytes()
        for entry in json.loads(manifest_path.read_text())["segments"]:
            seg = manifest_path.parent / entry["file"]
            state[str(rel_dir / entry["file"])] = seg.read_bytes()
    marker = root / SHARDS_NAME
    if marker.exists():
        state[SHARDS_NAME] = marker.read_bytes()
    return state


def ranked_names(index, term: str = "common") -> list[str]:
    postings = index.postings(term)
    ids = list(postings.doc_ids()) if postings is not None else []
    return [index.document(i).title for i in ids]


# -- replication manifest ----------------------------------------------------

class TestReplicationManifest:
    def test_flat_manifest_shape(self, tmp_path):
        make_primary(tmp_path / "p")
        manifest = build_replication_manifest(tmp_path / "p")
        validate_replication_manifest(manifest)
        assert manifest["layout"] == "flat"
        assert manifest["shards"] is None
        assert manifest["generation"] == 8
        (entry,) = manifest["dirs"]
        assert entry["name"] == ""
        for segment in entry["manifest"]["segments"]:
            assert segment["bytes"] > 0
            assert "crc32" in segment

    def test_sharded_manifest_shape(self, tmp_path):
        make_primary(tmp_path / "p", shards=2)
        manifest = build_replication_manifest(tmp_path / "p")
        validate_replication_manifest(manifest)
        assert manifest["layout"] == "sharded"
        assert manifest["shards"] == 2
        assert [d["name"] for d in manifest["dirs"]] == \
            ["shard_0000", "shard_0001"]

    def test_rejects_path_traversal(self):
        assert valid_segment_ref("", "seg_00000001.seg")
        assert valid_segment_ref("shard_0003", "seg_00000001.seg")
        assert not valid_segment_ref("", "../../etc/passwd")
        assert not valid_segment_ref("..", "seg_00000001.seg")
        assert not valid_segment_ref("", "seg_00000001.seg.tmp")
        assert not valid_segment_ref("shard_x", "seg_00000001.seg")

    def test_validate_rejects_foreign_format(self, tmp_path):
        make_primary(tmp_path / "p")
        manifest = build_replication_manifest(tmp_path / "p")
        manifest["format"] = 99
        with pytest.raises(IndexError_, match="format"):
            validate_replication_manifest(manifest)


# -- the syncer --------------------------------------------------------------

class TestReplicaSyncer:
    def test_flat_round_trip_byte_identical(self, tmp_path):
        primary = make_primary(tmp_path / "p")
        syncer = ReplicaSyncer(DirectorySource(tmp_path / "p"),
                               tmp_path / "r")
        report = syncer.sync_once()
        assert report.changed
        assert report.pulled_segments >= 1
        assert report.local_generation == 8
        assert committed_state(tmp_path / "r") == \
            committed_state(tmp_path / "p")
        assert verify_directory(tmp_path / "r").ok

    def test_second_sync_is_a_noop(self, tmp_path):
        primary = make_primary(tmp_path / "p")
        syncer = ReplicaSyncer(DirectorySource(tmp_path / "p"),
                               tmp_path / "r")
        syncer.sync_once()
        report = syncer.sync_once()
        assert not report.changed
        assert report.pulled_segments == 0

    def test_incremental_pull_and_generation_bump(self, tmp_path):
        primary = make_primary(tmp_path / "p")
        syncer = ReplicaSyncer(DirectorySource(tmp_path / "p"),
                               tmp_path / "r")
        syncer.sync_once()
        replica = SegmentedIndex.open(tmp_path / "r")
        syncer.attach_index(replica)
        generation = replica.generation

        primary.add(doc(100))
        primary.flush(last_change_id=9)
        report = syncer.sync_once()
        assert report.changed
        assert replica.generation > generation  # content change: caches drop
        assert replica.has_document(100)
        assert ranked_names(replica) == ranked_names(primary)

    def test_merge_only_change_keeps_generation(self, tmp_path):
        primary = make_primary(tmp_path / "p")
        primary.add(doc(50))
        primary.flush(last_change_id=9)  # two segments now
        syncer = ReplicaSyncer(DirectorySource(tmp_path / "p"),
                               tmp_path / "r")
        syncer.sync_once()
        replica = SegmentedIndex.open(tmp_path / "r")
        syncer.attach_index(replica)
        generation = replica.generation
        before = ranked_names(replica)

        assert primary.maybe_merge(TieredMergePolicy(max_per_tier=1))
        report = syncer.sync_once()
        assert not report.changed  # physical swap, same last_change_id
        assert replica.generation == generation  # warm caches survive
        assert replica.segment_count == primary.segment_count == 1
        assert ranked_names(replica) == before

    def test_sharded_round_trip(self, tmp_path):
        primary = make_primary(tmp_path / "p", shards=2)
        syncer = ReplicaSyncer(DirectorySource(tmp_path / "p"),
                               tmp_path / "r")
        report = syncer.sync_once()
        assert report.changed
        assert committed_state(tmp_path / "r") == \
            committed_state(tmp_path / "p")
        replica = open_segment_index(tmp_path / "r")
        assert replica.shard_count == 2
        assert sorted(d.doc_id for d in replica.documents()) == \
            sorted(d.doc_id for d in primary.documents())
        assert verify_directory(tmp_path / "r").ok

    def test_refuses_layout_mismatch(self, tmp_path):
        flat = make_primary(tmp_path / "flat")
        sharded = make_primary(tmp_path / "sharded", shards=2)
        ReplicaSyncer(DirectorySource(tmp_path / "flat"),
                      tmp_path / "r1").sync_once()
        with pytest.raises(IndexError_, match="flat"):
            ReplicaSyncer(DirectorySource(tmp_path / "sharded"),
                          tmp_path / "r1").sync_once()
        ReplicaSyncer(DirectorySource(tmp_path / "sharded"),
                      tmp_path / "r2").sync_once()
        with pytest.raises(IndexError_, match="sharded"):
            ReplicaSyncer(DirectorySource(tmp_path / "flat"),
                          tmp_path / "r2").sync_once()

    def test_lag_and_readiness(self, tmp_path):
        primary = make_primary(tmp_path / "p")
        clock = FakeClock()
        syncer = ReplicaSyncer(DirectorySource(tmp_path / "p"),
                               tmp_path / "r", clock=clock)
        assert syncer.lag_seconds() == float("inf")
        assert not syncer.is_ready(max_lag_seconds=30.0)
        syncer.sync_once()
        assert syncer.lag_seconds() == 0.0
        assert syncer.is_ready(max_lag_seconds=30.0)
        assert syncer.lag_operations == 0
        assert syncer.generation == 8
        clock.advance(31.0)
        assert not syncer.is_ready(max_lag_seconds=30.0)

    def test_metrics_registered_and_counted(self, tmp_path):
        primary = make_primary(tmp_path / "p")
        telemetry = Telemetry(enabled=True)
        syncer = ReplicaSyncer(DirectorySource(tmp_path / "p"),
                               tmp_path / "r", telemetry=telemetry)
        syncer.sync_once()
        syncer.sync_once()
        text = telemetry.metrics.to_prometheus_text()
        assert "schemr_replica_lag_seconds" in text
        assert "schemr_replica_generation 8" in text
        assert 'schemr_replica_syncs_total{outcome="changed"} 1' in text
        assert 'schemr_replica_syncs_total{outcome="unchanged"} 1' in text
        assert "schemr_replica_pulled_segments_total 1" in text


# -- torn control files ------------------------------------------------------

class TestTornControlFiles:
    def test_torn_manifest_is_structured(self, tmp_path):
        make_primary(tmp_path / "p")
        manifest = tmp_path / "p" / "MANIFEST.json"
        manifest.write_text('{"next_id": 2, "segm')  # torn mid-write
        with pytest.raises(SegmentDirectoryError) as excinfo:
            SegmentedIndex.open(tmp_path / "p")
        assert excinfo.value.path == str(manifest)
        assert "replica" in str(excinfo.value)  # recovery hint names a path out

    def test_manifest_missing_keys_is_structured(self, tmp_path):
        make_primary(tmp_path / "p")
        (tmp_path / "p" / "MANIFEST.json").write_text('{"format": 1, "next_id": 2}')
        with pytest.raises(SegmentDirectoryError, match="segments"):
            SegmentedIndex.open(tmp_path / "p")

    def test_torn_shards_marker_is_structured(self, tmp_path):
        make_primary(tmp_path / "p", shards=2)
        marker = tmp_path / "p" / SHARDS_NAME
        marker.write_text('{"shards":')
        with pytest.raises(SegmentDirectoryError) as excinfo:
            open_segment_index(tmp_path / "p")
        assert excinfo.value.path == str(marker)
        assert "re-indexing" in str(excinfo.value)


# -- startup orphan sweep ----------------------------------------------------

class TestOrphanSweep:
    def seed_debris(self, tmp_path):
        index = make_primary(tmp_path / "p")
        root = tmp_path / "p"
        (root / "seg_99999999.seg").write_bytes(b"uncommitted segment")
        (root / "seg_00001234.seg.tmp").write_bytes(b"torn write")
        (root / "MANIFEST.json.tmp").write_bytes(b"torn manifest")
        return root

    def test_sweep_removes_debris_and_keeps_committed(self, tmp_path):
        root = self.seed_debris(tmp_path)
        committed = committed_state(root)
        index = SegmentedIndex.open(root, sweep=True)
        assert not (root / "seg_99999999.seg").exists()
        assert not list(root.glob("*.tmp"))
        assert committed_state(root) == committed
        assert index.document_count == 8

    def test_plain_open_leaves_debris(self, tmp_path):
        # Read-only openers (shard workers) must not sweep: a freshly
        # renamed segment is unreferenced until its manifest lands.
        root = self.seed_debris(tmp_path)
        index = SegmentedIndex.open(root)
        assert (root / "seg_99999999.seg").exists()
        assert (root / "MANIFEST.json.tmp").exists()

    def test_verify_reports_debris_as_warnings(self, tmp_path):
        root = self.seed_debris(tmp_path)
        report = verify_directory(root)
        assert report.ok  # debris never fails verification
        assert len(report.warnings) == 3


# -- crash injection ---------------------------------------------------------

#: Writer-side fault sites and whether the mutation commits when the
#: process dies exactly there.  Only past the manifest rename is the
#: new generation durable; everywhere earlier recovery must land on
#: the previous committed state.
WRITER_SITES = [
    ("segments.write.torn", False),
    ("segments.write.pre_rename", False),
    ("segments.flush.pre_commit", False),
    ("segments.manifest.pre_rename", False),
    ("segments.manifest.post_rename", True),
]


class TestCrashInjection:
    @pytest.mark.parametrize("site,committed_after", WRITER_SITES)
    def test_flush_crash_recovers_to_committed(self, tmp_path, site,
                                               committed_after):
        index = make_primary(tmp_path / "p")
        before = committed_state(tmp_path / "p")
        baseline = ranked_names(index)

        FAULTS.inject(site, error=SimulatedCrash(site), times=1)
        index.add(doc(100))
        with pytest.raises(SimulatedCrash):
            index.flush(last_change_id=9)
        FAULTS.reset()

        # The crashed process is gone; recovery is a fresh sweep-open.
        reopened = SegmentedIndex.open(tmp_path / "p", sweep=True)
        assert verify_directory(tmp_path / "p").ok
        if committed_after:
            assert reopened.last_change_id == 9
            assert reopened.has_document(100)
        else:
            assert committed_state(tmp_path / "p") == before
            assert reopened.last_change_id == 8
            assert ranked_names(reopened) == baseline
        # The write-ahead redo: replaying the mutation converges.
        if not committed_after:
            reopened.add(doc(100))
            reopened.flush(last_change_id=9)
        assert reopened.has_document(100)
        assert reopened.last_change_id == 9

    def test_merge_crash_recovers_to_premerge(self, tmp_path):
        index = make_primary(tmp_path / "p")
        index.add(doc(50))
        index.flush(last_change_id=9)
        before = committed_state(tmp_path / "p")
        baseline = ranked_names(index)

        FAULTS.inject("segments.merge.pre_commit",
                      error=SimulatedCrash("merge"), times=1)
        with pytest.raises(SimulatedCrash):
            index.maybe_merge(TieredMergePolicy(max_per_tier=1))
        FAULTS.reset()

        reopened = SegmentedIndex.open(tmp_path / "p", sweep=True)
        assert committed_state(tmp_path / "p") == before
        assert verify_directory(tmp_path / "p").ok
        assert ranked_names(reopened) == baseline
        # Redo converges: the merge applies cleanly on the second try.
        assert reopened.maybe_merge(TieredMergePolicy(max_per_tier=1))
        assert reopened.segment_count == 1
        assert ranked_names(reopened) == baseline

    @pytest.mark.parametrize("site", ["replication.pull.chunk",
                                      "replication.pull.pre_rename",
                                      "replication.pull.pre_commit"])
    def test_pull_crash_keeps_replica_on_committed_generation(
            self, tmp_path, site):
        primary = make_primary(tmp_path / "p")
        syncer = ReplicaSyncer(DirectorySource(tmp_path / "p"),
                               tmp_path / "r")
        syncer.sync_once()
        before = committed_state(tmp_path / "r")

        primary.add(doc(100))
        primary.flush(last_change_id=9)
        FAULTS.inject(site, error=SimulatedCrash(site), times=1)
        with pytest.raises(SimulatedCrash):
            syncer.sync_once()
        FAULTS.reset()

        # The half-pulled generation is invisible: committed state is
        # exactly what the last successful sync left.
        assert committed_state(tmp_path / "r") == before
        replica = SegmentedIndex.open(tmp_path / "r", sweep=False)
        assert replica.last_change_id == 8

        # A fresh syncer (new process) converges byte-identically.
        report = ReplicaSyncer(DirectorySource(tmp_path / "p"),
                               tmp_path / "r").sync_once()
        assert report.changed
        assert committed_state(tmp_path / "r") == \
            committed_state(tmp_path / "p")
        assert verify_directory(tmp_path / "r").ok

    def test_pull_resumes_partial_tmp(self, tmp_path):
        primary = make_primary(tmp_path / "p")
        primary.add(doc(100))
        primary.flush(last_change_id=9)
        FAULTS.inject("replication.pull.chunk",
                      error=SimulatedCrash("torn pull"), times=1)
        with pytest.raises(SimulatedCrash):
            ReplicaSyncer(DirectorySource(tmp_path / "p"),
                          tmp_path / "r").sync_once()
        FAULTS.reset()
        tmps = list((tmp_path / "r").glob("*.tmp"))
        assert tmps and tmps[0].stat().st_size > 0  # evidence to resume
        ReplicaSyncer(DirectorySource(tmp_path / "p"),
                      tmp_path / "r").sync_once()
        assert committed_state(tmp_path / "r") == \
            committed_state(tmp_path / "p")


# -- client failover and backoff ---------------------------------------------

class ScriptedClient(SchemrClient):
    """SchemrClient with the HTTP exchange replaced by a script.

    ``script`` maps endpoint URL to a list of outcomes: an exception to
    raise, or ``(generation, text)`` to succeed with.  The last entry
    repeats forever.
    """

    def __init__(self, script, **kwargs):
        self.script = script
        self.calls: list[str] = []
        self.sleeps: list[float] = []
        kwargs.setdefault("sleep", self.sleeps.append)
        kwargs.setdefault("rng", random.Random(7))
        super().__init__(list(script), **kwargs)

    def _fetch(self, endpoint, path, body):
        self.calls.append(endpoint.url)
        outcomes = self.script[endpoint.url]
        outcome = outcomes.pop(0) if len(outcomes) > 1 else outcomes[0]
        if isinstance(outcome, Exception):
            raise outcome
        generation, text = outcome
        self.last_endpoint = endpoint.url
        if generation is not None:
            endpoint.last_generation = generation
            self.last_generation = generation
        return text

    def get(self, path="/x"):
        return self._request(path)


def down(url: str) -> ServiceError:
    return ServiceError(f"cannot reach {url}: refused")  # status None


class TestClientFailover:
    def test_failover_to_replica_on_connect_failure(self):
        client = ScriptedClient({"http://p": [down("http://p")],
                                 "http://r": [(8, "ok")]},
                                clock=FakeClock())
        assert client.get() == "ok"
        assert client.calls == ["http://p", "http://r"]
        assert client.last_endpoint == "http://r"
        assert client.last_generation == 8

    def test_demoted_primary_is_skipped_then_reprobed(self):
        clock = FakeClock()
        client = ScriptedClient({"http://p": [down("http://p"), (9, "p")],
                                 "http://r": [(8, "r")]},
                                clock=clock, demote_seconds=5.0)
        assert client.get() == "r"
        assert client.get() == "r"  # within the window: replica only
        assert client.calls == ["http://p", "http://r", "http://r"]
        clock.advance(6.0)
        assert client.get() == "p"  # window lapsed: primary re-probed

    def test_prefers_freshest_replica_when_primary_down(self):
        clock = FakeClock()
        client = ScriptedClient({"http://p": [down("http://p")],
                                 "http://r1": [(3, "stale")],
                                 "http://r2": [(9, "fresh")]},
                                clock=clock)
        client._endpoints[1].last_generation = 3
        client._endpoints[2].last_generation = 9
        assert client.get() == "fresh"
        assert client.calls == ["http://p", "http://r2"]

    def test_503_demotes_and_fails_over(self):
        client = ScriptedClient(
            {"http://p": [ServiceError("stale", status=503,
                                       retry_after=1.0)],
             "http://r": [(8, "ok")]},
            clock=FakeClock())
        assert client.get() == "ok"
        assert client.sleeps == []  # a healthy target answered: no backoff

    def test_429_backs_off_honoring_retry_after(self):
        policy = RetryPolicy(attempts=3, base_seconds=0.05,
                             multiplier=4.0, max_seconds=0.5)
        client = ScriptedClient(
            {"http://p": [ServiceError("shed", status=429, retry_after=2.0),
                          ServiceError("shed", status=429, retry_after=0.0),
                          (8, "ok")]},
            clock=FakeClock(), retry_policy=policy)
        assert client.get() == "ok"
        assert len(client.sleeps) == 2
        # Retry-After floors the jittered delay but the cap still holds.
        assert client.sleeps[0] == policy.max_seconds
        assert 0.0 <= client.sleeps[1] <= policy.max_seconds

    def test_exhausted_backoff_surfaces_the_429(self):
        client = ScriptedClient(
            {"http://p": [ServiceError("shed", status=429)]},
            clock=FakeClock(),
            retry_policy=RetryPolicy(attempts=2, base_seconds=0.01,
                                     multiplier=2.0, max_seconds=0.1))
        with pytest.raises(ServiceError) as excinfo:
            client.get()
        assert excinfo.value.status == 429
        assert len(client.sleeps) == 1

    def test_no_retry_policy_surfaces_429_immediately(self):
        # The workload replay driver counts shed requests; backoff
        # would hide them.
        client = ScriptedClient(
            {"http://p": [ServiceError("shed", status=429)]},
            clock=FakeClock(), retry_policy=None)
        with pytest.raises(ServiceError):
            client.get()
        assert client.calls == ["http://p"]
        assert client.sleeps == []

    def test_hard_errors_raise_at_once(self):
        client = ScriptedClient(
            {"http://p": [ServiceError("bad request", status=400)],
             "http://r": [(8, "never")]},
            clock=FakeClock())
        with pytest.raises(ServiceError, match="bad request"):
            client.get()
        assert client.calls == ["http://p"]

    def test_all_down_raises_transport_error(self):
        client = ScriptedClient({"http://p": [down("http://p")],
                                 "http://r": [down("http://r")]},
                                clock=FakeClock(), retry_policy=None)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.get()


class TestRetryAfterParsing:
    def test_parse_forms(self):
        from repro.service.client import _parse_retry_after
        assert _parse_retry_after(None) == 0.0
        assert _parse_retry_after("2") == 2.0
        assert _parse_retry_after("0.5") == 0.5
        assert _parse_retry_after("-3") == 0.0
        assert _parse_retry_after("Wed, 21 Oct 2026") == 0.0


# -- replicated serving over real sockets ------------------------------------

@pytest.fixture
def replicated_pair(tmp_path):
    """A primary and a replica server over one file-backed repository."""
    import urllib.request

    from repro.core.config import SchemrConfig
    from repro.repository.store import SchemaRepository
    from repro.service.server import SchemrServer
    from tests.conftest import (build_clinic_schema,
                                build_conservation_schema, build_hr_schema)

    db = str(tmp_path / "repo.db")
    repo = SchemaRepository(db)
    repo.add_schema(build_clinic_schema())
    repo.add_schema(build_hr_schema())
    repo.add_schema(build_conservation_schema())
    primary = SchemrServer(repo, port=0, config=SchemrConfig(
        telemetry_enabled=True, segment_dir=str(tmp_path / "psegs")))
    primary.start()
    replica_repo = SchemaRepository(db)
    replica = SchemrServer(replica_repo, port=0, config=SchemrConfig(
        telemetry_enabled=True, segment_dir=str(tmp_path / "rsegs"),
        replicate_from=primary.base_url, replica_poll_seconds=0.05))
    replica.start()
    yield primary, replica, urllib.request
    replica.stop()
    primary.stop()
    replica_repo.close()
    repo.close()


class TestReplicatedServing:
    def test_replica_serves_identical_results(self, replicated_pair):
        primary, replica, _ = replicated_pair
        from_primary = SchemrClient(primary.base_url).search("patient height")
        from_replica = SchemrClient(replica.base_url).search("patient height")
        assert [r.schema_id for r in from_primary] == \
            [r.schema_id for r in from_replica]
        assert from_primary[0].score == from_replica[0].score

    def test_replication_endpoints(self, replicated_pair):
        primary, _, urllib_request = replicated_pair
        with urllib_request.urlopen(
                primary.base_url + "/replication/manifest") as response:
            manifest = json.loads(response.read())
        validate_replication_manifest(manifest)
        entry = manifest["dirs"][0]["manifest"]["segments"][0]
        with urllib_request.urlopen(
                f"{primary.base_url}/replication/segment/"
                f"{entry['file']}") as response:
            blob = response.read()
        assert len(blob) == entry["bytes"]

    def test_segment_endpoint_rejects_traversal(self, replicated_pair):
        import urllib.error
        primary, _, urllib_request = replicated_pair
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib_request.urlopen(
                primary.base_url + "/replication/segment/..%2FMANIFEST.json")
        assert excinfo.value.code == 400

    def test_readyz_and_generation_stamps(self, replicated_pair):
        primary, replica, urllib_request = replicated_pair
        for server in (primary, replica):
            with urllib_request.urlopen(server.base_url + "/readyz") as r:
                assert r.status == 200
        client = SchemrClient(replica.base_url)
        client.search("patient height")
        assert client.last_generation == 3  # three schemas committed

    def test_failover_when_primary_dies(self, replicated_pair):
        primary, replica, _ = replicated_pair
        client = SchemrClient([primary.base_url, replica.base_url],
                              retry_policy=None)
        assert client.search("patient height")
        assert client.last_endpoint == primary.base_url
        primary.stop()
        results = client.search("patient height")
        assert results  # zero empty responses across the failover
        assert client.last_endpoint == replica.base_url
