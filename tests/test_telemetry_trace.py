"""Unit tests for the span tracer (nesting, ring buffer, no-op path)."""

import threading

import pytest

from repro.telemetry.trace import NULL_SPAN, SpanTracer


class TestSpanNesting:
    def test_child_spans_attach_to_parent(self):
        tracer = SpanTracer()
        with tracer.span("search") as root:
            with tracer.span("candidates"):
                pass
            with tracer.span("matching"):
                with tracer.span("name_matcher"):
                    pass
        assert [c.name for c in root.children] == ["candidates",
                                                   "matching"]
        assert root.children[1].children[0].name == "name_matcher"

    def test_durations_are_positive_and_nested_not_larger(self):
        tracer = SpanTracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.duration > 0
        assert outer.duration >= inner.duration

    def test_root_span_gets_wall_clock_start(self):
        tracer = SpanTracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                pass
        assert root.started_at > 0
        assert child.started_at == 0.0  # only roots carry wall clock

    def test_attributes_via_kwargs_and_setter(self):
        tracer = SpanTracer()
        with tracer.span("s", phase="one") as span:
            span.set_attribute("hits", 5)
        assert span.attributes == {"phase": "one", "hits": 5}

    def test_find_searches_depth_first(self):
        tracer = SpanTracer()
        with tracer.span("a") as root:
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        assert root.find("c").name == "c"
        assert root.find("nope") is None

    def test_to_dict_is_json_shaped(self):
        tracer = SpanTracer()
        with tracer.span("root", q="x") as root:
            with tracer.span("child"):
                pass
        data = root.to_dict()
        assert data["name"] == "root"
        assert data["attributes"] == {"q": "x"}
        assert data["children"][0]["name"] == "child"
        assert data["children"][0]["duration_ms"] >= 0


class TestRingBuffer:
    def test_only_roots_are_recorded(self):
        tracer = SpanTracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert [s.name for s in tracer.recent()] == ["root"]
        assert tracer.completed_count == 1

    def test_buffer_is_bounded_and_newest_first(self):
        tracer = SpanTracer(buffer_size=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [s.name for s in tracer.recent()] == ["s4", "s3", "s2"]
        assert tracer.completed_count == 5
        assert [s.name for s in tracer.recent(limit=1)] == ["s4"]

    def test_clear_empties_buffer_but_keeps_count(self):
        tracer = SpanTracer()
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.recent() == []
        assert tracer.completed_count == 1

    def test_buffer_size_validated(self):
        with pytest.raises(ValueError, match="buffer_size"):
            SpanTracer(buffer_size=0)


class TestThreadIsolation:
    def test_concurrent_threads_build_independent_trees(self):
        tracer = SpanTracer(buffer_size=16)
        barrier = threading.Barrier(4)

        def work(tag: str):
            barrier.wait()
            for _ in range(20):
                with tracer.span(f"root-{tag}"):
                    with tracer.span(f"child-{tag}"):
                        pass

        threads = [threading.Thread(target=work, args=(str(i),))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tracer.completed_count == 80
        # Every recorded root's children carry its own tag: no
        # cross-thread interleaving.
        for root in tracer.recent():
            tag = root.name.removeprefix("root-")
            assert all(c.name == f"child-{tag}" for c in root.children)


class TestDisabledTracer:
    def test_disabled_span_is_shared_noop(self):
        tracer = SpanTracer(enabled=False)
        span = tracer.span("anything", attr=1)
        assert span is NULL_SPAN
        with span as inner:
            inner.set_attribute("k", "v")  # swallowed
        assert tracer.recent() == []
        assert tracer.completed_count == 0


class TestInjectableWallClock:
    def test_root_span_uses_injected_wall_clock(self):
        tracer = SpanTracer(wall_clock=lambda: 1234.5)
        with tracer.span("search") as root:
            with tracer.span("child") as child:
                pass
        assert root.started_at == 1234.5
        assert child.started_at == 0.0  # only roots are stamped

    def test_default_wall_clock_is_real_time(self):
        import time
        before = time.time()
        tracer = SpanTracer()
        with tracer.span("search") as root:
            pass
        assert before <= root.started_at <= time.time()
