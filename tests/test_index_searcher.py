"""Unit tests for repro.index.searcher (candidate extraction)."""

import pytest

from repro.errors import QueryError
from repro.index.documents import Document, document_from_schema
from repro.index.inverted import InvertedIndex
from repro.index.scoring import TfIdfScorer
from repro.index.searcher import IndexSearcher

from tests.conftest import (
    build_clinic_schema,
    build_conservation_schema,
    build_hr_schema,
)


@pytest.fixture
def corpus_index() -> InvertedIndex:
    index = InvertedIndex()
    for i, builder in enumerate([build_clinic_schema, build_hr_schema,
                                 build_conservation_schema], start=1):
        schema = builder()
        schema.schema_id = i
        index.add(document_from_schema(schema))
    return index


class TestSearch:
    def test_relevant_document_ranks_first(self, corpus_index,
                                           paper_keywords):
        searcher = IndexSearcher(corpus_index)
        hits = searcher.search(paper_keywords, top_n=3)
        assert hits[0].doc_id == 1  # the clinic schema
        assert hits[0].title == "clinic_emr"

    def test_scores_descend(self, corpus_index, paper_keywords):
        searcher = IndexSearcher(corpus_index)
        hits = searcher.search(paper_keywords, top_n=10)
        scores = [hit.score for hit in hits]
        assert scores == sorted(scores, reverse=True)

    def test_top_n_caps_results(self, corpus_index):
        searcher = IndexSearcher(corpus_index)
        hits = searcher.search(["name"], top_n=1)
        assert len(hits) == 1

    def test_no_match_returns_empty(self, corpus_index):
        searcher = IndexSearcher(corpus_index)
        assert searcher.search(["zzzzz"], top_n=5) == []

    def test_morphological_variant_matches(self, corpus_index):
        """The index stems, so 'patients' finds 'patient'."""
        searcher = IndexSearcher(corpus_index)
        hits = searcher.search(["patients"], top_n=3)
        assert hits and hits[0].doc_id == 1

    def test_empty_query_raises(self, corpus_index):
        searcher = IndexSearcher(corpus_index)
        with pytest.raises(QueryError):
            searcher.search([], top_n=5)

    def test_stopword_only_query_raises(self, corpus_index):
        searcher = IndexSearcher(corpus_index)
        with pytest.raises(QueryError, match="empty after analysis"):
            searcher.search(["the", "of"], top_n=5)

    def test_bad_top_n_raises(self, corpus_index):
        searcher = IndexSearcher(corpus_index)
        with pytest.raises(QueryError):
            searcher.search(["patient"], top_n=0)

    def test_matched_terms_counted(self, corpus_index, paper_keywords):
        searcher = IndexSearcher(corpus_index)
        hits = searcher.search(paper_keywords, top_n=1)
        assert hits[0].matched_terms == 4

    def test_partial_match_preserves_recall(self, corpus_index):
        """Candidate extraction must not be conjunctive: a document
        matching only some terms still returns."""
        searcher = IndexSearcher(corpus_index)
        hits = searcher.search(["salary", "zzz_nonsense"], top_n=5)
        assert any(hit.doc_id == 2 for hit in hits)

    def test_coordination_changes_ranking(self):
        """A doc matching both terms beats a doc matching one twice when
        coordination is on."""
        index = InvertedIndex()
        index.add(Document(1, "both", terms=["alpha", "beta"]))
        index.add(Document(2, "one", terms=["alpha", "alpha"]))
        with_coord = IndexSearcher(index, use_coordination=True)
        hits = with_coord.search(["alpha", "beta"], top_n=2)
        assert hits[0].doc_id == 1

    def test_searcher_exposes_scorer(self, corpus_index):
        searcher = IndexSearcher(corpus_index)
        assert isinstance(searcher.scorer, TfIdfScorer)
        assert searcher.index is corpus_index

    def test_search_agrees_with_scorer(self, corpus_index, paper_keywords):
        """Heap-accumulated scores equal direct per-document scoring."""
        searcher = IndexSearcher(corpus_index)
        hits = searcher.search(paper_keywords, top_n=5)
        analyzed = searcher.analyze_query(paper_keywords)
        for hit in hits:
            assert hit.score == pytest.approx(
                searcher.scorer.score(analyzed, hit.doc_id))
