"""Unit tests for mapping derivation, storage and provenance."""

import pytest

from repro.errors import MatchError, RepositoryError
from repro.mapping.derive import derive_mapping
from repro.mapping.store import (
    load_mappings,
    provenance_of,
    record_provenance,
    reuse_statistics,
    save_mapping,
)
from repro.matching.base import SimilarityMatrix
from repro.repository.store import SchemaRepository

from tests.conftest import build_clinic_schema, build_hr_schema


def make_matrix() -> SimilarityMatrix:
    matrix = SimilarityMatrix(
        ["kw:height", "kw:gender", "kw:ghost"],
        ["patient.height", "patient.gender", "doctor.gender"])
    matrix.set("kw:height", "patient.height", 0.9)
    matrix.set("kw:gender", "patient.gender", 0.8)
    matrix.set("kw:gender", "doctor.gender", 0.7)
    matrix.set("kw:ghost", "patient.height", 0.3)
    return matrix


class TestDeriveMapping:
    def test_greedy_one_to_one(self):
        mapping = derive_mapping(make_matrix())
        assert mapping.size == 2
        assert mapping.target_of("kw:height") == "patient.height"
        assert mapping.target_of("kw:gender") == "patient.gender"

    def test_each_column_used_once(self):
        matrix = SimilarityMatrix(["a", "b"], ["x"])
        matrix.set("a", "x", 0.9)
        matrix.set("b", "x", 0.8)
        mapping = derive_mapping(matrix)
        assert mapping.size == 1
        assert mapping.target_of("a") == "x"
        assert mapping.target_of("b") is None

    def test_threshold_filters_weak_pairs(self):
        mapping = derive_mapping(make_matrix(), threshold=0.85)
        assert mapping.size == 1

    def test_confidence_recorded(self):
        mapping = derive_mapping(make_matrix())
        heights = [c for c in mapping.correspondences
                   if c.source_element == "kw:height"]
        assert heights[0].confidence == pytest.approx(0.9)
        assert 0.8 < mapping.mean_confidence() <= 0.9

    def test_bad_threshold_rejected(self):
        with pytest.raises(MatchError):
            derive_mapping(make_matrix(), threshold=0.0)

    def test_empty_matrix(self):
        mapping = derive_mapping(SimilarityMatrix(["a"], ["x"]))
        assert mapping.size == 0
        assert mapping.mean_confidence() == 0.0

    def test_from_real_search(self, small_repository, paper_keywords):
        """End-to-end: derive the mapping from an actual search result's
        matrix via the ensemble."""
        from repro.matching.ensemble import MatcherEnsemble
        from repro.model.query import QueryGraph
        engine = small_repository.engine()
        top = engine.search(keywords=paper_keywords)[0]
        schema = small_repository.get_schema(top.schema_id)
        query = QueryGraph.build(keywords=paper_keywords)
        combined = MatcherEnsemble.default().match(query, schema).combined
        mapping = derive_mapping(combined, source_name="paper-query",
                                 target_name=schema.name)
        assert mapping.target_of("kw:height") == "patient.height"
        assert mapping.target_of("kw:diagnosis") == "case.diagnosis"


class TestMappingStore:
    @pytest.fixture
    def repo(self):
        repo = SchemaRepository.in_memory()
        repo.add_schema(build_clinic_schema())
        repo.add_schema(build_hr_schema())
        yield repo
        repo.close()

    def test_save_load_roundtrip(self, repo):
        mapping = derive_mapping(make_matrix(), source_name="draft")
        mapping_id = save_mapping(repo, mapping, target_schema_id=1)
        assert mapping_id >= 1
        loaded = load_mappings(repo, target_schema_id=1)
        assert len(loaded) == 1
        assert loaded[0].source_name == "draft"
        assert loaded[0].target_of("kw:height") == "patient.height"

    def test_save_against_missing_schema_rejected(self, repo):
        mapping = derive_mapping(make_matrix())
        with pytest.raises(RepositoryError):
            save_mapping(repo, mapping, target_schema_id=99)

    def test_mappings_isolated_per_target(self, repo):
        save_mapping(repo, derive_mapping(make_matrix()), 1)
        assert load_mappings(repo, 2) == []


class TestProvenance:
    @pytest.fixture
    def repo(self):
        repo = SchemaRepository.in_memory()
        repo.add_schema(build_clinic_schema())   # id 1 (origin)
        repo.add_schema(build_hr_schema())       # id 2 (new design)
        yield repo
        repo.close()

    def test_record_and_read(self, repo):
        record_provenance(repo, schema_id=2,
                          element_path="employee.first_name",
                          origin_schema_id=1,
                          origin_element="patient.name")
        records = provenance_of(repo, 2)
        assert len(records) == 1
        assert records[0].origin_element == "patient.name"

    def test_missing_schema_rejected(self, repo):
        with pytest.raises(RepositoryError):
            record_provenance(repo, 99, "x.y", 1, "patient.name")
        with pytest.raises(RepositoryError):
            record_provenance(repo, 2, "x.y", 99, "patient.name")

    def test_reuse_statistics(self, repo):
        for element in ("patient.name", "patient.gender",
                        "patient.height"):
            record_provenance(repo, 2, f"employee.{element.split('.')[1]}",
                              1, element)
        stats = reuse_statistics(repo)
        assert stats == {1: 3}

    def test_reuse_statistics_empty(self, repo):
        assert reuse_statistics(repo) == {}
