"""Telemetry wired through the engine, caches, and indexer.

These tests drive the real pipeline (repository -> indexer -> engine)
with telemetry enabled and assert what lands in the registry, the span
ring, the profile log, and the history sink.
"""

import threading

import pytest

from repro.core.config import SchemrConfig
from repro.core.pipeline import PHASE_CANDIDATES, PHASE_MATCHING
from repro.errors import QueryError
from repro.matching.profile import ProfileStore
from repro.repository.store import SchemaRepository
from repro.telemetry import (
    EMPTY_NO_INDEX_HITS,
    EMPTY_OFFSET_BEYOND,
    SearchHistorySink,
    Telemetry,
)

from tests.conftest import build_clinic_schema, build_hr_schema


@pytest.fixture
def telemetry_engine(small_repository):
    engine = small_repository.engine(
        config=SchemrConfig(telemetry_enabled=True))
    yield engine
    engine.close()


class TestEngineInstrumentation:
    def test_search_populates_metrics(self, telemetry_engine):
        telemetry_engine.search(keywords="patient height")
        telemetry_engine.search(keywords="salary")
        snap = telemetry_engine.telemetry.metrics.snapshot()
        assert snap.value("schemr_searches_total") == 2
        assert snap.find("schemr_search_seconds").count == 2
        assert snap.find("schemr_phase_seconds",
                         phase=PHASE_MATCHING).count == 2
        assert snap.find("schemr_phase1_candidates").count == 2
        assert snap.value("schemr_results_total") > 0
        assert snap.value("schemr_index_documents") == 3

    def test_search_produces_span_tree(self, telemetry_engine):
        telemetry_engine.search(keywords="patient")
        roots = telemetry_engine.telemetry.tracer.recent()
        assert [s.name for s in roots] == ["search"]
        assert roots[0].find(PHASE_CANDIDATES) is not None
        assert roots[0].find(PHASE_MATCHING) is not None
        assert roots[0].duration > 0

    def test_profile_records_pipeline_shape(self, telemetry_engine):
        results = telemetry_engine.search(keywords="patient height",
                                          top_n=2)
        profile = telemetry_engine.last_profile
        assert profile is not None
        assert "patient" in profile.query_terms
        assert profile.candidate_count >= len(results)
        assert profile.result_count == len(results)
        assert profile.top_n == 2
        assert profile.strategy in ("naive", "packed", "pruned")
        assert profile.total_seconds > 0
        assert profile.empty_reason is None
        assert telemetry_engine.telemetry.profiles.total_count == 1

    def test_repeat_query_is_a_cache_hit(self, telemetry_engine):
        telemetry_engine.search(keywords="patient height")
        assert telemetry_engine.last_profile.cache_hit is False
        telemetry_engine.search(keywords="patient height")
        assert telemetry_engine.last_profile.cache_hit is True
        snap = telemetry_engine.telemetry.metrics.snapshot()
        assert snap.value("schemr_query_cache_hits_total") == 1
        assert snap.value("schemr_phase1_queries_total", cache="hit") == 1
        assert snap.value("schemr_phase1_queries_total", cache="miss") == 1

    def test_empty_reason_no_index_hits(self, telemetry_engine):
        assert telemetry_engine.search(keywords="qqqzzzxxx") == []
        assert telemetry_engine.last_profile.empty_reason \
            == EMPTY_NO_INDEX_HITS
        snap = telemetry_engine.telemetry.metrics.snapshot()
        assert snap.value("schemr_empty_results_total",
                          reason=EMPTY_NO_INDEX_HITS) == 1

    def test_empty_reason_offset_beyond_results(self, telemetry_engine):
        assert telemetry_engine.search(keywords="patient height",
                                       offset=500) == []
        assert telemetry_engine.last_profile.empty_reason \
            == EMPTY_OFFSET_BEYOND

    def test_slow_query_threshold_from_config(self, small_repository):
        # A threshold below any realistic latency: every search is slow.
        engine = small_repository.engine(config=SchemrConfig(
            telemetry_enabled=True, slow_query_seconds=1e-9))
        try:
            engine.search(keywords="patient")
            telemetry = engine.telemetry
            assert telemetry.profiles.slow_count == 1
            assert telemetry.metrics.snapshot().value(
                "schemr_slow_queries_total") == 1
        finally:
            engine.close()

    def test_history_sink_wired_through_config(self, small_repository,
                                               tmp_path):
        path = tmp_path / "searches.jsonl"
        engine = small_repository.engine(config=SchemrConfig(
            telemetry_enabled=True, history_path=str(path)))
        try:
            results = engine.search(keywords="patient height")
        finally:
            engine.close()  # owns the sink: close flushes it
        records = SearchHistorySink.load(path)
        assert len(records) == 1
        assert records[0].results[0]["schema_id"] == results[0].schema_id
        assert records[0].total_seconds > 0

    def test_concurrent_searches_count_exactly(self, telemetry_engine):
        barrier = threading.Barrier(4)

        def work():
            barrier.wait()
            for _ in range(10):
                telemetry_engine.search(keywords="patient height gender")

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        telemetry = telemetry_engine.telemetry
        assert telemetry.metrics.snapshot().value(
            "schemr_searches_total") == 40
        assert telemetry.profiles.total_count == 40
        assert telemetry.tracer.completed_count == 40


class TestDisabledTelemetry:
    def test_disabled_engine_records_nothing_but_still_profiles(
            self, small_repository):
        engine = small_repository.engine()  # telemetry off by default
        try:
            engine.search(keywords="qqqzzzxxx")
            telemetry = engine.telemetry
            assert telemetry.enabled is False
            assert telemetry.metrics.snapshot().samples == []
            assert telemetry.tracer.recent() == []
            assert telemetry.profiles.total_count == 0
            # The empty-reason diagnosis works without telemetry.
            assert engine.last_profile.empty_reason == EMPTY_NO_INDEX_HITS
        finally:
            engine.close()

    def test_disabled_facade_has_no_history_sink(self, tmp_path):
        telemetry = Telemetry(enabled=False,
                              history_path=str(tmp_path / "h.jsonl"))
        assert telemetry.history is None
        telemetry.close()  # no-op


class TestCacheCounters:
    def test_profile_store_hit_miss_eviction_counters(self):
        repo = SchemaRepository.in_memory()
        store = ProfileStore(repo, capacity=2)
        ids = [repo.add_schema(build_clinic_schema(f"clinic_{i}"))
               for i in range(3)]
        store.get_profile(ids[0])
        assert (store.hits, store.misses) == (0, 1)
        store.get_profile(ids[0])
        assert (store.hits, store.misses) == (1, 1)
        assert store.hit_rate == pytest.approx(0.5)
        store.get_profile(ids[1])
        store.get_profile(ids[2])  # capacity 2: evicts ids[0]
        assert store.evictions == 1
        repo.close()

    def test_segment_gauges_exposed(self, tmp_path):
        """A segment-backed engine registers the schemr_segment_*
        gauges; an in-memory one does not."""
        repo = SchemaRepository.in_memory()
        repo.add_schema(build_clinic_schema())
        engine = repo.engine(config=SchemrConfig(
            telemetry_enabled=True, segment_dir=str(tmp_path / "seg")))
        try:
            engine.search(keywords="patient")
            snap = engine.telemetry.metrics.snapshot()
            assert snap.value("schemr_segment_count") >= 1
            assert snap.value("schemr_segment_mmap_bytes") > 0
            assert snap.value("schemr_segment_delta_docs") == 0
            assert snap.value("schemr_segment_deleted_docs") == 0
        finally:
            engine.close()
            repo.close()

    def test_segment_merge_metrics(self, tmp_path):
        repo = SchemaRepository.in_memory()
        repo.add_schema(build_clinic_schema())
        engine = repo.engine(config=SchemrConfig(
            telemetry_enabled=True, segment_dir=str(tmp_path / "seg")))
        try:
            repo.add_schema(build_hr_schema())
            repo.reindex()  # flush happens in the same refresh loop
            snap = engine.telemetry.metrics.snapshot()
            # Two tiny segments are below every merge threshold, so
            # merge counters exist but stay at zero.
            assert snap.value("schemr_segment_count") == 2
            assert snap.value("schemr_segment_merges_total") == 0
        finally:
            engine.close()
            repo.close()

    def test_indexer_refresh_metrics(self):
        repo = SchemaRepository.in_memory()
        repo.add_schema(build_clinic_schema())
        engine = repo.engine(config=SchemrConfig(telemetry_enabled=True))
        try:
            repo.add_schema(build_hr_schema())
            repo.reindex()  # same indexer instance: telemetry still wired
            snap = engine.telemetry.metrics.snapshot()
            assert snap.value("schemr_indexer_refreshes_total") >= 2
            assert snap.value("schemr_indexer_ops_applied_total") >= 2
            assert snap.find("schemr_indexer_refresh_seconds").count >= 2
            assert snap.value("schemr_indexer_generation_bumps_total") >= 2
        finally:
            engine.close()
            repo.close()


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"slow_query_seconds": 0.0},
        {"slow_query_seconds": -1.0},
        {"trace_buffer_size": 0},
        {"profile_buffer_size": 0},
    ])
    def test_bad_telemetry_knobs_rejected(self, kwargs):
        with pytest.raises(QueryError):
            SchemrConfig(**kwargs)
