"""Unit tests for the offline repository indexer."""

import threading

from repro.matching.profile import ProfileStore
from repro.repository.indexer import RepositoryIndexer
from repro.repository.store import SchemaRepository

from tests.conftest import build_clinic_schema, build_hr_schema


class TestRefresh:
    def test_initial_refresh_indexes_everything(self):
        with SchemaRepository.in_memory() as repo:
            repo.add_schema(build_clinic_schema())
            repo.add_schema(build_hr_schema())
            indexer = RepositoryIndexer(repo)
            applied = indexer.refresh()
            assert applied == 2
            assert indexer.index.document_count == 2

    def test_refresh_is_incremental(self):
        with SchemaRepository.in_memory() as repo:
            repo.add_schema(build_clinic_schema())
            indexer = RepositoryIndexer(repo)
            indexer.refresh()
            assert indexer.refresh() == 0  # nothing new
            repo.add_schema(build_hr_schema())
            assert indexer.refresh() == 1

    def test_update_reindexes(self):
        with SchemaRepository.in_memory() as repo:
            schema = build_clinic_schema()
            schema_id = repo.add_schema(schema)
            indexer = RepositoryIndexer(repo)
            indexer.refresh()
            schema.name = "renamed_clinic"
            repo.update_schema(schema)
            indexer.refresh()
            assert indexer.index.document(schema_id).title == \
                "renamed_clinic"

    def test_delete_removes_document(self):
        with SchemaRepository.in_memory() as repo:
            schema_id = repo.add_schema(build_clinic_schema())
            indexer = RepositoryIndexer(repo)
            indexer.refresh()
            repo.delete_schema(schema_id)
            indexer.refresh()
            assert indexer.index.document_count == 0

    def test_add_then_delete_between_refreshes_collapses(self):
        with SchemaRepository.in_memory() as repo:
            indexer = RepositoryIndexer(repo)
            schema_id = repo.add_schema(build_clinic_schema())
            repo.delete_schema(schema_id)
            applied = indexer.refresh()
            assert indexer.index.document_count == 0
            assert applied == 0

    def test_multiple_updates_collapse_to_one_operation(self):
        with SchemaRepository.in_memory() as repo:
            schema = build_clinic_schema()
            repo.add_schema(schema)
            indexer = RepositoryIndexer(repo)
            indexer.refresh()
            for name in ("a", "b", "c"):
                schema.name = name
                repo.update_schema(schema)
            assert indexer.refresh() == 1
            assert indexer.index.document(schema.schema_id).title == "c"


class TestProfileSync:
    """The changelog-driven refresh keeps the profile cache honest."""

    def test_refresh_builds_profiles_eagerly(self):
        with SchemaRepository.in_memory() as repo:
            schema_id = repo.add_schema(build_clinic_schema())
            store = ProfileStore(repo)
            indexer = RepositoryIndexer(repo, profile_store=store)
            indexer.refresh()
            assert schema_id in store  # built before any query asks

    def test_update_via_changelog_refreshes_profile(self):
        with SchemaRepository.in_memory() as repo:
            schema = build_clinic_schema()
            schema_id = repo.add_schema(schema)
            store = ProfileStore(repo)
            indexer = RepositoryIndexer(repo, profile_store=store)
            indexer.refresh()
            old_paths = store.get_profile(schema_id).element_paths

            from repro.model.elements import Attribute, Entity
            schema.add_entity(Entity("lab_result", [
                Attribute("id", "INTEGER", primary_key=True),
                Attribute("value", "DECIMAL(8,2)"),
            ]))
            repo.update_schema(schema)
            indexer.refresh()
            new_paths = store.get_profile(schema_id).element_paths
            assert new_paths != old_paths
            assert "lab_result.value" in new_paths
            # The cached schema moved in step with the profile.
            assert "lab_result" in store.get_schema(schema_id).entities

    def test_delete_via_changelog_drops_profile(self):
        with SchemaRepository.in_memory() as repo:
            schema_id = repo.add_schema(build_clinic_schema())
            store = ProfileStore(repo)
            indexer = RepositoryIndexer(repo, profile_store=store)
            indexer.refresh()
            repo.delete_schema(schema_id)
            indexer.refresh()
            assert schema_id not in store

    def test_repository_crud_invalidates_lazily_cached_entries(self):
        """The repository's own mutation methods invalidate the shared
        store immediately — a stale schema is never served, even before
        the next indexer refresh."""
        with SchemaRepository.in_memory() as repo:
            schema = build_clinic_schema()
            schema_id = repo.add_schema(schema)
            store = repo.profile_store()
            store.get_profile(schema_id)  # lazily cached
            schema.name = "renamed_clinic"
            repo.update_schema(schema)
            assert schema_id not in store
            assert store.get_schema(schema_id).name == "renamed_clinic"
            repo.delete_schema(schema_id)
            assert schema_id not in store

    def test_engine_search_sees_post_update_state(self):
        with SchemaRepository.in_memory() as repo:
            schema = build_clinic_schema()
            repo.add_schema(schema)
            engine = repo.engine()
            assert engine.search(keywords="patient height")[0].name == \
                "clinic_emr"
            schema.name = "renamed_clinic"
            repo.update_schema(schema)
            engine = repo.engine()  # refreshes index + profiles
            assert engine.search(keywords="patient height")[0].name == \
                "renamed_clinic"

    def test_rebuild_repopulates_profiles(self):
        with SchemaRepository.in_memory() as repo:
            a = repo.add_schema(build_clinic_schema())
            b = repo.add_schema(build_hr_schema())
            store = ProfileStore(repo)
            indexer = RepositoryIndexer(repo, profile_store=store)
            indexer.rebuild()
            assert a in store and b in store


class TestRebuild:
    def test_rebuild_from_scratch(self):
        with SchemaRepository.in_memory() as repo:
            repo.add_schema(build_clinic_schema())
            repo.add_schema(build_hr_schema())
            indexer = RepositoryIndexer(repo)
            count = indexer.rebuild()
            assert count == 2
            assert indexer.refresh() == 0  # cursor advanced by rebuild


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        with SchemaRepository.in_memory() as repo:
            repo.add_schema(build_clinic_schema())
            indexer = RepositoryIndexer(repo)
            indexer.refresh()
            path = tmp_path / "segment.jsonl"
            indexer.save(path)

            fresh = RepositoryIndexer(repo)
            fresh.load(path)
            assert fresh.index.document_count == 1
            # Cursor advanced to head: no replay of old changes.
            assert fresh.refresh() == 0
            # New changes still picked up.
            repo.add_schema(build_hr_schema())
            assert fresh.refresh() == 1


class TestScheduledRuns:
    def test_run_scheduled_with_max_refreshes(self):
        with SchemaRepository.in_memory() as repo:
            repo.add_schema(build_clinic_schema())
            indexer = RepositoryIndexer(repo)
            total = indexer.run_scheduled(interval_seconds=0.001,
                                          max_refreshes=3)
            assert total == 1  # only the initial add existed

    def test_stop_terminates_loop(self):
        with SchemaRepository.in_memory() as repo:
            repo.add_schema(build_clinic_schema())
            indexer = RepositoryIndexer(repo)
            thread = threading.Thread(
                target=indexer.run_scheduled,
                kwargs={"interval_seconds": 0.01})
            thread.start()
            indexer.stop()
            thread.join(timeout=5)
            assert not thread.is_alive()

    def test_concurrent_searches_during_scheduled_refresh(self):
        """Background refreshes must not corrupt concurrent reads.

        The scheduled indexer mutates the live index while a searcher
        iterates postings; batches apply under the index mutation lock
        and searches serialize against whole batches, so every query
        sees a consistent generation — never a half-applied refresh.
        """
        from repro.index.searcher import IndexSearcher

        with SchemaRepository.in_memory() as repo:
            repo.add_schema(build_clinic_schema())
            indexer = RepositoryIndexer(repo)
            indexer.refresh()
            searcher = IndexSearcher(indexer.index)
            errors: list[BaseException] = []

            def run_queries() -> None:
                try:
                    for _ in range(200):
                        hits = searcher.search(
                            ["patient", "height", "gender"], top_n=10)
                        for hit in hits:
                            # Title resolution exercises the doc store
                            # against concurrent replace/remove.
                            assert hit.title
                except BaseException as exc:  # lint: fault-boundary (collected errors re-raised by the asserting thread)
                    errors.append(exc)

            refresher = threading.Thread(
                target=indexer.run_scheduled,
                kwargs={"interval_seconds": 0.0005,
                        "max_refreshes": 500})
            reader = threading.Thread(target=run_queries)
            refresher.start()
            reader.start()
            # Churn the repository while both threads run.
            for i in range(30):
                schema = build_clinic_schema(f"clinic_{i}")
                schema_id = repo.add_schema(schema)
                if i % 3 == 0:
                    repo.delete_schema(schema_id)
                elif i % 3 == 1:
                    schema.name = f"clinic_{i}_renamed"
                    repo.update_schema(schema)
            reader.join(timeout=30)
            indexer.stop()
            refresher.join(timeout=30)
            assert not reader.is_alive() and not refresher.is_alive()
            assert errors == []
            # After a final refresh the searcher sees the end state.
            indexer.refresh()
            hits = searcher.search(["patient"], top_n=100)
            assert len(hits) == indexer.index.document_count
