"""Integration tests for the HTTP service (real sockets, Figure 5 flow)."""

import time
import urllib.request

import pytest

from repro.errors import ServiceError
from repro.service.client import SchemrClient
from repro.service.server import SchemrServer


@pytest.fixture
def running_server(small_repository):
    server = SchemrServer(small_repository)
    server.start()
    yield server
    server.stop()


@pytest.fixture
def client(running_server) -> SchemrClient:
    return SchemrClient(running_server.base_url)


class TestSearchEndpoint:
    def test_keyword_search_roundtrip(self, client):
        results = client.search("patient height gender diagnosis")
        assert results[0].name == "clinic_emr"
        assert results[0].score > 0

    def test_fragment_post(self, client):
        ddl = "CREATE TABLE patient (height DECIMAL, gender CHAR(1));"
        results = client.search(fragment=ddl)
        assert results[0].name == "clinic_emr"

    def test_top_n_parameter(self, client):
        results = client.search("name", top_n=1)
        assert len(results) <= 1

    def test_empty_query_is_client_error(self, client):
        with pytest.raises(ServiceError, match="400"):
            client.search("")

    def test_no_results(self, client):
        assert client.search("qqqzzzxxx") == []


class TestSchemaEndpoint:
    def test_graphml_roundtrip(self, client):
        graph = client.schema_graph(1)
        assert graph.has_node("patient")
        assert graph.graph["name"] == "clinic_emr"

    def test_match_scores_forwarded(self, client):
        graph = client.schema_graph(
            1, match_scores={"patient.height": 0.8})
        assert graph.nodes["patient.height"]["match_score"] == \
            pytest.approx(0.8)

    def test_unknown_schema_404(self, client):
        with pytest.raises(ServiceError, match="404"):
            client.schema_graph(999)

    def test_bad_schema_id_400(self, running_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                f"{running_server.base_url}/schema/notanumber")
        assert excinfo.value.code == 400


class TestServerPlumbing:
    def test_health(self, client):
        assert client.health() is True

    def test_health_false_when_down(self):
        client = SchemrClient("http://127.0.0.1:1")  # nothing listens
        assert client.health() is False

    def test_unknown_route_404(self, running_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{running_server.base_url}/nope")
        assert excinfo.value.code == 404

    def test_running_context_manager(self, small_repository):
        server = SchemrServer(small_repository)
        with server.running() as base_url:
            assert SchemrClient(base_url).health()
        # After exit the port is closed.
        assert not SchemrClient(base_url).health()

    def test_figure5_flow(self, client):
        """The full architecture loop: search -> pick result -> fetch its
        GraphML with the element scores for visual encoding."""
        results = client.search("patient height gender diagnosis")
        top = results[0]
        graph = client.schema_graph(top.schema_id,
                                    match_scores=top.element_scores)
        scored_nodes = [n for n, d in graph.nodes(data=True)
                        if d.get("match_score", 0) > 0]
        assert scored_nodes  # the GUI has something to highlight


class TestObservabilityEndpoints:
    def _get(self, base_url: str, path: str) -> str:
        return urllib.request.urlopen(f"{base_url}{path}").read().decode()

    def test_metrics_scrape_after_search(self, running_server, client):
        client.search("patient height")
        text = self._get(running_server.base_url, "/metrics")
        assert "# TYPE schemr_searches_total counter" in text
        assert "schemr_searches_total 1" in text
        assert "schemr_phase_seconds_bucket" in text
        assert "schemr_index_documents 3" in text

    def test_metrics_content_type_is_text(self, running_server):
        response = urllib.request.urlopen(
            f"{running_server.base_url}/metrics")
        assert response.headers["Content-Type"].startswith("text/plain")

    def test_stats_xml_document(self, running_server, client):
        client.search("patient height")
        xml = self._get(running_server.base_url, "/stats")
        assert xml.startswith('<?xml version="1.0"?>')
        assert '<engine searches="1"' in xml
        assert "<phases>" in xml
        assert '<cache name="query"' in xml

    def test_http_requests_are_measured_with_folded_routes(
            self, running_server, client):
        client.search("patient")
        client.schema_graph(1)
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(f"{running_server.base_url}/nope")
        # The handler measures the request *after* the response body is
        # on the wire, so give its finally block a moment to run.
        deadline = time.time() + 5.0
        while time.time() < deadline:
            snap = running_server.telemetry.metrics.snapshot()
            if snap.value("schemr_http_requests_total",
                          route="<other>", status="404"):
                break
            time.sleep(0.01)
        assert snap.value("schemr_http_requests_total",
                          route="/search", status="200") == 1
        assert snap.value("schemr_http_requests_total",
                          route="/schema/<id>", status="200") == 1
        assert snap.value("schemr_http_requests_total",
                          route="<other>", status="404") == 1
        assert snap.find("schemr_http_request_seconds",
                         route="/search").count == 1

    def test_access_log_opt_in(self, small_repository, caplog):
        server = SchemrServer(small_repository, access_log=True)
        with caplog.at_level("INFO", logger="repro.service.access"):
            with server.running() as base_url:
                urllib.request.urlopen(f"{base_url}/health").read()
                deadline = time.time() + 5.0
                while time.time() < deadline and not caplog.records:
                    time.sleep(0.01)
        messages = [r.getMessage() for r in caplog.records
                    if r.name == "repro.service.access"]
        assert any("GET /health 200" in m for m in messages)

    def test_access_log_off_by_default(self, running_server, caplog):
        with caplog.at_level("INFO", logger="repro.service.access"):
            urllib.request.urlopen(
                f"{running_server.base_url}/health").read()
        assert not [r for r in caplog.records
                    if r.name == "repro.service.access"]

    def test_caller_config_can_disable_telemetry(self, small_repository):
        from repro.core.config import SchemrConfig
        server = SchemrServer(small_repository,
                              config=SchemrConfig(telemetry_enabled=False))
        with server.running() as base_url:
            text = urllib.request.urlopen(
                f"{base_url}/metrics").read().decode()
        assert text == ""


class TestInternalErrorBoundary:
    def test_unexpected_error_returns_500_and_is_logged(
            self, small_repository, caplog):
        """A bug in the engine must produce a 500 *and* a traceback in
        the server log — the silent-500 path was unfixable from the
        access log alone."""
        server = SchemrServer(small_repository)
        engine = server._engine

        def explode(**_kwargs):
            raise RuntimeError("seeded engine bug")

        engine.search = explode
        with caplog.at_level("ERROR", logger="repro.service.server"):
            with server.running() as base_url:
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(
                        f"{base_url}/search?q=patient").read()
        assert excinfo.value.code == 500
        records = [r for r in caplog.records
                   if r.name == "repro.service.server"
                   and "unhandled error" in r.getMessage()]
        assert records, "500 was served without a server-side log"
        assert records[0].exc_info is not None  # full traceback kept
