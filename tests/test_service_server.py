"""Integration tests for the HTTP service (real sockets, Figure 5 flow)."""

import urllib.request

import pytest

from repro.errors import ServiceError
from repro.service.client import SchemrClient
from repro.service.server import SchemrServer


@pytest.fixture
def running_server(small_repository):
    server = SchemrServer(small_repository)
    server.start()
    yield server
    server.stop()


@pytest.fixture
def client(running_server) -> SchemrClient:
    return SchemrClient(running_server.base_url)


class TestSearchEndpoint:
    def test_keyword_search_roundtrip(self, client):
        results = client.search("patient height gender diagnosis")
        assert results[0].name == "clinic_emr"
        assert results[0].score > 0

    def test_fragment_post(self, client):
        ddl = "CREATE TABLE patient (height DECIMAL, gender CHAR(1));"
        results = client.search(fragment=ddl)
        assert results[0].name == "clinic_emr"

    def test_top_n_parameter(self, client):
        results = client.search("name", top_n=1)
        assert len(results) <= 1

    def test_empty_query_is_client_error(self, client):
        with pytest.raises(ServiceError, match="400"):
            client.search("")

    def test_no_results(self, client):
        assert client.search("qqqzzzxxx") == []


class TestSchemaEndpoint:
    def test_graphml_roundtrip(self, client):
        graph = client.schema_graph(1)
        assert graph.has_node("patient")
        assert graph.graph["name"] == "clinic_emr"

    def test_match_scores_forwarded(self, client):
        graph = client.schema_graph(
            1, match_scores={"patient.height": 0.8})
        assert graph.nodes["patient.height"]["match_score"] == \
            pytest.approx(0.8)

    def test_unknown_schema_404(self, client):
        with pytest.raises(ServiceError, match="404"):
            client.schema_graph(999)

    def test_bad_schema_id_400(self, running_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                f"{running_server.base_url}/schema/notanumber")
        assert excinfo.value.code == 400


class TestServerPlumbing:
    def test_health(self, client):
        assert client.health() is True

    def test_health_false_when_down(self):
        client = SchemrClient("http://127.0.0.1:1")  # nothing listens
        assert client.health() is False

    def test_unknown_route_404(self, running_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{running_server.base_url}/nope")
        assert excinfo.value.code == 404

    def test_running_context_manager(self, small_repository):
        server = SchemrServer(small_repository)
        with server.running() as base_url:
            assert SchemrClient(base_url).health()
        # After exit the port is closed.
        assert not SchemrClient(base_url).health()

    def test_figure5_flow(self, client):
        """The full architecture loop: search -> pick result -> fetch its
        GraphML with the element scores for visual encoding."""
        results = client.search("patient height gender diagnosis")
        top = results[0]
        graph = client.schema_graph(top.schema_id,
                                    match_scores=top.element_scores)
        scored_nodes = [n for n, d in graph.nodes(data=True)
                        if d.get("match_score", 0) > 0]
        assert scored_nodes  # the GUI has something to highlight
