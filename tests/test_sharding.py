"""Process-sharded serving: layout, pool, and golden-equivalence tests.

The load-bearing property is *byte-identity*: a ``ShardedEngine``
scatter-gathering over N worker processes must produce exactly the
ranking the single-process ``SchemrEngine`` produces — same pages at
every offset, same scores, same tie-breaks — across shard counts,
paging, fuzzy expansion, delta mutations, and even a worker killed
mid-serving (local repair keeps the bytes; only ``shards_used`` tells
the story).
"""

from __future__ import annotations

import os
import signal
import time
import urllib.request
import xml.etree.ElementTree as ET

import pytest

from repro.core.config import SchemrConfig
from repro.corpus.generator import CorpusGenerator
from repro.errors import IndexError_, QueryError, ServiceError
from repro.index.segments import SegmentedIndex
from repro.index.segments.sharded import (
    ShardedSegmentIndex,
    open_segment_index,
    shard_of,
)
from repro.repository.store import SchemaRepository
from repro.sharding import ShardedEngine, ShardTimeout

QUERIES = [
    ["patient", "name", "address"],
    ["order", "customer", "price"],
    ["temperature", "station"],
    ["loan", "interest", "rate", "account"],
    ["teacher", "course"],
]

CORPUS = 260


def make_config(segment_dir, shards=None, **overrides):
    values = dict(segment_dir=str(segment_dir), candidate_pool=40)
    if shards is not None:
        values["shards"] = shards
    values.update(overrides)
    return SchemrConfig(**values)


@pytest.fixture(scope="module")
def corpus_db(tmp_path_factory):
    root = tmp_path_factory.mktemp("sharding_corpus")
    db = str(root / "repo.db")
    repo = SchemaRepository(db)
    for generated in CorpusGenerator(seed=7).stream(CORPUS,
                                                    include_junk=True):
        repo.add_schema(generated.schema)
    repo.close()
    return db


@pytest.fixture(scope="module")
def golden(corpus_db, tmp_path_factory):
    """Single-process rankings over a flat segment layout."""
    flat_dir = tmp_path_factory.mktemp("flat_baseline")
    repo = SchemaRepository(corpus_db)
    engine = repo.engine(config=make_config(flat_dir / "segments"))
    pages = [engine.search(keywords=q, top_n=10) for q in QUERIES]
    offset_pages = [engine.search(keywords=q, top_n=7, offset=7)
                    for q in QUERIES]
    yield {"pages": pages, "offset_pages": offset_pages}
    engine.close()
    repo.close()


@pytest.fixture
def sharded_engine_factory(corpus_db, tmp_path):
    """Build ShardedEngines (fresh repository handle each — the
    repository indexer is a lazy singleton) and close them after."""
    opened = []

    def build(shards, subdir=None, **overrides):
        repo = SchemaRepository(corpus_db)
        segment_dir = tmp_path / (subdir or f"sharded_{shards}")
        engine = ShardedEngine(
            repo, config=make_config(segment_dir, shards=shards,
                                     **overrides))
        opened.append((engine, repo))
        return engine

    yield build
    for engine, repo in opened:
        engine.close()
        repo.close()


# -- segment layout -----------------------------------------------------------

class TestShardedLayout:
    def test_fresh_directory_defaults_to_flat(self, tmp_path):
        index = open_segment_index(tmp_path / "seg", create=True)
        assert isinstance(index, SegmentedIndex)

    def test_explicit_shards_creates_sharded(self, tmp_path):
        index = open_segment_index(tmp_path / "seg", shards=3, create=True)
        assert isinstance(index, ShardedSegmentIndex)
        assert index.shard_count == 3
        assert (tmp_path / "seg" / "SHARDS.json").exists()

    def test_one_shard_is_still_a_sharded_layout(self, tmp_path):
        index = open_segment_index(tmp_path / "seg", shards=1, create=True)
        assert isinstance(index, ShardedSegmentIndex)
        assert index.shard_count == 1

    def test_marker_wins_on_reopen(self, tmp_path):
        open_segment_index(tmp_path / "seg", shards=2, create=True)
        reopened = open_segment_index(tmp_path / "seg")
        assert isinstance(reopened, ShardedSegmentIndex)
        assert reopened.shard_count == 2

    def test_shard_count_is_fixed_for_life(self, tmp_path):
        open_segment_index(tmp_path / "seg", shards=2, create=True)
        with pytest.raises(IndexError_, match="2 shard"):
            open_segment_index(tmp_path / "seg", shards=4)

    def test_flat_directory_refuses_shards(self, tmp_path):
        open_segment_index(tmp_path / "seg", create=True)
        with pytest.raises(IndexError_, match="single-segment"):
            open_segment_index(tmp_path / "seg", shards=2)

    def test_doc_id_routing(self, tmp_path):
        index = open_segment_index(tmp_path / "seg", shards=3, create=True)
        for doc_id in range(12):
            expected = shard_of(doc_id, 3)
            assert index.shard_for(doc_id) is index.shard(expected)


# -- config validation --------------------------------------------------------

class TestConfigValidation:
    def test_shards_must_be_positive(self):
        with pytest.raises(QueryError, match="shards"):
            SchemrConfig(shards=0)

    def test_shards_require_segment_dir(self):
        with pytest.raises(QueryError, match="segment_dir"):
            SchemrConfig(shards=2)

    def test_shard_timeout_must_be_positive(self, tmp_path):
        with pytest.raises(QueryError, match="shard_timeout"):
            SchemrConfig(segment_dir=str(tmp_path), shards=2,
                         shard_timeout_seconds=0.0)

    def test_engine_rejects_memory_repository(self, tmp_path):
        repo = SchemaRepository()
        with pytest.raises(ServiceError, match="file-backed"):
            ShardedEngine(repo, config=make_config(tmp_path / "seg",
                                                   shards=2))
        repo.close()


# -- golden equivalence -------------------------------------------------------

class TestShardedEquivalence:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_rankings_byte_identical(self, shards, golden,
                                     sharded_engine_factory):
        engine = sharded_engine_factory(shards)
        pages = [engine.search(keywords=q, top_n=10) for q in QUERIES]
        offset_pages = [engine.search(keywords=q, top_n=7, offset=7)
                        for q in QUERIES]
        assert pages == golden["pages"]
        assert offset_pages == golden["offset_pages"]
        profile = engine.last_profile
        assert profile.shards_total == shards
        assert profile.shards_used == shards

    def test_repeat_query_hits_front_cache(self, golden,
                                           sharded_engine_factory):
        engine = sharded_engine_factory(2)
        first = engine.search(keywords=QUERIES[0])
        assert not engine.last_profile.cache_hit
        again = engine.search(keywords=QUERIES[0])
        assert again == first == golden["pages"][0]
        assert engine.last_profile.cache_hit

    def test_fuzzy_expansion_equivalence(self, corpus_db, tmp_path):
        repo_flat = SchemaRepository(corpus_db)
        flat = repo_flat.engine(config=make_config(
            tmp_path / "flat_fuzzy", use_fuzzy_expansion=True))
        repo_sharded = SchemaRepository(corpus_db)
        sharded = ShardedEngine(repo_sharded, config=make_config(
            tmp_path / "sharded_fuzzy", shards=2,
            use_fuzzy_expansion=True))
        try:
            for keywords in (["patiemt", "name"], ["ordr", "customer"]):
                assert sharded.search(keywords=keywords) == \
                    flat.search(keywords=keywords)
        finally:
            sharded.close()
            repo_sharded.close()
            flat.close()
            repo_flat.close()

    def test_delta_mutations_stay_equivalent(self, tmp_path):
        db = str(tmp_path / "mut.db")
        generator = CorpusGenerator(seed=13)
        writer = SchemaRepository(db)
        for generated in generator.stream(120, include_junk=True):
            writer.add_schema(generated.schema)

        repo_flat = SchemaRepository(db)
        flat = repo_flat.engine(config=make_config(tmp_path / "flat"))
        repo_sharded = SchemaRepository(db)
        sharded = ShardedEngine(
            repo_sharded, config=make_config(tmp_path / "sharded",
                                             shards=2))
        try:
            for generated in generator.stream(40):
                writer.add_schema(generated.schema)
            writer.delete_schema(writer.list_schema_ids()[3])
            repo_flat.indexer().refresh()
            repo_sharded.indexer().refresh()
            for keywords in QUERIES:
                assert sharded.search(keywords=keywords) == \
                    flat.search(keywords=keywords)
        finally:
            sharded.close()
            repo_sharded.close()
            flat.close()
            repo_flat.close()
            writer.close()


# -- worker failure and recovery ----------------------------------------------

class TestWorkerFailure:
    def test_killed_worker_keeps_bytes_identical(self, golden,
                                                 sharded_engine_factory):
        engine = sharded_engine_factory(2, subdir="kill_2")
        victim = engine.pool.workers[0]
        os.kill(victim.pid, signal.SIGKILL)
        deadline = time.monotonic() + 5.0
        while victim.process_alive and time.monotonic() < deadline:
            time.sleep(0.01)
        first = engine.search(keywords=QUERIES[0], top_n=10)
        degraded_profile = engine.last_profile
        pages = [first] + [engine.search(keywords=q, top_n=10)
                           for q in QUERIES[1:]]
        assert pages == golden["pages"]
        assert degraded_profile.shards_total == 2
        assert degraded_profile.shards_used < 2

    def test_respawned_worker_serves_again(self, golden,
                                           sharded_engine_factory):
        engine = sharded_engine_factory(2, subdir="respawn_2")
        victim = engine.pool.workers[1]
        os.kill(victim.pid, signal.SIGKILL)
        deadline = time.monotonic() + 5.0
        while victim.process_alive and time.monotonic() < deadline:
            time.sleep(0.01)
        engine.search(keywords=QUERIES[0])  # trips the failure path
        assert engine.pool.usable(1, ready_timeout=5.0)
        assert victim.restarts >= 1
        pages = [engine.search(keywords=q, top_n=10) for q in QUERIES]
        assert pages == golden["pages"]
        assert engine.last_profile.shards_used == 2

    def test_collect_timeout_raises(self, sharded_engine_factory):
        engine = sharded_engine_factory(2, subdir="timeout_2")
        handle = engine.pool.workers[0]
        with pytest.raises(ShardTimeout):
            handle.collect("phase1", 999_999, timeout=0.05)

    def test_close_leaves_no_orphans(self, corpus_db, tmp_path):
        repo = SchemaRepository(corpus_db)
        engine = ShardedEngine(
            repo, config=make_config(tmp_path / "orphans", shards=2))
        pids = [handle.pid for handle in engine.pool.workers]
        engine.close()
        repo.close()
        deadline = time.monotonic() + 3.0
        while time.monotonic() < deadline:
            if not any(_alive(pid) for pid in pids):
                break
            time.sleep(0.05)
        assert not any(_alive(pid) for pid in pids)


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    return True


# -- HTTP service integration -------------------------------------------------

class TestShardedServer:
    @pytest.fixture
    def sharded_server(self, corpus_db, tmp_path):
        from repro.service.server import SchemrServer
        repo = SchemaRepository(corpus_db)
        config = make_config(tmp_path / "server_segments", shards=2,
                             telemetry_enabled=True)
        server = SchemrServer(repo, config=config)
        server.start()
        yield server
        server.stop()
        repo.close()

    def _get(self, base_url: str, path: str) -> tuple[int, str, dict]:
        try:
            with urllib.request.urlopen(base_url + path,
                                        timeout=10) as response:
                return (response.status, response.read().decode(),
                        dict(response.headers))
        except urllib.error.HTTPError as error:
            return error.code, error.read().decode(), dict(error.headers)

    def test_readyz_reports_per_shard_health(self, sharded_server):
        status, body = 0, ""
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            status, body, _ = self._get(sharded_server.base_url, "/readyz")
            if status == 200:
                break
            time.sleep(0.1)
        assert status == 200, body
        root = ET.fromstring(body)
        shards = root.findall("shard")
        assert [s.get("id") for s in shards] == ["0", "1"]
        for shard in shards:
            assert shard.get("state") == "ready"
            assert int(shard.get("pid")) > 0
            assert shard.get("breaker") == "closed"

    def test_search_matches_single_process(self, sharded_server, golden):
        status, body, _ = self._get(
            sharded_server.base_url,
            "/search?keywords=patient+name+address&top=10")
        assert status == 200, body
        root = ET.fromstring(body)
        served = [(int(node.get("schemaId")), node.get("score"))
                  for node in root.findall("result")]
        expected = [(result.schema_id, f"{result.score:.6f}")
                    for result in golden["pages"][0]]
        assert served == expected

    def test_metrics_export_shard_families(self, sharded_server):
        self._get(sharded_server.base_url,
                  "/search?keywords=patient+name")
        status, body, _ = self._get(sharded_server.base_url, "/metrics")
        assert status == 200
        for family in ("schemr_shard_up", "schemr_shard_documents",
                       "schemr_shard_requests_total",
                       "schemr_shard_wait_seconds",
                       "schemr_shard_restarts_total"):
            assert family in body, f"missing {family}"

    def test_stop_tears_down_workers(self, corpus_db, tmp_path):
        from repro.service.server import SchemrServer
        repo = SchemaRepository(corpus_db)
        config = make_config(tmp_path / "stop_segments", shards=2)
        server = SchemrServer(repo, config=config)
        server.start()
        pids = [handle.pid for handle in server.engine.pool.workers]
        server.stop()
        repo.close()
        deadline = time.monotonic() + 3.0
        while time.monotonic() < deadline:
            if not any(_alive(pid) for pid in pids):
                break
            time.sleep(0.05)
        assert not any(_alive(pid) for pid in pids)


# -- CLI ----------------------------------------------------------------------

class TestShardedCli:
    def test_index_builds_sharded_layout(self, corpus_db, tmp_path,
                                         capsys):
        from repro.cli import main
        segment_dir = tmp_path / "cli_segments"
        assert main(["index", corpus_db,
                     "--segment-dir", str(segment_dir),
                     "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "across 2 shard(s)" in out
        assert (segment_dir / "SHARDS.json").exists()
        reopened = open_segment_index(segment_dir)
        assert isinstance(reopened, ShardedSegmentIndex)
        assert reopened.shard_count == 2
        assert reopened.document_count > 0

    def test_index_shards_require_segment_dir(self, corpus_db, capsys):
        from repro.cli import main
        assert main(["index", corpus_db, "--shards", "2"]) == 1
        assert "requires --segment-dir" in capsys.readouterr().err

    def test_serve_flag_fields_cover_sharding(self):
        from repro.cli import SERVE_FLAG_FIELDS
        assert SERVE_FLAG_FIELDS["--shards"] == "shards"
        assert SERVE_FLAG_FIELDS["--shard-timeout"] == \
            "shard_timeout_seconds"
