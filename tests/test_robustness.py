"""Robustness tests: failure injection, concurrency, large inputs."""

import concurrent.futures
import threading

import pytest

from repro.errors import RepositoryError
from repro.model.elements import Attribute, Entity
from repro.model.schema import Schema
from repro.repository.store import SchemaRepository
from repro.service.client import SchemrClient
from repro.service.server import SchemrServer

from tests.conftest import build_clinic_schema, build_hr_schema


class TestCorruptionInjection:
    def test_corrupt_payload_surfaces_as_repository_error(self):
        with SchemaRepository.in_memory() as repo:
            schema_id = repo.add_schema(build_clinic_schema())
            repo.connection.execute(
                "UPDATE schemas SET payload = 'not json' "
                "WHERE schema_id = ?", (schema_id,))
            repo.connection.commit()
            with pytest.raises(RepositoryError, match="corrupt"):
                repo.get_schema(schema_id)

    def test_structurally_invalid_payload_detected(self):
        with SchemaRepository.in_memory() as repo:
            schema_id = repo.add_schema(build_clinic_schema())
            repo.connection.execute(
                "UPDATE schemas SET payload = '{\"description\": \"x\"}' "
                "WHERE schema_id = ?", (schema_id,))
            repo.connection.commit()
            with pytest.raises(RepositoryError, match="corrupt"):
                repo.get_schema(schema_id)


class TestConcurrency:
    def test_concurrent_writers_all_land(self):
        with SchemaRepository.in_memory() as repo:
            def add(i: int) -> int:
                return repo.add_schema(
                    build_clinic_schema(name=f"clinic_{i}"))

            with concurrent.futures.ThreadPoolExecutor(8) as pool:
                ids = list(pool.map(add, range(40)))
            assert len(set(ids)) == 40
            assert repo.schema_count == 40

    def test_search_while_writing(self):
        """The HTTP server searches while another thread imports."""
        repo = SchemaRepository.in_memory()
        repo.add_schema(build_clinic_schema())
        repo.add_schema(build_hr_schema())
        server = SchemrServer(repo)
        errors: list[Exception] = []

        def writer() -> None:
            try:
                for i in range(15):
                    repo.add_schema(
                        build_clinic_schema(name=f"extra_{i}"))
            except Exception as exc:  # lint: fault-boundary (collected errors re-raised by the asserting thread)
                errors.append(exc)

        with server.running() as base_url:
            client = SchemrClient(base_url)
            thread = threading.Thread(target=writer)
            thread.start()
            for _ in range(10):
                results = client.search("patient height gender")
                assert results
            thread.join()
        assert not errors
        assert repo.schema_count == 17
        repo.close()

    def test_concurrent_http_clients(self, small_repository):
        server = SchemrServer(small_repository)
        with server.running() as base_url:
            def query(_: int) -> int:
                client = SchemrClient(base_url)
                return len(client.search("patient height gender"))

            with concurrent.futures.ThreadPoolExecutor(8) as pool:
                counts = list(pool.map(query, range(24)))
            assert all(count >= 1 for count in counts)


class TestLargeInputs:
    def make_wide_schema(self, entities: int = 50,
                         attributes: int = 40) -> Schema:
        schema = Schema(name="wide")
        for i in range(entities):
            schema.add_entity(Entity(f"entity_{i}", [
                Attribute(f"col_{i}_{j}") for j in range(attributes)]))
        return schema

    def test_wide_schema_round_trips_through_repository(self):
        schema = self.make_wide_schema()
        with SchemaRepository.in_memory() as repo:
            schema_id = repo.add_schema(schema)
            loaded = repo.get_schema(schema_id)
            assert loaded.attribute_count == 2000

    def test_wide_schema_searchable(self):
        with SchemaRepository.in_memory() as repo:
            repo.add_schema(self.make_wide_schema())
            engine = repo.engine()
            results = engine.search("entity col")
            assert results and results[0].name == "wide"

    def test_wide_schema_graphml_and_drill(self):
        from repro.model.graph import schema_to_networkx
        from repro.service.graphml import graphml_for_schema, parse_graphml
        from repro.viz.drill import display_subgraph
        schema = self.make_wide_schema(entities=20, attributes=20)
        graph = parse_graphml(graphml_for_schema(schema))
        display = display_subgraph(graph, max_depth=1)
        # Depth cap keeps the display tractable: root + 20 entities.
        assert display.number_of_nodes() == 21
        full = schema_to_networkx(schema)
        assert full.number_of_nodes() == 1 + 20 + 400

    def test_deep_xsd_nesting(self):
        """A 20-level nested XSD parses and stays displayable."""
        from repro.parsers.xsd import parse_xsd
        from repro.model.graph import schema_to_networkx
        from repro.viz.drill import display_subgraph
        inner = '<xs:element name="leaf" type="xs:string"/>'
        for level in reversed(range(20)):
            inner = (f'<xs:element name="level{level}"><xs:complexType>'
                     f'<xs:sequence>{inner}</xs:sequence>'
                     f'</xs:complexType></xs:element>')
        xsd = (f'<xs:schema '
               f'xmlns:xs="http://www.w3.org/2001/XMLSchema">{inner}'
               f'</xs:schema>')
        schema = parse_xsd(xsd)
        assert schema.entity_count == 20
        # Normalization turns the nesting chain into a foreign-key chain.
        assert len(schema.foreign_keys) == 19
        display = display_subgraph(schema_to_networkx(schema))
        # The relational graph is flat (root -> entities -> attributes),
        # so everything fits within the display cap.
        depths = {d["depth"] for _n, d in display.nodes(data=True)}
        assert max(depths) == 2

    def test_pathological_long_identifier(self):
        from repro.matching.name import NameMatcher
        from repro.model.query import QueryGraph
        schema = Schema(name="s")
        schema.add_entity(Entity("t", [Attribute("x" * 500)]))
        query = QueryGraph.build(keywords=["x" * 500])
        matrix = NameMatcher().match(query, schema)
        assert matrix.get(f"kw:{'x' * 500}", f"t.{'x' * 500}") == 1.0


class TestUnicode:
    def test_unicode_schema_round_trip(self):
        schema = Schema(name="observación")
        schema.add_entity(Entity("espèce", [Attribute("nombre_común"),
                                            Attribute("固有種")]))
        with SchemaRepository.in_memory() as repo:
            schema_id = repo.add_schema(schema)
            loaded = repo.get_schema(schema_id)
            assert loaded.entity("espèce").has_attribute("固有種")

    def test_unicode_survives_http(self):
        repo = SchemaRepository.in_memory()
        schema = Schema(name="observación",
                        description="données de terrain")
        schema.add_entity(Entity("espèce", [Attribute("nom")]))
        repo.add_schema(schema)
        server = SchemrServer(repo)
        with server.running() as base_url:
            client = SchemrClient(base_url)
            graph = client.schema_graph(1)
            assert graph.has_node("espèce")
        repo.close()
