"""Unit tests for repro.index.postings."""

from repro.index.postings import Posting, PostingsList


class TestPosting:
    def test_frequency_tracks_positions(self):
        posting = Posting(doc_id=1, positions=[0, 4, 9])
        assert posting.frequency == 3


class TestPostingsList:
    def test_in_order_appends(self):
        plist = PostingsList("patient")
        plist.add(1, 0)
        plist.add(1, 5)
        plist.add(3, 2)
        assert plist.doc_ids() == [1, 3]
        assert plist.get(1).frequency == 2
        assert plist.get(3).frequency == 1

    def test_out_of_order_insert_keeps_sorted(self):
        plist = PostingsList("patient")
        plist.add(5, 0)
        plist.add(2, 0)
        plist.add(8, 0)
        plist.add(2, 1)
        assert plist.doc_ids() == [2, 5, 8]
        assert plist.get(2).frequency == 2

    def test_document_frequency(self):
        plist = PostingsList("x")
        for doc_id in (1, 2, 3):
            plist.add(doc_id, 0)
        assert plist.document_frequency == 3

    def test_collection_frequency(self):
        plist = PostingsList("x")
        plist.add(1, 0)
        plist.add(1, 1)
        plist.add(2, 0)
        assert plist.collection_frequency == 3

    def test_remove_document(self):
        plist = PostingsList("x")
        plist.add(1, 0)
        plist.add(2, 0)
        assert plist.remove_document(1) is True
        assert plist.doc_ids() == [2]
        assert plist.remove_document(1) is False

    def test_get_missing_returns_none(self):
        plist = PostingsList("x")
        plist.add(1, 0)
        assert plist.get(99) is None

    def test_iteration_and_len(self):
        plist = PostingsList("x")
        plist.add(1, 0)
        plist.add(2, 0)
        assert len(plist) == 2
        assert [p.doc_id for p in plist] == [1, 2]

    def test_positions_preserved_in_order(self):
        plist = PostingsList("x")
        for pos in (3, 7, 11):
            plist.add(4, pos)
        assert plist.get(4).positions == [3, 7, 11]


class TestPackedRepresentation:
    """Invariants of the array-backed postings layout."""

    def test_packed_columns_parallel_and_sorted(self):
        plist = PostingsList("x")
        for doc_id, pos in [(7, 0), (2, 0), (7, 1), (4, 0), (2, 1), (2, 2)]:
            plist.add(doc_id, pos)
        assert list(plist.doc_ids_array()) == [2, 4, 7]
        assert list(plist.frequencies_array()) == [3, 1, 2]

    def test_frequency_lookup(self):
        plist = PostingsList("x")
        plist.add(1, 0)
        plist.add(1, 1)
        plist.add(9, 0)
        assert plist.frequency(1) == 2
        assert plist.frequency(9) == 1
        assert plist.frequency(5) == 0

    def test_collection_frequency_is_maintained(self):
        plist = PostingsList("x")
        for doc_id, pos in [(1, 0), (1, 1), (2, 0), (3, 0), (3, 1), (3, 2)]:
            plist.add(doc_id, pos)
        assert plist.collection_frequency == 6
        plist.remove_document(3)
        assert plist.collection_frequency == 3
        plist.remove_document(1)
        assert plist.collection_frequency == 1

    def test_max_frequency_tracks_adds(self):
        plist = PostingsList("x")
        plist.add(1, 0)
        assert plist.max_frequency == 1
        plist.add(2, 0)
        plist.add(2, 1)
        plist.add(2, 2)
        assert plist.max_frequency == 3

    def test_max_frequency_recomputes_after_removing_max(self):
        plist = PostingsList("x")
        for pos in range(5):
            plist.add(1, pos)
        plist.add(2, 0)
        plist.add(2, 1)
        assert plist.max_frequency == 5
        plist.remove_document(1)
        assert plist.max_frequency == 2
        plist.remove_document(2)
        assert plist.max_frequency == 0

    def test_max_frequency_stale_then_add(self):
        """An add while the max is stale must not leave a wrong cache."""
        plist = PostingsList("x")
        for pos in range(4):
            plist.add(1, pos)
        plist.add(2, 0)
        plist.remove_document(1)  # max now stale
        plist.add(3, 0)
        plist.add(3, 1)
        assert plist.max_frequency == 2

    def test_postings_property_materializes_views(self):
        plist = PostingsList("x")
        plist.add(5, 0)
        plist.add(1, 0)
        views = plist.postings
        assert [p.doc_id for p in views] == [1, 5]
        assert all(isinstance(p, Posting) for p in views)

    def test_remove_then_readd(self):
        plist = PostingsList("x")
        plist.add(1, 0)
        plist.add(2, 0)
        plist.remove_document(1)
        plist.add(1, 9)
        assert plist.doc_ids() == [1, 2]
        assert plist.get(1).positions == [9]
        assert plist.collection_frequency == 2
