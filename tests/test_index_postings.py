"""Unit tests for repro.index.postings."""

from repro.index.postings import Posting, PostingsList


class TestPosting:
    def test_frequency_tracks_positions(self):
        posting = Posting(doc_id=1, positions=[0, 4, 9])
        assert posting.frequency == 3


class TestPostingsList:
    def test_in_order_appends(self):
        plist = PostingsList("patient")
        plist.add(1, 0)
        plist.add(1, 5)
        plist.add(3, 2)
        assert plist.doc_ids() == [1, 3]
        assert plist.get(1).frequency == 2
        assert plist.get(3).frequency == 1

    def test_out_of_order_insert_keeps_sorted(self):
        plist = PostingsList("patient")
        plist.add(5, 0)
        plist.add(2, 0)
        plist.add(8, 0)
        plist.add(2, 1)
        assert plist.doc_ids() == [2, 5, 8]
        assert plist.get(2).frequency == 2

    def test_document_frequency(self):
        plist = PostingsList("x")
        for doc_id in (1, 2, 3):
            plist.add(doc_id, 0)
        assert plist.document_frequency == 3

    def test_collection_frequency(self):
        plist = PostingsList("x")
        plist.add(1, 0)
        plist.add(1, 1)
        plist.add(2, 0)
        assert plist.collection_frequency == 3

    def test_remove_document(self):
        plist = PostingsList("x")
        plist.add(1, 0)
        plist.add(2, 0)
        assert plist.remove_document(1) is True
        assert plist.doc_ids() == [2]
        assert plist.remove_document(1) is False

    def test_get_missing_returns_none(self):
        plist = PostingsList("x")
        plist.add(1, 0)
        assert plist.get(99) is None

    def test_iteration_and_len(self):
        plist = PostingsList("x")
        plist.add(1, 0)
        plist.add(2, 0)
        assert len(plist) == 2
        assert [p.doc_id for p in plist] == [1, 2]

    def test_positions_preserved_in_order(self):
        plist = PostingsList("x")
        for pos in (3, 7, 11):
            plist.add(4, pos)
        assert plist.get(4).positions == [3, 7, 11]
