"""Unit tests for the SQL tokenizer."""

import pytest

from repro.errors import ParseError
from repro.parsers.sqltok import Token, TokenType, tokenize_sql


def kinds(text: str) -> list[tuple[TokenType, str]]:
    return [(t.type, t.value) for t in tokenize_sql(text)
            if t.type is not TokenType.EOF]


class TestBasics:
    def test_identifiers_and_punct(self):
        assert kinds("CREATE TABLE t (") == [
            (TokenType.IDENT, "CREATE"),
            (TokenType.IDENT, "TABLE"),
            (TokenType.IDENT, "t"),
            (TokenType.PUNCT, "("),
        ]

    def test_numbers(self):
        assert kinds("5 2.5") == [
            (TokenType.NUMBER, "5"), (TokenType.NUMBER, "2.5")]

    def test_eof_always_last(self):
        tokens = tokenize_sql("x")
        assert tokens[-1].type is TokenType.EOF

    def test_empty_input(self):
        tokens = tokenize_sql("")
        assert len(tokens) == 1 and tokens[0].type is TokenType.EOF


class TestQuoting:
    def test_double_quoted_identifier(self):
        assert kinds('"case"') == [(TokenType.IDENT, "case")]

    def test_backtick_identifier(self):
        assert kinds("`order table`") == [(TokenType.IDENT, "order table")]

    def test_bracket_identifier(self):
        assert kinds("[select]") == [(TokenType.IDENT, "select")]

    def test_unterminated_quote_raises(self):
        with pytest.raises(ParseError, match="unterminated"):
            tokenize_sql('"oops')

    def test_string_literal(self):
        assert kinds("'hello'") == [(TokenType.STRING, "hello")]

    def test_string_with_escaped_quote(self):
        assert kinds("'it''s'") == [(TokenType.STRING, "it's")]

    def test_unterminated_string_raises(self):
        with pytest.raises(ParseError, match="unterminated string"):
            tokenize_sql("'oops")


class TestComments:
    def test_line_comment_skipped(self):
        assert kinds("x -- comment\ny") == [
            (TokenType.IDENT, "x"), (TokenType.IDENT, "y")]

    def test_block_comment_skipped(self):
        assert kinds("x /* multi\nline */ y") == [
            (TokenType.IDENT, "x"), (TokenType.IDENT, "y")]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(ParseError, match="block comment"):
            tokenize_sql("/* oops")


class TestPositions:
    def test_line_and_column_tracked(self):
        tokens = tokenize_sql("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_unexpected_character_reports_position(self):
        with pytest.raises(ParseError) as excinfo:
            tokenize_sql("a\n\x01")
        assert excinfo.value.line == 2


class TestKeywordHelper:
    def test_is_keyword_case_insensitive(self):
        token = Token(TokenType.IDENT, "create", 1, 1)
        assert token.is_keyword("CREATE")
        assert not token.is_keyword("TABLE")

    def test_is_keyword_false_for_punct(self):
        token = Token(TokenType.PUNCT, "(", 1, 1)
        assert not token.is_keyword("(")
