"""Unit tests for IR metrics and the evaluation runner."""

import pytest

from repro.errors import SchemrError
from repro.eval.metrics import (
    average_precision,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
)
from repro.eval.runner import EvaluationReport, evaluate_engine


class TestPrecisionRecall:
    def test_precision_at_k(self):
        ranking = [1, 2, 3, 4, 5]
        relevant = {1, 3, 9}
        assert precision_at_k(ranking, relevant, 5) == pytest.approx(0.4)
        assert precision_at_k(ranking, relevant, 1) == 1.0

    def test_precision_counts_k_not_returned(self):
        """P@10 over 3 returned results divides by 10 (standard IR)."""
        assert precision_at_k([1], {1}, 10) == pytest.approx(0.1)

    def test_recall_at_k(self):
        ranking = [1, 2, 3]
        relevant = {1, 3, 9, 10}
        assert recall_at_k(ranking, relevant, 3) == pytest.approx(0.5)

    def test_recall_no_relevant(self):
        assert recall_at_k([1, 2], set(), 2) == 0.0

    def test_empty_ranking(self):
        assert precision_at_k([], {1}, 5) == 0.0
        assert recall_at_k([], {1}, 5) == 0.0

    def test_k_validation(self):
        with pytest.raises(ValueError):
            precision_at_k([1], {1}, 0)
        with pytest.raises(ValueError):
            recall_at_k([1], {1}, -1)


class TestMrrMap:
    def test_reciprocal_rank(self):
        assert reciprocal_rank([5, 1, 2], {1}) == pytest.approx(0.5)
        assert reciprocal_rank([1], {1}) == 1.0
        assert reciprocal_rank([5, 6], {1}) == 0.0

    def test_average_precision_perfect(self):
        assert average_precision([1, 2], {1, 2}) == 1.0

    def test_average_precision_interleaved(self):
        # relevant at ranks 1 and 3: AP = (1/1 + 2/3) / 2
        assert average_precision([1, 9, 2], {1, 2}) == \
            pytest.approx((1.0 + 2 / 3) / 2)

    def test_average_precision_counts_missed(self):
        # one of two relevant docs never returned
        assert average_precision([1], {1, 2}) == pytest.approx(0.5)

    def test_average_precision_no_relevant(self):
        assert average_precision([1], set()) == 0.0


class TestNdcg:
    def test_perfect_ordering(self):
        grades = {1: 2, 2: 1}
        assert ndcg_at_k([1, 2], grades, 10) == pytest.approx(1.0)

    def test_inverted_ordering_below_one(self):
        grades = {1: 2, 2: 1}
        assert ndcg_at_k([2, 1], grades, 10) < 1.0

    def test_graded_gain(self):
        """A grade-2 doc at rank 1 beats a grade-1 doc at rank 1."""
        high = ndcg_at_k([1], {1: 2, 2: 1}, 1)
        low = ndcg_at_k([2], {1: 2, 2: 1}, 1)
        assert high > low

    def test_no_positive_grades(self):
        assert ndcg_at_k([1, 2], {}, 5) == 0.0

    def test_k_validation(self):
        with pytest.raises(ValueError):
            ndcg_at_k([1], {1: 1}, 0)


class TestRunner:
    def test_empty_query_set_rejected(self, small_repository):
        engine = small_repository.engine()
        with pytest.raises(SchemrError):
            evaluate_engine(engine, [])

    def test_report_on_synthetic_queries(self, small_repository):
        from repro.corpus.groundtruth import GroundTruthQuery
        engine = small_repository.engine()
        queries = [
            GroundTruthQuery(
                keywords=["patient", "height", "gender", "diagnosis"],
                canonical_keywords=["patient", "height", "gender",
                                    "diagnosis"],
                domain="healthcare", template="patient", channel="clean",
                relevance={1: 2}),
            GroundTruthQuery(
                keywords=["employee", "salary"],
                canonical_keywords=["employee", "salary"],
                domain="human_resources", template="employee",
                channel="clean", relevance={2: 2}),
        ]
        report = evaluate_engine(engine, queries, label="fixture")
        assert report.query_count == 2
        assert report.mrr == 1.0  # both fixtures rank their schema first
        assert report.precision_at_5 == pytest.approx(0.2)

    def test_report_rows_align_with_header(self, small_repository):
        from repro.corpus.groundtruth import GroundTruthQuery
        engine = small_repository.engine()
        queries = [GroundTruthQuery(
            keywords=["patient"], canonical_keywords=["patient"],
            domain="healthcare", template="patient",
            channel="clean", relevance={1: 2})]
        report = evaluate_engine(engine, queries)
        assert len(report.row()) > 0
        assert "MRR" in EvaluationReport.header()
