"""Unit tests for the SQLite schema repository."""

import pytest

from repro.errors import RepositoryError
from repro.model.elements import Attribute
from repro.repository.store import SchemaRepository

from tests.conftest import build_clinic_schema

CLINIC_DDL = """
CREATE TABLE patient (id INTEGER PRIMARY KEY, height DECIMAL, gender CHAR);
CREATE TABLE visit (id INTEGER PRIMARY KEY,
                    patient_id INTEGER REFERENCES patient(id));
"""

CLINIC_XSD = """<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
 <xs:element name="clinic">
  <xs:complexType><xs:sequence>
   <xs:element name="name" type="xs:string"/>
  </xs:sequence></xs:complexType>
 </xs:element>
</xs:schema>"""


class TestCrud:
    def test_add_assigns_id(self, clinic_schema):
        with SchemaRepository.in_memory() as repo:
            schema_id = repo.add_schema(clinic_schema)
            assert schema_id == clinic_schema.schema_id
            assert repo.schema_count == 1

    def test_get_roundtrip(self, clinic_schema):
        with SchemaRepository.in_memory() as repo:
            schema_id = repo.add_schema(clinic_schema)
            loaded = repo.get_schema(schema_id)
            assert loaded.name == clinic_schema.name
            assert loaded.schema_id == schema_id
            assert loaded.entity_count == clinic_schema.entity_count
            assert len(loaded.foreign_keys) == \
                len(clinic_schema.foreign_keys)

    def test_get_missing_raises(self):
        with SchemaRepository.in_memory() as repo:
            with pytest.raises(RepositoryError):
                repo.get_schema(99)

    def test_update(self, clinic_schema):
        with SchemaRepository.in_memory() as repo:
            schema_id = repo.add_schema(clinic_schema)
            clinic_schema.entity("patient").add_attribute(
                Attribute("weight"))
            repo.update_schema(clinic_schema)
            assert repo.get_schema(schema_id).entity("patient") \
                .has_attribute("weight")

    def test_update_without_id_raises(self, clinic_schema):
        with SchemaRepository.in_memory() as repo:
            with pytest.raises(RepositoryError, match="no id"):
                repo.update_schema(clinic_schema)

    def test_update_missing_raises(self, clinic_schema):
        with SchemaRepository.in_memory() as repo:
            clinic_schema.schema_id = 404
            with pytest.raises(RepositoryError):
                repo.update_schema(clinic_schema)

    def test_delete(self, clinic_schema):
        with SchemaRepository.in_memory() as repo:
            schema_id = repo.add_schema(clinic_schema)
            repo.delete_schema(schema_id)
            assert repo.schema_count == 0
            assert not repo.has_schema(schema_id)

    def test_delete_missing_raises(self):
        with SchemaRepository.in_memory() as repo:
            with pytest.raises(RepositoryError):
                repo.delete_schema(1)

    def test_iter_schemas_ordered(self):
        with SchemaRepository.in_memory() as repo:
            for i in range(3):
                repo.add_schema(build_clinic_schema(name=f"s{i}"))
            names = [s.name for s in repo.iter_schemas()]
            assert names == ["s0", "s1", "s2"]

    def test_list_schema_ids(self, clinic_schema):
        with SchemaRepository.in_memory() as repo:
            schema_id = repo.add_schema(clinic_schema)
            assert repo.list_schema_ids() == [schema_id]


class TestChangeLog:
    def test_operations_logged_in_order(self, clinic_schema):
        with SchemaRepository.in_memory() as repo:
            schema_id = repo.add_schema(clinic_schema)
            repo.update_schema(clinic_schema)
            repo.delete_schema(schema_id)
            changes = repo.changes_since(0)
            assert [(c[1], c[2]) for c in changes] == [
                (schema_id, "add"), (schema_id, "update"),
                (schema_id, "delete")]

    def test_changes_since_cursor(self, clinic_schema):
        with SchemaRepository.in_memory() as repo:
            repo.add_schema(clinic_schema)
            first = repo.changes_since(0)
            assert len(first) == 1
            assert repo.changes_since(first[-1][0]) == []


class TestImports:
    def test_import_ddl(self):
        with SchemaRepository.in_memory() as repo:
            schema_id = repo.import_ddl(CLINIC_DDL, name="clinic",
                                        description="demo")
            schema = repo.get_schema(schema_id)
            assert schema.name == "clinic"
            assert schema.description == "demo"
            assert len(schema.foreign_keys) == 1

    def test_import_xsd(self):
        with SchemaRepository.in_memory() as repo:
            schema_id = repo.import_xsd(CLINIC_XSD, name="clinic_x")
            assert repo.get_schema(schema_id).source == "xsd"

    def test_import_webtable(self):
        with SchemaRepository.in_memory() as repo:
            schema_id = repo.import_webtable("presidents",
                                             ["name", "party"])
            assert repo.get_schema(schema_id).attribute_count == 2


class TestPersistence:
    def test_survives_reopen(self, tmp_path, clinic_schema):
        db_path = tmp_path / "repo.db"
        repo = SchemaRepository(db_path)
        schema_id = repo.add_schema(clinic_schema)
        repo.close()
        reopened = SchemaRepository(db_path)
        assert reopened.get_schema(schema_id).name == clinic_schema.name
        reopened.close()


class TestEngineIntegration:
    def test_engine_searches_repository(self, small_repository,
                                        paper_keywords):
        engine = small_repository.engine()
        results = engine.search(keywords=paper_keywords)
        assert results[0].name == "clinic_emr"

    def test_engine_sees_new_schemas(self, small_repository):
        engine = small_repository.engine()
        assert engine.search(keywords="warpdrive") == []
        small_repository.import_webtable("spaceship",
                                         ["warpdrive", "crew"])
        engine = small_repository.engine()  # refreshes the index
        results = engine.search(keywords="warpdrive")
        assert results and results[0].name == "spaceship"
