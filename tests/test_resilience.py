"""Unit tests for the resilience primitives (fake clocks, no sleeps)."""

from __future__ import annotations

import random
import sqlite3

import pytest

from repro.errors import (AdmissionRejected, CircuitOpenError,
                          DeadlineExceeded)
from repro.resilience import (DEGRADE_NAME_ONLY, DEGRADE_NONE,
                              DEGRADE_PHASE1_ONLY, DEGRADE_REDUCED_POOL,
                              STATE_CLOSED, STATE_HALF_OPEN, STATE_OPEN,
                              AdmissionController, CircuitBreaker, Deadline,
                              DegradationLadder, FaultInjector, RetryPolicy,
                              degradation_name, is_transient_sqlite_error,
                              retry_transient)


class FakeClock:
    """A monotonic clock advanced by hand."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# -- Deadline ----------------------------------------------------------------

class TestDeadline:
    def test_unlimited_never_expires(self):
        clock = FakeClock()
        deadline = Deadline(None, clock=clock)
        clock.advance(1e9)
        assert not deadline.expired()
        assert deadline.remaining() == float("inf")
        assert deadline.fraction_remaining() == 1.0
        deadline.check("anywhere")  # no raise

    def test_elapsed_and_remaining_track_the_clock(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        clock.advance(0.5)
        assert deadline.elapsed() == pytest.approx(0.5)
        assert deadline.remaining() == pytest.approx(1.5)
        assert deadline.fraction_remaining() == pytest.approx(0.75)

    def test_check_raises_past_budget_with_site(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(1.01)
        assert deadline.expired()
        with pytest.raises(DeadlineExceeded, match="phase-2"):
            deadline.check("phase-2 candidate loop")

    def test_remaining_never_negative(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(5.0)
        assert deadline.remaining() == 0.0
        assert deadline.fraction_remaining() == 0.0

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            Deadline(0.0)
        with pytest.raises(ValueError):
            Deadline(-1.0)

    def test_unlimited_constructor(self):
        assert not Deadline.unlimited().limited


class TestDegradationLadder:
    def test_level_thresholds(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        ladder = DegradationLadder()
        assert ladder.level_for(deadline) == DEGRADE_NONE
        clock.advance(0.55)  # 45% remaining
        assert ladder.level_for(deadline) == DEGRADE_REDUCED_POOL
        clock.advance(0.25)  # 20% remaining
        assert ladder.level_for(deadline) == DEGRADE_NAME_ONLY
        clock.advance(0.15)  # 5% remaining
        assert ladder.level_for(deadline) == DEGRADE_PHASE1_ONLY

    def test_unlimited_deadline_never_degrades(self):
        assert DegradationLadder().level_for(
            Deadline.unlimited()) == DEGRADE_NONE

    def test_rejects_unordered_fractions(self):
        with pytest.raises(ValueError):
            DegradationLadder(reduced_pool_fraction=0.2,
                              name_only_fraction=0.5)

    def test_level_names(self):
        assert degradation_name(DEGRADE_NONE) == "none"
        assert degradation_name(DEGRADE_REDUCED_POOL) == "reduced_pool"
        assert degradation_name(DEGRADE_NAME_ONLY) == "name_only"
        assert degradation_name(DEGRADE_PHASE1_ONLY) == "phase1_only"
        with pytest.raises(ValueError):
            degradation_name(7)


# -- CircuitBreaker ----------------------------------------------------------

class TestCircuitBreaker:
    def make(self, clock, threshold=3, reset=10.0, probes=1):
        return CircuitBreaker("test", failure_threshold=threshold,
                              reset_seconds=reset, half_open_probes=probes,
                              clock=clock)

    def test_opens_after_threshold_consecutive_failures(self):
        breaker = self.make(FakeClock())
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == STATE_CLOSED
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert breaker.open_count == 1
        assert not breaker.allow()
        assert breaker.rejected_count == 1

    def test_success_resets_the_failure_streak(self):
        breaker = self.make(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED

    def test_half_open_after_cooldown_then_close_on_success(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == STATE_HALF_OPEN
        assert breaker.allow()          # the probe
        assert not breaker.allow()      # only one probe admitted
        breaker.record_success()
        assert breaker.state == STATE_CLOSED
        assert breaker.allow()

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert breaker.open_count == 2

    def test_retry_after_counts_down_the_cooldown(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.retry_after() == pytest.approx(10.0)
        clock.advance(4.0)
        assert breaker.retry_after() == pytest.approx(6.0)
        clock.advance(7.0)
        assert breaker.retry_after() == 0.0

    def test_call_raises_structured_error_when_open(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            with pytest.raises(RuntimeError):
                breaker.call(self._boom_expecting, breaker)
        with pytest.raises(CircuitOpenError) as err:
            breaker.call(lambda: "never runs")
        assert err.value.breaker == "test"
        assert err.value.retry_after > 0

    def _boom_expecting(self, breaker):
        # helper so call() records the failure itself
        raise RuntimeError("boom")

    def test_call_records_failure_and_reraises(self):
        breaker = self.make(FakeClock())
        with pytest.raises(RuntimeError):
            breaker.call(self._boom_expecting, breaker)
        assert breaker.failure_count == 1

    def test_reset_force_closes(self):
        breaker = self.make(FakeClock())
        for _ in range(3):
            breaker.record_failure()
        breaker.reset()
        assert breaker.state == STATE_CLOSED
        assert breaker.allow()

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker("x", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("x", reset_seconds=0)
        with pytest.raises(ValueError):
            CircuitBreaker("x", half_open_probes=0)


# -- retry -------------------------------------------------------------------

class TestRetry:
    def test_transient_classifier(self):
        assert is_transient_sqlite_error(
            sqlite3.OperationalError("database is locked"))
        assert is_transient_sqlite_error(
            sqlite3.OperationalError("database table is busy"))
        assert not is_transient_sqlite_error(
            sqlite3.OperationalError("disk I/O error"))
        assert not is_transient_sqlite_error(RuntimeError("locked"))

    def test_retries_transient_then_succeeds(self):
        sleeps: list[float] = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise sqlite3.OperationalError("database is locked")
            return "ok"

        result = retry_transient(flaky, RetryPolicy(attempts=4),
                                 sleep=sleeps.append,
                                 rng=random.Random(7))
        assert result == "ok"
        assert calls["n"] == 3
        assert len(sleeps) == 2

    def test_backoff_is_capped_exponential(self):
        policy = RetryPolicy(attempts=5, base_seconds=0.1,
                             multiplier=2.0, max_seconds=0.3)
        rng = random.Random(0)
        for attempt, cap in enumerate((0.1, 0.2, 0.3, 0.3)):
            for _ in range(50):
                delay = policy.backoff_seconds(attempt, rng)
                assert 0.0 <= delay <= cap

    def test_non_transient_propagates_immediately(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise sqlite3.OperationalError("file is not a database")

        with pytest.raises(sqlite3.OperationalError):
            retry_transient(broken, sleep=lambda _: None)
        assert calls["n"] == 1

    def test_exhausted_attempts_raise_the_last_error(self):
        attempts: list[int] = []

        def always_locked():
            raise sqlite3.OperationalError("database is locked")

        with pytest.raises(sqlite3.OperationalError):
            retry_transient(always_locked, RetryPolicy(attempts=3),
                            sleep=lambda _: None,
                            on_retry=lambda i, exc: attempts.append(i))
        assert attempts == [0, 1]

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_seconds=0)
        with pytest.raises(ValueError):
            RetryPolicy(max_seconds=0.001, base_seconds=0.01)


# -- FaultInjector -----------------------------------------------------------

class TestFaultInjector:
    def test_disarmed_hit_is_a_noop(self):
        injector = FaultInjector()
        injector.hit("anything")  # no raise, no record
        assert injector.hits("anything") == 0

    def test_error_injection_with_times_bound(self):
        injector = FaultInjector()
        injector.inject("site", error=RuntimeError("chaos"), times=2)
        with pytest.raises(RuntimeError):
            injector.hit("site")
        with pytest.raises(RuntimeError):
            injector.hit("site")
        injector.hit("site")  # plan exhausted and disarmed
        assert injector.triggered("site") == 2
        assert injector.hits("site") >= 2
        assert "site" not in injector.armed_sites

    def test_delay_uses_injected_sleep(self):
        slept: list[float] = []
        injector = FaultInjector(sleep=slept.append)
        injector.inject("slow", delay_seconds=0.25)
        injector.hit("slow")
        assert slept == [0.25]

    def test_hook_runs_before_error(self):
        order: list[str] = []
        injector = FaultInjector()
        injector.inject("site", hook=lambda: order.append("hook"),
                        error=RuntimeError("x"))
        with pytest.raises(RuntimeError):
            injector.hit("site")
        assert order == ["hook"]

    def test_reset_disarms_and_forgets(self):
        injector = FaultInjector()
        injector.inject("a", error=RuntimeError("x"))
        injector.reset()
        injector.hit("a")
        assert injector.armed_sites == ()
        assert injector.hits("a") == 0

    def test_empty_plan_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector().inject("site")


# -- AdmissionController -----------------------------------------------------

class TestAdmissionController:
    def test_admits_up_to_max_concurrent(self):
        admission = AdmissionController(max_concurrent=2, queue_size=0)
        admission.acquire()
        admission.acquire()
        assert admission.active == 2
        with pytest.raises(AdmissionRejected) as err:
            admission.acquire()
        assert err.value.retry_after >= 1.0
        assert admission.rejected_total == 1
        admission.release()
        admission.acquire()  # freed slot admits again
        assert admission.admitted_total == 3

    def test_queue_timeout_sheds(self):
        admission = AdmissionController(max_concurrent=1, queue_size=4,
                                        queue_timeout_seconds=0.01)
        admission.acquire()
        with pytest.raises(AdmissionRejected):
            admission.acquire()
        assert admission.timed_out_total == 1
        assert admission.waiting == 0

    def test_context_manager_releases_on_error(self):
        admission = AdmissionController(max_concurrent=1, queue_size=0)
        with pytest.raises(RuntimeError):
            with admission.admitted():
                assert admission.active == 1
                raise RuntimeError("search blew up")
        assert admission.active == 0

    def test_release_without_acquire_raises(self):
        with pytest.raises(RuntimeError):
            AdmissionController().release()

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_concurrent=0)
        with pytest.raises(ValueError):
            AdmissionController(queue_size=-1)
        with pytest.raises(ValueError):
            AdmissionController(queue_timeout_seconds=-0.1)
