"""Unit tests for repro.index.scoring (TF/IDF + coordination factor)."""

import math

import pytest

from repro.index.documents import Document
from repro.index.inverted import InvertedIndex
from repro.index.scoring import TfIdfScorer


@pytest.fixture
def index() -> InvertedIndex:
    idx = InvertedIndex()
    idx.add(Document(1, "clinic", terms=["patient", "height", "gender"]))
    idx.add(Document(2, "hr", terms=["employee", "salary", "gender"]))
    idx.add(Document(3, "eco", terms=["site", "species", "count",
                                      "patient"]))
    return idx


class TestIdf:
    def test_rare_term_has_higher_idf(self, index):
        scorer = TfIdfScorer(index)
        assert scorer.idf("height") > scorer.idf("gender")

    def test_unknown_term_idf_zero(self, index):
        assert TfIdfScorer(index).idf("ghost") == 0.0

    def test_idf_formula(self, index):
        scorer = TfIdfScorer(index)
        # df('gender') == 2, N == 3.
        assert scorer.idf("gender") == pytest.approx(1.0 + math.log(3 / 3.0))


class TestTermScore:
    def test_zero_when_absent_from_document(self, index):
        scorer = TfIdfScorer(index)
        assert scorer.term_score("salary", 1) == 0.0

    def test_positive_when_present(self, index):
        scorer = TfIdfScorer(index)
        assert scorer.term_score("height", 1) > 0.0

    def test_higher_tf_scores_higher(self):
        idx = InvertedIndex()
        idx.add(Document(1, "a", terms=["x", "x", "y"]))
        idx.add(Document(2, "b", terms=["x", "z", "y"]))
        scorer = TfIdfScorer(idx)
        assert scorer.term_score("x", 1) > scorer.term_score("x", 2)

    def test_length_norm_penalizes_long_documents(self):
        idx = InvertedIndex()
        idx.add(Document(1, "short", terms=["x", "y"]))
        idx.add(Document(2, "long", terms=["x"] + ["filler"] * 30))
        scorer = TfIdfScorer(idx)
        assert scorer.term_score("x", 1) > scorer.term_score("x", 2)


class TestCoordination:
    def test_coordination_fraction(self, index):
        scorer = TfIdfScorer(index)
        # Doc 1 matches patient+height+gender but not salary -> 3/4.
        terms = ["patient", "height", "gender", "salary"]
        assert scorer.coordination(terms, 1) == pytest.approx(0.75)

    def test_score_multiplies_coordination(self, index):
        with_coord = TfIdfScorer(index, use_coordination=True)
        without = TfIdfScorer(index, use_coordination=False)
        terms = ["patient", "height", "gender", "salary"]
        assert with_coord.score(terms, 1) == \
            pytest.approx(0.75 * without.score(terms, 1))

    def test_full_match_unaffected_by_coordination(self, index):
        with_coord = TfIdfScorer(index, use_coordination=True)
        without = TfIdfScorer(index, use_coordination=False)
        terms = ["patient", "height", "gender"]
        assert with_coord.score(terms, 1) == \
            pytest.approx(without.score(terms, 1))

    def test_empty_query_scores_zero(self, index):
        assert TfIdfScorer(index).score([], 1) == 0.0
        assert TfIdfScorer(index).coordination([], 1) == 0.0

    def test_coordination_rewards_broader_match(self, index):
        """The paper's rationale: reward results matching more terms."""
        scorer = TfIdfScorer(index)
        # Doc 1 matches 3/3 of this query; doc 3 matches 1/3.
        terms = ["height", "gender", "patient"]
        assert scorer.score(terms, 1) > scorer.score(terms, 3)
