"""Unit tests for the tightness-of-fit scorer, including the paper's
Figure 4 worked example step by step."""

import pytest

from repro.errors import MatchError
from repro.model.elements import Attribute, Entity
from repro.scoring.tightness import (
    AGGREGATION_MEAN,
    AGGREGATION_SUM,
    PenaltyPolicy,
    TightnessScorer,
)

#: Figure 4's matched elements: case.doctor, case.patient, patient.height,
#: patient.gender, doctor.gender — all at similarity s for the walkthrough.
FIGURE4_SCORES = {
    "case.doctor": 0.8,
    "case.patient": 0.8,
    "patient.height": 0.8,
    "patient.gender": 0.8,
    "doctor.gender": 0.8,
}


class TestPenaltyPolicy:
    def test_defaults_small_less_than_large(self):
        policy = PenaltyPolicy()
        assert policy.neighborhood_penalty < policy.unrelated_penalty

    def test_inverted_penalties_rejected(self):
        with pytest.raises(MatchError):
            PenaltyPolicy(neighborhood_penalty=0.5, unrelated_penalty=0.2)

    def test_out_of_range_rejected(self):
        with pytest.raises(MatchError):
            PenaltyPolicy(neighborhood_penalty=-0.1)
        with pytest.raises(MatchError):
            PenaltyPolicy(unrelated_penalty=1.5)

    def test_bad_aggregation_rejected(self):
        with pytest.raises(MatchError):
            PenaltyPolicy(aggregation="median")


class TestFigure4Walkthrough:
    """The paper's worked example, with the mean aggregation it narrates.

    All three entities share one FK neighborhood (case references both
    patient and doctor), so with anchor=case the other entities' elements
    take the small penalty; same for the other anchors.
    """

    @pytest.fixture
    def scorer(self) -> TightnessScorer:
        return TightnessScorer(PenaltyPolicy(
            neighborhood_penalty=0.1, unrelated_penalty=0.3,
            match_floor=0.01, aggregation=AGGREGATION_MEAN))

    def test_case_anchor_penalties(self, clinic_schema, scorer):
        result = scorer.score(clinic_schema, FIGURE4_SCORES)
        case_anchor = next(a for a in result.anchors if a.anchor == "case")
        # case.doctor / case.patient reside in the anchor: no penalty.
        assert case_anchor.penalized_elements["case.doctor"] == \
            pytest.approx(0.8)
        assert case_anchor.penalized_elements["case.patient"] == \
            pytest.approx(0.8)
        # patient.* and doctor.* take the small neighborhood penalty.
        assert case_anchor.penalized_elements["patient.height"] == \
            pytest.approx(0.7)
        assert case_anchor.penalized_elements["doctor.gender"] == \
            pytest.approx(0.7)

    def test_patient_anchor_penalties(self, clinic_schema, scorer):
        result = scorer.score(clinic_schema, FIGURE4_SCORES)
        patient_anchor = next(a for a in result.anchors
                              if a.anchor == "patient")
        assert patient_anchor.penalized_elements["patient.height"] == \
            pytest.approx(0.8)
        assert patient_anchor.penalized_elements["case.doctor"] == \
            pytest.approx(0.7)
        assert patient_anchor.penalized_elements["doctor.gender"] == \
            pytest.approx(0.7)

    def test_all_three_anchors_evaluated(self, clinic_schema, scorer):
        result = scorer.score(clinic_schema, FIGURE4_SCORES)
        assert {a.anchor for a in result.anchors} == \
            {"case", "patient", "doctor"}

    def test_max_anchor_selected(self, clinic_schema, scorer):
        """case holds 2 matched elements vs patient's 2 and doctor's 1;
        with uniform scores the anchor with most in-anchor elements wins
        (ties broken by name)."""
        result = scorer.score(clinic_schema, FIGURE4_SCORES)
        anchor_scores = {a.anchor: a.score for a in result.anchors}
        # case anchor: (0.8*2 + 0.7*3) / 5 = 0.74
        assert anchor_scores["case"] == pytest.approx(0.74)
        # patient anchor: (0.8*2 + 0.7*3) / 5 = 0.74 (2 own elements)
        assert anchor_scores["patient"] == pytest.approx(0.74)
        # doctor anchor: (0.8*1 + 0.7*4) / 5 = 0.72
        assert anchor_scores["doctor"] == pytest.approx(0.72)
        assert result.score == pytest.approx(0.74)
        assert result.best_anchor in ("case", "patient")

    def test_unrelated_entity_takes_large_penalty(self, clinic_schema,
                                                  scorer):
        clinic_schema.add_entity(Entity("billing", [Attribute("gender")]))
        scores = dict(FIGURE4_SCORES)
        scores["billing.gender"] = 0.8
        result = scorer.score(clinic_schema, scores)
        case_anchor = next(a for a in result.anchors if a.anchor == "case")
        assert case_anchor.penalized_elements["billing.gender"] == \
            pytest.approx(0.5)  # 0.8 - 0.3


class TestScorerBehaviour:
    def test_no_matches_scores_zero(self, clinic_schema):
        result = TightnessScorer().score(clinic_schema, {})
        assert result.score == 0.0
        assert result.best_anchor is None
        assert result.anchors == []

    def test_match_floor_excludes_weak_elements(self, clinic_schema):
        scorer = TightnessScorer(PenaltyPolicy(match_floor=0.25))
        result = scorer.score(clinic_schema, {"patient.height": 0.2,
                                              "patient.gender": 0.9})
        assert "patient.height" not in result.matched_elements
        assert "patient.gender" in result.matched_elements

    def test_unknown_element_raises(self, clinic_schema):
        with pytest.raises(MatchError, match="does not exist"):
            TightnessScorer().score(clinic_schema, {"ghost.attr": 0.9})

    def test_entity_level_elements_scored(self, clinic_schema):
        result = TightnessScorer().score(clinic_schema, {"patient": 0.9})
        assert result.score > 0
        assert result.best_anchor == "patient"

    def test_sum_rewards_breadth(self, clinic_schema):
        """Default (sum) aggregation: matching more elements scores
        higher; this is the formula reading ``t = max_A Σ(S - P_A)``."""
        scorer = TightnessScorer()
        narrow = scorer.score(clinic_schema, {"patient.gender": 0.9})
        broad = scorer.score(clinic_schema, FIGURE4_SCORES)
        assert broad.score > narrow.score

    def test_mean_vs_sum_agree_on_single_element(self, clinic_schema):
        scores = {"patient.gender": 0.9}
        sum_result = TightnessScorer(
            PenaltyPolicy(aggregation=AGGREGATION_SUM)).score(
                clinic_schema, scores)
        mean_result = TightnessScorer(
            PenaltyPolicy(aggregation=AGGREGATION_MEAN)).score(
                clinic_schema, scores)
        assert sum_result.score == pytest.approx(mean_result.score)

    def test_scores_clamped_to_unit(self, clinic_schema):
        result = TightnessScorer().score(clinic_schema,
                                         {"patient.gender": 7.0})
        assert result.matched_elements["patient.gender"] == 1.0

    def test_penalty_never_negative(self, clinic_schema):
        """An element score below the penalty clamps to 0, not below."""
        scorer = TightnessScorer(PenaltyPolicy(
            neighborhood_penalty=0.5, unrelated_penalty=0.9,
            match_floor=0.01))
        result = scorer.score(clinic_schema, {"patient.height": 0.3,
                                              "case.diagnosis": 0.9})
        case_anchor = next(a for a in result.anchors if a.anchor == "case")
        assert case_anchor.penalized_elements["patient.height"] == 0.0

    def test_tighter_schema_beats_scattered(self):
        """The design intent: the same matches packed into one entity
        outscore the same matches scattered over unrelated entities."""
        from repro.model.schema import Schema
        tight = Schema(name="tight")
        tight.add_entity(Entity("t", [Attribute("a"), Attribute("b"),
                                      Attribute("c")]))
        scattered = Schema(name="scattered")
        for name in ("x", "y", "z"):
            scattered.add_entity(Entity(name, [Attribute("a")]))
        scorer = TightnessScorer()
        tight_scores = {"t.a": 0.8, "t.b": 0.8, "t.c": 0.8}
        scattered_scores = {"x.a": 0.8, "y.a": 0.8, "z.a": 0.8}
        assert scorer.score(tight, tight_scores).score > \
            scorer.score(scattered, scattered_scores).score

    def test_fk_connected_beats_unconnected(self):
        """Matches across FK-related entities outscore matches across
        unrelated entities (small vs large penalty)."""
        from repro.model.elements import ForeignKey
        from repro.model.schema import Schema

        def build(linked: bool) -> Schema:
            schema = Schema(name="s")
            schema.add_entity(Entity("a", [Attribute("x")]))
            schema.add_entity(Entity("b", [Attribute("y")]))
            if linked:
                schema.add_foreign_key(ForeignKey("a", "x", "b", "y"))
            return schema

        scorer = TightnessScorer()
        scores = {"a.x": 0.8, "b.y": 0.8}
        assert scorer.score(build(True), scores).score > \
            scorer.score(build(False), scores).score
