"""Unit tests for SimilarityMatrix and the Matcher helpers."""

import numpy as np
import pytest

from repro.errors import MatchError
from repro.matching.base import Matcher, SimilarityMatrix
from repro.model.query import QueryGraph


class TestConstruction:
    def test_zero_initialized(self):
        matrix = SimilarityMatrix(["q1"], ["e1", "e2"])
        assert matrix.shape == (1, 2)
        assert matrix.get("q1", "e1") == 0.0

    def test_duplicate_row_labels_rejected(self):
        with pytest.raises(MatchError, match="duplicate row"):
            SimilarityMatrix(["a", "a"], ["x"])

    def test_duplicate_col_labels_rejected(self):
        with pytest.raises(MatchError, match="duplicate column"):
            SimilarityMatrix(["a"], ["x", "x"])

    def test_explicit_values_shape_checked(self):
        with pytest.raises(MatchError, match="shape"):
            SimilarityMatrix(["a"], ["x"], np.zeros((2, 2)))


class TestGetSet:
    def test_set_and_get(self):
        matrix = SimilarityMatrix(["q"], ["e"])
        matrix.set("q", "e", 0.7)
        assert matrix.get("q", "e") == pytest.approx(0.7)

    def test_out_of_range_rejected(self):
        matrix = SimilarityMatrix(["q"], ["e"])
        with pytest.raises(MatchError, match=r"\[0, 1\]"):
            matrix.set("q", "e", 1.5)
        with pytest.raises(MatchError):
            matrix.set("q", "e", -0.1)

    def test_unknown_labels_raise(self):
        matrix = SimilarityMatrix(["q"], ["e"])
        with pytest.raises(KeyError):
            matrix.get("ghost", "e")


class TestReductions:
    @pytest.fixture
    def matrix(self) -> SimilarityMatrix:
        m = SimilarityMatrix(["q1", "q2"], ["e1", "e2"])
        m.set("q1", "e1", 0.9)
        m.set("q2", "e1", 0.4)
        m.set("q2", "e2", 0.6)
        return m

    def test_max_per_column(self, matrix):
        assert matrix.max_per_column() == \
            pytest.approx({"e1": 0.9, "e2": 0.6})

    def test_max_per_row(self, matrix):
        assert matrix.max_per_row() == \
            pytest.approx({"q1": 0.9, "q2": 0.6})

    def test_max_per_column_empty_rows(self):
        matrix = SimilarityMatrix([], ["e1"])
        assert matrix.max_per_column() == {"e1": 0.0}

    def test_nonzero_pairs_sorted_descending(self, matrix):
        pairs = list(matrix.nonzero_pairs())
        assert pairs[0] == ("q1", "e1", pytest.approx(0.9))
        scores = [p[2] for p in pairs]
        assert scores == sorted(scores, reverse=True)

    def test_nonzero_pairs_threshold(self, matrix):
        pairs = list(matrix.nonzero_pairs(threshold=0.5))
        assert len(pairs) == 2


class TestCombine:
    def test_uniform_average(self):
        a = SimilarityMatrix(["q"], ["e"])
        a.set("q", "e", 1.0)
        b = SimilarityMatrix(["q"], ["e"])
        combined = SimilarityMatrix.combine([a, b])
        assert combined.get("q", "e") == pytest.approx(0.5)

    def test_weighted_average(self):
        a = SimilarityMatrix(["q"], ["e"])
        a.set("q", "e", 1.0)
        b = SimilarityMatrix(["q"], ["e"])
        combined = SimilarityMatrix.combine([a, b], weights=[3.0, 1.0])
        assert combined.get("q", "e") == pytest.approx(0.75)

    def test_combined_stays_in_unit_interval(self):
        a = SimilarityMatrix(["q"], ["e"])
        a.set("q", "e", 1.0)
        b = SimilarityMatrix(["q"], ["e"])
        b.set("q", "e", 1.0)
        assert SimilarityMatrix.combine([a, b]).get("q", "e") == \
            pytest.approx(1.0)

    def test_mismatched_labels_rejected(self):
        a = SimilarityMatrix(["q"], ["e"])
        b = SimilarityMatrix(["q"], ["other"])
        with pytest.raises(MatchError, match="mismatched"):
            SimilarityMatrix.combine([a, b])

    def test_empty_list_rejected(self):
        with pytest.raises(MatchError):
            SimilarityMatrix.combine([])

    def test_wrong_weight_count_rejected(self):
        a = SimilarityMatrix(["q"], ["e"])
        with pytest.raises(MatchError):
            SimilarityMatrix.combine([a], weights=[1.0, 2.0])

    def test_negative_weight_rejected(self):
        a = SimilarityMatrix(["q"], ["e"])
        with pytest.raises(MatchError):
            SimilarityMatrix.combine([a], weights=[-1.0])

    def test_zero_weights_rejected(self):
        a = SimilarityMatrix(["q"], ["e"])
        with pytest.raises(MatchError, match="sum to zero"):
            SimilarityMatrix.combine([a], weights=[0.0])


class TestMatcherHelpers:
    def test_query_elements_pairs(self, clinic_schema):
        query = QueryGraph.build(keywords=["height"],
                                 fragments=[clinic_schema])
        pairs = Matcher.query_elements(query)
        assert pairs[0] == ("kw:height", "height")
        assert ("f0:patient.height", "height") in pairs

    def test_candidate_elements_triples(self, clinic_schema):
        triples = Matcher.candidate_elements(clinic_schema)
        paths = [t[0] for t in triples]
        assert "patient" in paths
        assert "patient.height" in paths
        assert len(triples) == clinic_schema.element_count
