"""Unit tests for the codebook: concepts, annotation, matcher."""

import pytest

from repro.codebook.annotate import annotate_attribute, annotate_schema
from repro.codebook.concepts import CONCEPTS, ConceptCategory, concept_by_name
from repro.codebook.matcher import CodebookMatcher
from repro.model.elements import Attribute, Entity
from repro.model.query import QueryGraph
from repro.model.schema import Schema


class TestConcepts:
    def test_paper_categories_present(self):
        categories = {c.category for c in CONCEPTS}
        # The three the paper names explicitly.
        assert ConceptCategory.UNIT in categories
        assert ConceptCategory.DATETIME in categories
        assert ConceptCategory.GEOGRAPHIC in categories

    def test_lookup(self):
        assert concept_by_name("length").canonical_unit == "m"
        with pytest.raises(KeyError):
            concept_by_name("ghost")

    def test_concept_names_unique(self):
        names = [c.name for c in CONCEPTS]
        assert len(names) == len(set(names))

    def test_cues_lowercase(self):
        for concept in CONCEPTS:
            assert all(cue == cue.lower() for cue in concept.name_cues)


class TestAnnotateAttribute:
    @pytest.mark.parametrize("name,data_type,expected", [
        ("height", "DECIMAL(5,2)", "length"),
        ("weight", "REAL", "mass"),
        ("birth_date", "DATE", "calendar_date"),
        ("latitude", "REAL", "latitude"),
        ("unit_price", "DECIMAL(10,2)", "money"),
        ("email", "VARCHAR(100)", "email_address"),
        ("phone_number", "VARCHAR(20)", "phone_number"),
        ("zip_code", "VARCHAR(10)", "postal_code"),
    ])
    def test_recognizes_common_attributes(self, name, data_type, expected):
        annotation = annotate_attribute(name, data_type)
        assert annotation is not None
        assert annotation.concept.name == expected

    def test_abbreviations_recognized_via_expansion(self):
        annotation = annotate_attribute("ht", "DECIMAL")
        assert annotation is not None
        assert annotation.concept.name == "length"

    def test_unknown_attribute_unannotated(self):
        assert annotate_attribute("flibbertigibbet", "TEXT") is None

    def test_type_mismatch_rejects_single_cue(self):
        """A single name cue with a contradicting declared type falls
        below the acceptance threshold — the recognizer abstains rather
        than mislabeling a binary column as a length."""
        assert annotate_attribute("height", "DECIMAL") is not None
        assert annotate_attribute("height", "BLOB") is None

    def test_more_cues_win(self):
        # 'visit date' hits calendar_date's cue once; a two-cue name
        # outranks single-cue alternatives.
        annotation = annotate_attribute("date_of_birth_day", "DATE")
        assert annotation is not None
        assert annotation.concept.name == "calendar_date"


class TestAnnotateSchema:
    def test_clinic_annotations(self, clinic_schema):
        annotated = annotate_schema(clinic_schema)
        assert annotated.concept_of("patient.height").name == "length"
        assert annotated.concept_of("patient.id").name == "surrogate_key"
        assert annotated.concept_of("patient.name").name == "person_name"
        assert annotated.coverage > 0.4

    def test_by_category_grouping(self, clinic_schema):
        groups = annotate_schema(clinic_schema).by_category()
        assert "patient.height" in groups["unit"]
        assert "patient.id" in groups["identifier"]

    def test_empty_schema(self):
        annotated = annotate_schema(Schema(name="empty"))
        assert annotated.coverage == 0.0


class TestCodebookMatcher:
    @pytest.fixture
    def synonymless_schema(self) -> Schema:
        """Attribute names that share NO characters-of-meaning with the
        query, but the same concepts."""
        schema = Schema(name="s", schema_id=1)
        schema.add_entity(Entity("person", [
            Attribute("stature", "DECIMAL(5,2)"),
            Attribute("body_mass", "REAL"),
        ]))
        return schema

    def test_same_concept_scores_one(self, synonymless_schema):
        query = QueryGraph.build(keywords=["height"])
        matrix = CodebookMatcher().match(query, synonymless_schema)
        assert matrix.get("kw:height", "person.stature") == 1.0

    def test_same_category_partial_credit(self, synonymless_schema):
        query = QueryGraph.build(keywords=["height"])
        matrix = CodebookMatcher().match(query, synonymless_schema)
        # body_mass is the mass concept: same UNIT category.
        assert matrix.get("kw:height", "person.body_mass") == \
            pytest.approx(0.4)

    def test_unannotated_abstains(self, synonymless_schema):
        query = QueryGraph.build(keywords=["zorp"])
        matrix = CodebookMatcher().match(query, synonymless_schema)
        assert matrix.values.max() == 0.0

    def test_fragment_attributes_matched(self, synonymless_schema):
        from repro.parsers.ddl import parse_ddl
        fragment = parse_ddl("CREATE TABLE p (height DECIMAL(5,2));")
        query = QueryGraph.build(fragments=[fragment])
        matrix = CodebookMatcher().match(query, synonymless_schema)
        assert matrix.get("f0:p.height", "person.stature") == 1.0

    def test_bad_partial_score_rejected(self):
        with pytest.raises(ValueError):
            CodebookMatcher(same_category_score=1.5)

    def test_in_ensemble(self, synonymless_schema):
        """The matcher composes with the standard ensemble."""
        from repro.matching.ensemble import MatcherEnsemble
        from repro.matching.name import NameMatcher
        ensemble = MatcherEnsemble([NameMatcher(), CodebookMatcher()])
        query = QueryGraph.build(keywords=["height"])
        result = ensemble.match(query, synonymless_schema)
        # Name matcher alone cannot see stature; codebook carries it.
        assert result.combined.get("kw:height", "person.stature") >= 0.5

    def test_engine_with_codebook_finds_synonymless_schema(
            self, synonymless_schema):
        from repro.core.engine import DictSchemaSource, SchemrEngine
        from repro.index.documents import document_from_schema
        from repro.index.inverted import InvertedIndex
        from repro.matching.context import ContextMatcher
        from repro.matching.ensemble import MatcherEnsemble
        from repro.matching.name import NameMatcher
        index = InvertedIndex()
        index.add(document_from_schema(synonymless_schema))
        engine = SchemrEngine(
            index=index,
            source=DictSchemaSource({1: synonymless_schema}),
            ensemble=MatcherEnsemble([NameMatcher(), ContextMatcher(),
                                      CodebookMatcher()]))
        # 'person' gets it past candidate extraction; the codebook then
        # scores stature/mass against height/weight.
        results = engine.search(keywords="person height weight")
        assert results
        assert results[0].match_count >= 2
