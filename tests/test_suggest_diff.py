"""Tests for prefix suggestion and schema diff."""

import pytest

from repro.index.documents import Document
from repro.index.inverted import InvertedIndex
from repro.index.suggest import PrefixSuggester
from repro.mapping.diff import RENAME_THRESHOLD, diff_schemas
from repro.model.elements import Attribute, Entity
from repro.model.schema import Schema

from tests.conftest import build_clinic_schema


class TestPrefixSuggester:
    @pytest.fixture
    def suggester(self) -> PrefixSuggester:
        index = InvertedIndex()
        index.add(Document(1, "a", terms=["patient", "patient", "payment"]))
        index.add(Document(2, "b", terms=["patient", "path", "salary"]))
        index.add(Document(3, "c", terms=["patient", "payment"]))
        return PrefixSuggester(index)

    def test_prefix_matches_ranked_by_df(self, suggester):
        suggestions = suggester.suggest("pa")
        terms = [s.term for s in suggestions]
        assert terms[0] == "patient"          # df 3
        assert set(terms) == {"patient", "payment", "path"}

    def test_df_reported(self, suggester):
        top = suggester.suggest("patient")[0]
        assert top.document_frequency == 3

    def test_limit(self, suggester):
        assert len(suggester.suggest("pa", limit=2)) == 2

    def test_no_match(self, suggester):
        assert suggester.suggest("zz") == []

    def test_empty_prefix_returns_nothing(self, suggester):
        assert suggester.suggest("") == []
        assert suggester.suggest("   ") == []

    def test_case_insensitive(self, suggester):
        assert suggester.suggest("PAT")[0].term == "patient"

    def test_len(self, suggester):
        # vocabulary: patient, payment, path, salary
        assert len(suggester) == 4

    def test_http_endpoint(self, small_repository):
        from repro.service.client import SchemrClient
        from repro.service.server import SchemrServer
        server = SchemrServer(small_repository)
        with server.running() as base_url:
            client = SchemrClient(base_url)
            suggestions = client.suggest("pat")
            assert suggestions
            assert suggestions[0][0] == "patient"
            assert suggestions[0][1] >= 1


class TestSchemaDiff:
    def test_no_changes(self, clinic_schema):
        diff = diff_schemas(clinic_schema, build_clinic_schema())
        assert diff.is_empty
        assert "no structural changes" in diff.summary()

    def test_added_and_removed(self, clinic_schema):
        new = build_clinic_schema(name="v2")
        new.entity("patient").add_attribute(Attribute("weight"))
        del new.entity("doctor").attributes[-1]  # drop specialty
        diff = diff_schemas(clinic_schema, new)
        assert diff.added == ["patient.weight"]
        assert diff.removed == ["doctor.specialty"]

    def test_rename_detected(self, clinic_schema):
        new = build_clinic_schema(name="v2")
        attr = new.entity("patient").attribute("height")
        attr.name = "patient_height"
        diff = diff_schemas(clinic_schema, new)
        assert len(diff.renamed) == 1
        rename = diff.renamed[0]
        assert rename.old_path == "patient.height"
        assert rename.new_path == "patient.patient_height"
        assert rename.similarity >= RENAME_THRESHOLD
        # The renamed pair is excluded from plain add/remove lists.
        assert "patient.height" not in diff.removed
        assert "patient.patient_height" not in diff.added

    def test_unrelated_add_remove_not_paired(self, clinic_schema):
        new = build_clinic_schema(name="v2")
        del new.entity("patient").attributes[-1]  # drop gender
        new.entity("case").add_attribute(Attribute("billing_code"))
        diff = diff_schemas(clinic_schema, new)
        assert diff.renamed == []
        assert "patient.gender" in diff.removed
        assert "case.billing_code" in diff.added

    def test_entity_rename(self, clinic_schema):
        new = Schema(name="v2")
        for name, entity in clinic_schema.entities.items():
            renamed = "patients" if name == "patient" else name
            new.add_entity(Entity(renamed, [
                Attribute(a.name, a.data_type) for a in entity.attributes]))
        diff = diff_schemas(clinic_schema, new)
        entity_renames = [r for r in diff.renamed
                          if r.old_path == "patient"]
        assert entity_renames
        assert entity_renames[0].new_path == "patients"

    def test_entity_cannot_rename_into_attribute(self):
        old = Schema(name="old")
        old.add_entity(Entity("height", [Attribute("x")]))
        new = Schema(name="new")
        new.add_entity(Entity("t", [Attribute("height")]))
        diff = diff_schemas(old, new)
        assert all(r.old_path != "height" or "." not in r.new_path
                   for r in diff.renamed)

    def test_type_change_reported(self, clinic_schema):
        new = build_clinic_schema(name="v2")
        new.entity("patient").attribute("height").data_type = "REAL"
        diff = diff_schemas(clinic_schema, new)
        assert ("patient.height", "DECIMAL(5,2)", "REAL") in \
            diff.type_changed

    def test_summary_renders_all_sections(self, clinic_schema):
        new = build_clinic_schema(name="v2")
        new.entity("patient").add_attribute(Attribute("weight"))
        new.entity("patient").attribute("height").data_type = "REAL"
        summary = diff_schemas(clinic_schema, new).summary()
        assert "+ patient.weight" in summary
        assert ": patient.height type" in summary

    def test_cli_diff(self, tmp_path, capsys):
        from repro.cli import main
        from repro.repository.store import SchemaRepository
        db = str(tmp_path / "r.db")
        repo = SchemaRepository(db)
        repo.add_schema(build_clinic_schema(name="v1"))
        v2 = build_clinic_schema(name="v2")
        v2.entity("patient").add_attribute(Attribute("weight"))
        repo.add_schema(v2)
        repo.close()
        assert main(["diff", db, "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "+ patient.weight" in out
