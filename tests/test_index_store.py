"""Unit tests for index persistence (segment format + legacy JSONL)."""

import json

import pytest

from repro.errors import IndexError_
from repro.index.documents import Document
from repro.index.inverted import InvertedIndex
from repro.index.segments import SegmentedIndex
from repro.index.store import load_index, save_index


@pytest.fixture
def index() -> InvertedIndex:
    idx = InvertedIndex()
    idx.add(Document(1, "clinic", summary="health",
                     terms=["patient", "height"]))
    idx.add(Document(2, "hr", terms=["employee", "salary"]))
    return idx


def write_legacy_jsonl(path, index: InvertedIndex) -> None:
    """Produce the pre-segment JSON-lines layout by hand."""
    lines = [json.dumps({"format": 1,
                         "documents": index.document_count,
                         "terms": index.term_count,
                         "generation": index.generation})]
    for document in index.documents():
        lines.append(json.dumps({
            "doc_id": document.doc_id,
            "title": document.title,
            "summary": document.summary,
            "terms": document.terms,
        }))
    path.write_text("\n".join(lines) + "\n")


class TestRoundtrip:
    def test_documents_survive(self, index, tmp_path):
        path = tmp_path / "segment.seg"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.document_count == 2
        assert loaded.document(1).title == "clinic"
        assert loaded.document(1).summary == "health"
        assert loaded.document(2).terms == ["employee", "salary"]

    def test_statistics_survive(self, index, tmp_path):
        path = tmp_path / "segment.seg"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.document_frequency("patient") == \
            index.document_frequency("patient")
        assert loaded.norm(1) == index.norm(1)
        assert loaded.term_count == index.term_count

    def test_loads_as_segmented_index(self, index, tmp_path):
        path = tmp_path / "segment.seg"
        save_index(index, path)
        loaded = load_index(path)
        assert isinstance(loaded, SegmentedIndex)
        # Loaded indexes accept live mutations through the delta.
        loaded.add(Document(3, "late", terms=["patient"]))
        assert loaded.document_frequency("patient") == 2
        loaded.remove(1)
        assert loaded.document_count == 2

    def test_resave_of_loaded_index(self, index, tmp_path):
        """A loaded (and mutated) segmented index re-saves faithfully."""
        first = tmp_path / "first.seg"
        save_index(index, first)
        loaded = load_index(first)
        loaded.replace(Document(2, "hr2", terms=["employee", "bonus"]))
        second = tmp_path / "second.seg"
        save_index(loaded, second)
        again = load_index(second)
        assert again.document_count == 2
        assert again.document(2).title == "hr2"
        assert again.document_frequency("salary") == 0
        assert again.document_frequency("bonus") == 1

    def test_empty_index_roundtrips(self, tmp_path):
        path = tmp_path / "empty.seg"
        save_index(InvertedIndex(), path)
        assert load_index(path).document_count == 0

    def test_atomic_write_leaves_no_tmp(self, index, tmp_path):
        path = tmp_path / "segment.seg"
        save_index(index, path)
        assert not (tmp_path / "segment.seg.tmp").exists()

    def test_directory_roundtrip(self, index, tmp_path):
        """A segment directory loads as a multi-segment index."""
        segdir = tmp_path / "segments"
        live = SegmentedIndex.open(segdir, create=True)
        for document in index.documents():
            live.add(document)
        live.flush()
        loaded = load_index(segdir)
        assert isinstance(loaded, SegmentedIndex)
        assert loaded.document_count == 2
        assert loaded.norm(1) == index.norm(1)


class TestLegacyCompat:
    def test_legacy_jsonl_still_loads(self, index, tmp_path):
        path = tmp_path / "old.jsonl"
        write_legacy_jsonl(path, index)
        with pytest.warns(DeprecationWarning, match="legacy JSON-lines"):
            loaded = load_index(path)
        assert loaded.document_count == 2
        assert loaded.document(1).terms == ["patient", "height"]
        assert loaded.norm(2) == index.norm(2)

    def test_new_saves_are_not_jsonl(self, index, tmp_path):
        path = tmp_path / "segment.seg"
        save_index(index, path)
        assert path.read_bytes()[:8] == b"SCHMRSEG"


class TestCorruption:
    def test_missing_file(self, tmp_path):
        with pytest.raises(IndexError_, match="does not exist"):
            load_index(tmp_path / "ghost.seg")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.seg"
        path.write_text("")
        with pytest.raises(IndexError_, match="empty"):
            load_index(path)

    def test_corrupt_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(IndexError_, match="corrupt header"):
            load_index(path)

    def test_wrong_legacy_format_version(self, tmp_path):
        path = tmp_path / "old.jsonl"
        path.write_text(json.dumps({"format": 99, "documents": 0}) + "\n")
        with pytest.raises(IndexError_, match="unsupported format"):
            load_index(path)

    def test_corrupt_legacy_record(self, index, tmp_path):
        path = tmp_path / "old.jsonl"
        write_legacy_jsonl(path, index)
        lines = path.read_text().splitlines()
        lines[1] = '{"doc_id": 1}'  # missing required keys
        path.write_text("\n".join(lines) + "\n")
        with pytest.warns(DeprecationWarning):
            with pytest.raises(IndexError_, match="corrupt at line 2"):
                load_index(path)

    def test_truncated_legacy_file_detected(self, index, tmp_path):
        path = tmp_path / "old.jsonl"
        write_legacy_jsonl(path, index)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop last doc
        with pytest.warns(DeprecationWarning):
            with pytest.raises(IndexError_, match="truncated"):
                load_index(path)

    def test_truncated_segment_detected(self, index, tmp_path):
        path = tmp_path / "segment.seg"
        save_index(index, path)
        blob = path.read_bytes()
        path.write_bytes(blob[:-16])
        with pytest.raises(IndexError_, match="truncated"):
            load_index(path)

    def test_corrupt_segment_header_detected(self, index, tmp_path):
        path = tmp_path / "segment.seg"
        save_index(index, path)
        blob = bytearray(path.read_bytes())
        blob[20] ^= 0xFF  # flip a header byte past the crc field
        path.write_bytes(bytes(blob))
        with pytest.raises(IndexError_, match="checksum"):
            load_index(path)

    def test_directory_without_manifest(self, tmp_path):
        empty = tmp_path / "segments"
        empty.mkdir()
        with pytest.raises(IndexError_, match="MANIFEST"):
            load_index(empty)
