"""Unit tests for index persistence."""

import json

import pytest

from repro.errors import IndexError_
from repro.index.documents import Document
from repro.index.inverted import InvertedIndex
from repro.index.store import load_index, save_index


@pytest.fixture
def index() -> InvertedIndex:
    idx = InvertedIndex()
    idx.add(Document(1, "clinic", summary="health",
                     terms=["patient", "height"]))
    idx.add(Document(2, "hr", terms=["employee", "salary"]))
    return idx


class TestRoundtrip:
    def test_documents_survive(self, index, tmp_path):
        path = tmp_path / "segment.jsonl"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.document_count == 2
        assert loaded.document(1).title == "clinic"
        assert loaded.document(1).summary == "health"
        assert loaded.document(2).terms == ["employee", "salary"]

    def test_statistics_survive(self, index, tmp_path):
        path = tmp_path / "segment.jsonl"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.document_frequency("patient") == \
            index.document_frequency("patient")
        assert loaded.norm(1) == index.norm(1)
        assert loaded.term_count == index.term_count

    def test_empty_index_roundtrips(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        save_index(InvertedIndex(), path)
        assert load_index(path).document_count == 0

    def test_atomic_write_leaves_no_tmp(self, index, tmp_path):
        path = tmp_path / "segment.jsonl"
        save_index(index, path)
        assert not (tmp_path / "segment.jsonl.tmp").exists()


class TestCorruption:
    def test_missing_file(self, tmp_path):
        with pytest.raises(IndexError_, match="does not exist"):
            load_index(tmp_path / "ghost.jsonl")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(IndexError_, match="empty"):
            load_index(path)

    def test_corrupt_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(IndexError_, match="corrupt header"):
            load_index(path)

    def test_wrong_format_version(self, tmp_path):
        path = tmp_path / "old.jsonl"
        path.write_text(json.dumps({"format": 99, "documents": 0}) + "\n")
        with pytest.raises(IndexError_, match="unsupported format"):
            load_index(path)

    def test_corrupt_record(self, index, tmp_path):
        path = tmp_path / "segment.jsonl"
        save_index(index, path)
        lines = path.read_text().splitlines()
        lines[1] = '{"doc_id": 1}'  # missing required keys
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(IndexError_, match="corrupt at line 2"):
            load_index(path)

    def test_truncated_file_detected(self, index, tmp_path):
        path = tmp_path / "segment.jsonl"
        save_index(index, path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop last doc
        with pytest.raises(IndexError_, match="truncated"):
            load_index(path)
