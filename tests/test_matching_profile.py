"""Tests for the match-phase acceleration layer.

Covers :class:`SchemaMatchProfile` correctness against the from-scratch
computations, :class:`ProfileStore` cache behaviour, the golden
equivalence of the cold / profiled / parallel engine paths, the
one-adjacency-build-per-candidate regression, and the ensemble's cheap
container properties.
"""

import pytest

import repro.matching.context as context_mod
import repro.matching.profile as profile_mod
import repro.scoring.neighborhood as neighborhood_mod
from repro.core.config import SchemrConfig
from repro.core.engine import DictSchemaSource, SchemrEngine
from repro.errors import MatchError, RepositoryError, SchemaError
from repro.index.documents import document_from_schema
from repro.index.inverted import InvertedIndex
from repro.matching.context import element_context
from repro.matching.datatype import type_family
from repro.matching.ensemble import MatcherEnsemble
from repro.matching.normalize import normalize_words
from repro.matching.profile import (
    MatchScratch,
    ProfileStore,
    SchemaMatchProfile,
)
from repro.model.graph import entity_adjacency
from repro.scoring.neighborhood import NeighborhoodIndex

from tests.conftest import (
    PAPER_KEYWORDS,
    build_clinic_schema,
    build_conservation_schema,
    build_hr_schema,
)


@pytest.fixture
def clinic_profile(clinic_schema) -> SchemaMatchProfile:
    clinic_schema.schema_id = 1
    return SchemaMatchProfile.build(clinic_schema)


class TestSchemaMatchProfile:
    def test_element_paths_in_schema_order(self, clinic_schema,
                                           clinic_profile):
        assert clinic_profile.element_paths == \
            [ref.path for ref in clinic_schema.elements()]

    def test_words_match_from_scratch_normalization(self, clinic_schema,
                                                    clinic_profile):
        for ref in clinic_schema.elements():
            assert clinic_profile.words(ref.path) == \
                tuple(normalize_words(ref.local_name, expand=True))
            assert clinic_profile.words(ref.path, expand=False) == \
                tuple(normalize_words(ref.local_name, expand=False))

    def test_unknown_path_rejected(self, clinic_profile):
        with pytest.raises(SchemaError):
            clinic_profile.words("no.such.element")

    def test_context_terms_match_element_context(self, clinic_schema,
                                                 clinic_profile):
        adjacency = entity_adjacency(clinic_schema)
        for ref in clinic_schema.elements():
            assert clinic_profile.context_terms[ref.path] == \
                element_context(clinic_schema, ref, adjacency)

    def test_component_map_matches_neighborhood_index(self, clinic_schema,
                                                      clinic_profile):
        cold = NeighborhoodIndex(clinic_schema)
        fast = clinic_profile.neighborhood_index()
        entities = list(clinic_schema.entities)
        for a in entities:
            for b in entities:
                assert fast.relation(a, b) == cold.relation(a, b)

    def test_neighborhood_index_is_cached(self, clinic_profile):
        assert clinic_profile.neighborhood_index() is \
            clinic_profile.neighborhood_index()

    def test_type_families_match(self, clinic_schema, clinic_profile):
        for entity in clinic_schema.entities.values():
            for attr in entity.attributes:
                path = f"{entity.name}.{attr.name}"
                assert clinic_profile.type_families[path] == \
                    type_family(attr.data_type)

    def test_entity_attr_words(self, clinic_schema, clinic_profile):
        for entity in clinic_schema.entities.values():
            expected = set()
            for attr in entity.attributes:
                expected.update(normalize_words(attr.name))
            assert clinic_profile.entity_attr_words[entity.name] == expected

    def test_serialization_round_trip(self, clinic_profile):
        restored = SchemaMatchProfile.from_dict(clinic_profile.to_dict())
        assert restored.schema_id == clinic_profile.schema_id
        assert restored.element_paths == clinic_profile.element_paths
        assert restored.words_expanded == clinic_profile.words_expanded
        assert restored.words_plain == clinic_profile.words_plain
        assert restored.context_terms == clinic_profile.context_terms
        assert restored.adjacency == clinic_profile.adjacency
        assert restored.component_of == clinic_profile.component_of
        assert restored.type_families == clinic_profile.type_families
        assert restored.entity_attr_words == clinic_profile.entity_attr_words
        assert restored.word_grams == clinic_profile.word_grams

    def test_round_trip_is_json_safe(self, clinic_profile):
        import json
        payload = json.dumps(clinic_profile.to_dict())
        restored = SchemaMatchProfile.from_dict(json.loads(payload))
        assert restored.element_paths == clinic_profile.element_paths

    def test_from_dict_missing_key_rejected(self):
        with pytest.raises(SchemaError, match="missing key"):
            SchemaMatchProfile.from_dict({"schema_id": 1})


class _CountingSource(DictSchemaSource):
    def __init__(self, schemas):
        super().__init__(schemas)
        self.calls = 0

    def get_schema(self, schema_id):
        self.calls += 1
        return super().get_schema(schema_id)


def _schemas_by_id():
    schemas = {}
    for i, builder in enumerate([build_clinic_schema, build_hr_schema,
                                 build_conservation_schema], start=1):
        schema = builder()
        schema.schema_id = i
        schemas[i] = schema
    return schemas


class TestProfileStore:
    def test_read_through_get_schema(self):
        source = _CountingSource(_schemas_by_id())
        store = ProfileStore(source)
        assert store.get_schema(1).name == "clinic_emr"
        assert store.get_schema(1).name == "clinic_emr"
        assert source.calls == 1  # second read was a cache hit
        assert store.hits == 1 and store.misses == 1

    def test_profile_and_schema_share_one_entry(self):
        source = _CountingSource(_schemas_by_id())
        store = ProfileStore(source)
        profile = store.get_profile(2)
        assert profile.schema_id == 2
        assert store.get_schema(2).schema_id == 2
        assert source.calls == 1

    def test_put_is_eager(self):
        source = _CountingSource(_schemas_by_id())
        store = ProfileStore(source)
        schema = source.get_schema(3)
        source.calls = 0
        store.put(schema)
        assert 3 in store
        assert store.get_profile(3).schema_id == 3
        assert source.calls == 0  # served from the eager entry

    def test_put_requires_schema_id(self):
        store = ProfileStore(DictSchemaSource({}))
        with pytest.raises(RepositoryError):
            store.put(build_clinic_schema())  # no id assigned

    def test_invalidate(self):
        store = ProfileStore(DictSchemaSource(_schemas_by_id()))
        store.get_profile(1)
        assert store.invalidate(1) is True
        assert store.invalidate(1) is False
        assert 1 not in store

    def test_clear(self):
        store = ProfileStore(DictSchemaSource(_schemas_by_id()))
        store.get_profile(1)
        store.get_profile(2)
        store.clear()
        assert len(store) == 0

    def test_lru_eviction(self):
        store = ProfileStore(DictSchemaSource(_schemas_by_id()), capacity=2)
        store.get_profile(1)
        store.get_profile(2)
        store.get_schema(1)   # touch 1 so 2 is the LRU entry
        store.get_profile(3)  # evicts 2
        assert 1 in store and 3 in store
        assert 2 not in store
        assert len(store) == 2

    def test_bad_capacity_rejected(self):
        with pytest.raises(RepositoryError):
            ProfileStore(DictSchemaSource({}), capacity=0)


def _build_engine(config=None, profiled=False):
    schemas = _schemas_by_id()
    index = InvertedIndex()
    for schema in schemas.values():
        index.add(document_from_schema(schema))
    source = DictSchemaSource(schemas)
    if profiled:
        source = ProfileStore(source)
    return SchemrEngine(index=index, source=source, config=config)


def _result_fingerprint(results):
    return [(r.schema_id, r.name, r.score, r.coarse_score, r.match_count,
             r.best_anchor, r.element_scores,
             [(m.query_label, m.element_path, m.score)
              for m in r.element_matches])
            for r in results]


class TestGoldenEquivalence:
    QUERIES = [
        {"keywords": PAPER_KEYWORDS},
        {"keywords": "employee salary department"},
        {"keywords": "species site observation date"},
        {"fragment": "CREATE TABLE patient (height DECIMAL, "
                     "gender CHAR(1));"},
        {"keywords": "diagnosis",
         "fragment": "CREATE TABLE patient (height DECIMAL);"},
    ]

    def test_profiled_path_matches_cold_path(self):
        cold = _build_engine()
        fast = _build_engine(profiled=True)
        for query in self.QUERIES:
            assert _result_fingerprint(fast.search(**query)) == \
                _result_fingerprint(cold.search(**query))

    def test_parallel_path_matches_cold_path(self):
        cold = _build_engine()
        parallel = _build_engine(profiled=True,
                                 config=SchemrConfig(match_workers=4))
        try:
            for query in self.QUERIES:
                assert _result_fingerprint(parallel.search(**query)) == \
                    _result_fingerprint(cold.search(**query))
        finally:
            parallel.close()

    def test_parallel_without_profiles_matches_cold_path(self):
        cold = _build_engine()
        with _build_engine(config=SchemrConfig(match_workers=3)) as parallel:
            for query in self.QUERIES:
                assert _result_fingerprint(parallel.search(**query)) == \
                    _result_fingerprint(cold.search(**query))

    def test_full_ensemble_equivalence(self):
        from repro.matching.datatype import DataTypeMatcher
        from repro.matching.exact import ExactMatcher
        from repro.matching.structure import StructureMatcher
        from repro.matching.synonym import SynonymMatcher
        ensemble = MatcherEnsemble(matchers=[
            ExactMatcher(), SynonymMatcher(), DataTypeMatcher(),
            StructureMatcher(),
        ])
        schemas = _schemas_by_id()
        query_kwargs = {"keywords": "patient stature sex",
                        "fragment": "CREATE TABLE patient "
                                    "(height DECIMAL, gender CHAR(1));"}
        index = InvertedIndex()
        for schema in schemas.values():
            index.add(document_from_schema(schema))
        cold = SchemrEngine(index=index,
                            source=DictSchemaSource(schemas),
                            ensemble=ensemble)
        fast = SchemrEngine(index=index,
                            source=ProfileStore(DictSchemaSource(schemas)),
                            ensemble=ensemble)
        assert _result_fingerprint(fast.search(**query_kwargs)) == \
            _result_fingerprint(cold.search(**query_kwargs))

    def test_matcher_level_equivalence(self, clinic_schema):
        from repro.model.query import QueryGraph
        clinic_schema.schema_id = 1
        profile = SchemaMatchProfile.build(clinic_schema)
        query = QueryGraph.build(keywords=PAPER_KEYWORDS)
        ensemble = MatcherEnsemble.default()
        cold = ensemble.match(query, clinic_schema)
        fast = ensemble.match(query, clinic_schema,
                              profile=profile, scratch=MatchScratch())
        assert cold.combined.row_labels == fast.combined.row_labels
        assert cold.combined.col_labels == fast.combined.col_labels
        assert (cold.combined.values == fast.combined.values).all()
        for name, matrix in cold.per_matcher.items():
            assert (matrix.values == fast.per_matcher[name].values).all()


class TestAdjacencySharing:
    def test_one_adjacency_build_per_candidate(self, monkeypatch):
        """With profiles, the FK adjacency is built once per candidate
        (at ingest) instead of twice per candidate per query (context
        matcher + tightness scorer)."""
        calls = {"n": 0}
        real = entity_adjacency

        def counting(schema):
            calls["n"] += 1
            return real(schema)

        for module in (profile_mod, context_mod, neighborhood_mod):
            monkeypatch.setattr(module, "entity_adjacency", counting)

        engine = _build_engine(profiled=True)
        assert calls["n"] == 0  # profiles are built lazily, none yet
        engine.search(keywords="name gender salary species")
        candidates = engine.last_trace.phase("schema_matching").items_in
        assert candidates > 1
        assert calls["n"] == candidates  # one build per candidate
        engine.search(keywords="name gender salary species")
        assert calls["n"] == candidates  # repeat queries build nothing

    def test_cold_path_builds_twice_per_candidate(self, monkeypatch):
        calls = {"n": 0}
        real = entity_adjacency

        def counting(schema):
            calls["n"] += 1
            return real(schema)

        for module in (profile_mod, context_mod, neighborhood_mod):
            monkeypatch.setattr(module, "entity_adjacency", counting)

        engine = _build_engine()
        engine.search(keywords="name gender salary species")
        candidates = engine.last_trace.phase("schema_matching").items_in
        assert candidates > 1
        assert calls["n"] == 2 * candidates


class TestEnsembleCheapProperties:
    def test_matchers_not_copied_per_access(self):
        ensemble = MatcherEnsemble.default()
        assert ensemble.matchers is ensemble.matchers
        assert isinstance(ensemble.matchers, tuple)

    def test_matcher_names_not_copied_per_access(self):
        ensemble = MatcherEnsemble.default()
        assert ensemble.matcher_names is ensemble.matcher_names

    def test_weights_view_is_live_and_read_only(self):
        ensemble = MatcherEnsemble.default()
        view = ensemble.weights
        assert view is ensemble.weights
        ensemble.set_weights({"name": 2.0})
        assert view["name"] == 2.0  # live view reflects the update
        with pytest.raises(TypeError):
            view["name"] = 5.0  # type: ignore[index]

    def test_rejected_update_leaves_weights_untouched(self):
        ensemble = MatcherEnsemble.default()
        before = dict(ensemble.weights)
        with pytest.raises(MatchError):
            ensemble.set_weights({"name": 0.0, "context": 0.0})
        assert dict(ensemble.weights) == before
