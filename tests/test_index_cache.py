"""Unit tests for repro.index.cache (the phase-1 query cache)."""

import pytest

from repro.index.cache import QueryCache
from repro.index.searcher import IndexHit


def _hits(*doc_ids: int) -> list[IndexHit]:
    return [IndexHit(doc_id=d, score=float(10 - d), matched_terms=1)
            for d in doc_ids]


class TestQueryCache:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            QueryCache(0)

    def test_miss_then_hit(self):
        cache = QueryCache(4)
        key = QueryCache.make_key(["patient"], 10, 0)
        assert cache.get(key) is None
        cache.put(key, _hits(1, 2))
        assert cache.get(key) == _hits(1, 2)
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_get_returns_a_fresh_list(self):
        cache = QueryCache(4)
        key = QueryCache.make_key(["a"], 5, 0)
        cache.put(key, _hits(1, 2, 3))
        first = cache.get(key)
        first.pop()
        assert cache.get(key) == _hits(1, 2, 3)

    def test_lru_eviction_order(self):
        cache = QueryCache(2)
        k1 = QueryCache.make_key(["a"], 5, 0)
        k2 = QueryCache.make_key(["b"], 5, 0)
        k3 = QueryCache.make_key(["c"], 5, 0)
        cache.put(k1, _hits(1))
        cache.put(k2, _hits(2))
        cache.get(k1)          # k1 is now most recently used
        cache.put(k3, _hits(3))
        assert k1 in cache
        assert k2 not in cache
        assert k3 in cache
        assert len(cache) == 2

    def test_generation_is_part_of_the_key(self):
        cache = QueryCache(4)
        old = QueryCache.make_key(["a"], 5, 1)
        new = QueryCache.make_key(["a"], 5, 2)
        cache.put(old, _hits(1))
        assert cache.get(new) is None

    def test_evict_stale_drops_old_generations(self):
        cache = QueryCache(8)
        cache.put(QueryCache.make_key(["a"], 5, 1), _hits(1))
        cache.put(QueryCache.make_key(["b"], 5, 1), _hits(2))
        cache.put(QueryCache.make_key(["a"], 5, 3), _hits(3))
        assert cache.evict_stale(3) == 2
        assert len(cache) == 1
        assert cache.get(QueryCache.make_key(["a"], 5, 3)) == _hits(3)

    def test_top_n_is_part_of_the_key(self):
        cache = QueryCache(4)
        cache.put(QueryCache.make_key(["a"], 5, 0), _hits(1))
        assert cache.get(QueryCache.make_key(["a"], 6, 0)) is None

    def test_clear(self):
        cache = QueryCache(4)
        cache.put(QueryCache.make_key(["a"], 5, 0), _hits(1))
        cache.clear()
        assert len(cache) == 0


class TestEvictionCounters:
    def test_lru_overflow_counts_evictions(self):
        cache = QueryCache(capacity=2)
        for i in range(4):
            cache.put(("k", i), _hits(i))
        assert cache.evictions == 2
        assert cache.stale_evictions == 0

    def test_evict_stale_counts_separately(self):
        cache = QueryCache(capacity=8)
        cache.put(QueryCache.make_key(["a"], 10, generation=1), _hits(1))
        cache.put(QueryCache.make_key(["b"], 10, generation=1), _hits(2))
        cache.put(QueryCache.make_key(["c"], 10, generation=2), _hits(3))
        assert cache.evict_stale(generation=2) == 2
        assert cache.stale_evictions == 2
        assert cache.evictions == 0

    def test_replacing_a_key_is_not_an_eviction(self):
        cache = QueryCache(capacity=2)
        cache.put("k", _hits(1))
        cache.put("k", _hits(2))
        assert cache.evictions == 0


class TestQueryCacheThreadSafety:
    def test_concurrent_mixed_operations_stay_consistent(self):
        """Hammer get/put/evict_stale from several threads.

        The cache is shared between concurrent searches and the
        indexer's stale sweeps; without its lock this loses counter
        increments or corrupts the OrderedDict mid-move_to_end.
        """
        import threading

        cache = QueryCache(capacity=16)
        errors: list[BaseException] = []
        start = threading.Barrier(4)

        def worker(worker_id: int) -> None:
            try:
                start.wait()
                for i in range(500):
                    key = QueryCache.make_key(
                        [f"t{worker_id}", f"q{i % 8}"], 10,
                        generation=i % 3)
                    cache.put(key, _hits(i % 5))
                    cache.get(key)
                    cache.get(("absent", worker_id, i))
                    if i % 50 == 0:
                        cache.evict_stale(generation=i % 3)
                    len(cache)
                    cache.hit_rate
            except BaseException as exc:  # lint: fault-boundary (collected errors re-raised below)
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,))
                   for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        # Every lookup was counted exactly once: 2 gets per iteration.
        assert cache.hits + cache.misses == 4 * 500 * 2
        assert len(cache) <= 16
