"""Chaos suite: fault injection against the engine, store, and server.

Determinism rules: clocks are injected and advanced by hand (a "slow"
phase is a hook that moves the fake clock, not a sleep), fault plans are
bounded, and every test disarms the global injector in teardown.
"""

from __future__ import annotations

import sqlite3
import threading
import urllib.error
import urllib.request
import xml.etree.ElementTree as ET

import pytest

from repro.core.config import SchemrConfig
from repro.core.engine import SchemrEngine
from repro.errors import RepositoryError, ServiceError
from repro.repository.store import SchemaRepository
from repro.resilience import (STATE_OPEN, FaultInjector, RetryPolicy)
from repro.resilience.faults import FAULTS
from repro.service.server import SchemrServer
from tests.conftest import (build_clinic_schema, build_conservation_schema,
                            build_hr_schema)


class FakeClock:
    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(autouse=True)
def clean_faults():
    FAULTS.reset()
    yield
    FAULTS.reset()


def make_repo() -> SchemaRepository:
    repo = SchemaRepository.in_memory()
    repo.add_schema(build_clinic_schema())
    repo.add_schema(build_hr_schema())
    repo.add_schema(build_conservation_schema())
    return repo


def make_engine(repo: SchemaRepository, clock: FakeClock,
                **config_kwargs) -> SchemrEngine:
    config = SchemrConfig(**config_kwargs)
    indexer = repo.indexer()
    indexer.refresh()
    return SchemrEngine(index=indexer.index, source=repo.profile_store(),
                        config=config, clock=clock)


KEYWORDS = "patient height gender diagnosis"


# -- engine degradation under budget pressure --------------------------------

class TestEngineDegradation:
    def test_no_budget_means_no_degradation(self):
        repo = make_repo()
        engine = make_engine(repo, FakeClock())
        results = engine.search(keywords=KEYWORDS)
        assert results
        profile = engine.last_profile
        assert profile.degradation == "none"
        assert profile.degradation_level == 0
        assert profile.budget_seconds is None
        repo.close()

    @pytest.mark.parametrize("burn,expected", [
        (0.6, "reduced_pool"),   # 40% budget left after phase 1
        (0.8, "name_only"),      # 20% left
        (0.95, "phase1_only"),   # 5% left
    ])
    def test_ladder_levels_from_slow_phase1(self, burn, expected):
        clock = FakeClock()
        repo = make_repo()
        engine = make_engine(repo, clock, search_budget_seconds=1.0)
        FAULTS.inject("engine.phase1",
                      hook=lambda: clock.advance(burn), times=1)
        results = engine.search(keywords=KEYWORDS)
        assert results, "degraded search must still answer"
        profile = engine.last_profile
        assert profile.degradation == expected
        assert profile.budget_seconds == 1.0
        # the paper's query still finds the clinic schema first
        assert results[0].name == "clinic_emr"
        repo.close()

    def test_deadline_expiry_mid_match_loop_falls_back_to_phase1(self):
        clock = FakeClock()
        repo = make_repo()
        engine = make_engine(repo, clock, search_budget_seconds=1.0)
        # Phase 1 is cheap; the first candidate match burns the budget,
        # so the per-candidate deadline check trips inside the loop
        # ("name" pulls all three fixture schemas into the pool).
        FAULTS.inject("engine.match_one",
                      hook=lambda: clock.advance(2.0), times=1)
        results = engine.search(keywords="name")
        assert results
        profile = engine.last_profile
        assert profile.degradation == "phase1_only"
        assert profile.deadline_expired is True
        # phase-1 fallback carries index-only data
        assert all(r.entity_count == 0 for r in results)
        repo.close()

    def test_degraded_metrics_are_counted(self):
        clock = FakeClock()
        repo = make_repo()
        config = dict(search_budget_seconds=1.0, telemetry_enabled=True)
        engine = make_engine(repo, clock, **config)
        FAULTS.inject("engine.phase1",
                      hook=lambda: clock.advance(0.95), times=1)
        engine.search(keywords=KEYWORDS)
        text = engine.telemetry.metrics.to_prometheus_text()
        assert 'schemr_degraded_searches_total{level="phase1_only"} 1' \
            in text
        repo.close()


# -- matcher and source breakers ---------------------------------------------

class TestBreakerIntegration:
    def test_failing_matcher_is_cut_out_not_fatal(self):
        repo = make_repo()
        engine = make_engine(repo, FakeClock(),
                             breaker_failure_threshold=2)
        FAULTS.inject("matcher.context", error=RuntimeError("chaos"))
        results = engine.search(keywords=KEYWORDS)
        assert results, "name matcher alone must still answer"
        assert engine.last_profile.degradation == "none"
        repo.close()

    def test_matcher_breaker_opens_after_threshold(self):
        clock = FakeClock()
        repo = make_repo()
        engine = make_engine(repo, clock, breaker_failure_threshold=2)
        FAULTS.inject("matcher.context", error=RuntimeError("chaos"))
        engine.search(keywords="name")  # 3 candidates -> 3 failures
        breaker = engine.breakers["matcher.context"]
        assert breaker.state == STATE_OPEN
        # open breaker: the matcher is skipped without being called
        hits_before = FAULTS.hits("matcher.context")
        engine.search(keywords="name")
        assert FAULTS.hits("matcher.context") == hits_before
        repo.close()

    def test_matcher_breaker_recovers_through_half_open_probe(self):
        clock = FakeClock()
        repo = make_repo()
        engine = make_engine(repo, clock, breaker_failure_threshold=2,
                             breaker_reset_seconds=30.0)
        FAULTS.inject("matcher.context", error=RuntimeError("chaos"),
                      times=2)
        engine.search(keywords="name")  # 2 injected failures trip it
        breaker = engine.breakers["matcher.context"]
        assert breaker.state == STATE_OPEN
        clock.advance(31.0)
        engine.search(keywords="name")  # probe succeeds (plan spent)
        assert breaker.state == "closed"
        repo.close()

    def test_source_outage_degrades_to_phase1_not_empty(self):
        repo = make_repo()
        engine = make_engine(repo, FakeClock(),
                             breaker_failure_threshold=2)
        # Evict cached profiles so candidate fetches go to the source,
        # then fail every lookup: the response must be the phase-1
        # ranking, never an empty page masquerading as "no match".
        repo.profile_store().clear()
        FAULTS.inject("profile_store.lookup",
                      error=RuntimeError("store down"))
        results = engine.search(keywords=KEYWORDS)
        assert results
        assert engine.last_profile.degradation == "phase1_only"
        assert results[0].name == "clinic_emr"
        repo.close()


# -- repository fault handling -----------------------------------------------

class TestStoreResilience:
    def test_transient_lock_is_retried(self):
        repo = SchemaRepository.in_memory()
        FAULTS.inject("store.add_schema",
                      error=sqlite3.OperationalError("database is locked"),
                      times=2)
        schema_id = repo.add_schema(build_clinic_schema())
        assert schema_id == 1
        assert repo.retry_count == 2
        assert repo.schema_count == 1
        repo.close()

    def test_permanent_error_is_not_retried(self):
        repo = SchemaRepository.in_memory()
        FAULTS.inject("store.get_schema",
                      error=sqlite3.OperationalError("disk I/O error"),
                      times=1)
        repo.add_schema(build_clinic_schema())
        with pytest.raises(sqlite3.OperationalError):
            repo.get_schema(1)
        assert repo.retry_count == 0
        repo.close()

    def test_wal_and_busy_timeout_pragmas(self, tmp_path):
        repo = SchemaRepository(tmp_path / "r.db",
                                busy_timeout_seconds=2.5)
        mode = repo.connection.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"
        timeout = repo.connection.execute(
            "PRAGMA busy_timeout").fetchone()[0]
        assert timeout == 2500
        repo.close()

    def test_in_memory_skips_wal(self):
        repo = SchemaRepository.in_memory()
        mode = repo.connection.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "memory"
        repo.close()

    def test_corrupt_row_mid_iteration(self):
        repo = make_repo()
        repo.connection.execute(
            "UPDATE schemas SET payload = '{not json' WHERE schema_id = 2")
        repo.connection.commit()
        with pytest.raises(RepositoryError, match="schema 2"):
            list(repo.iter_schemas())
        survivors = list(repo.iter_schemas(skip_corrupt=True))
        assert sorted(s.name for s in survivors) == [
            "clinic_emr", "conservation_monitoring"]
        repo.close()

    def test_rebuild_survives_corrupt_row(self):
        repo = make_repo()
        indexer = repo.indexer()
        indexer.refresh()
        repo.connection.execute(
            "UPDATE schemas SET payload = 'garbage' WHERE schema_id = 3")
        repo.connection.commit()
        assert indexer.rebuild() == 2
        assert indexer.index.document_count == 2
        repo.close()

    def test_failed_refresh_keeps_cursor_and_recovers(self):
        repo = make_repo()
        indexer = repo.indexer()
        FAULTS.inject("indexer.refresh", error=RuntimeError("chaos"),
                      times=1)
        total = indexer.run_scheduled(interval_seconds=0.001,
                                      max_refreshes=2)
        # first refresh died before applying; the cursor did not move,
        # so the second applied the full batch
        assert total == 3
        assert indexer.consecutive_failures == 0
        assert indexer.last_change_id == 3
        repo.close()


# -- cache/profile interactions under mutation -------------------------------

class TestCacheUnderMutation:
    def test_query_cache_ignored_after_generation_bump(self):
        repo = make_repo()
        engine = make_engine(repo, FakeClock(), query_cache_size=16)
        cache = engine.searcher.query_cache
        engine.search(keywords="employee salary")
        assert len(cache) == 1

        def mutate() -> None:
            schema = build_hr_schema("hr_shadow_payroll")
            repo.add_schema(schema)
            repo.indexer().refresh()

        # The mutation lands right before phase 1 reads the index: the
        # cached entry's generation is stale, so the search must not
        # serve it.
        FAULTS.inject("engine.phase1", hook=mutate, times=1)
        hits_before = cache.hits
        results = engine.search(keywords="employee salary")
        assert cache.hits == hits_before
        assert {r.name for r in results} >= {"hr_payroll",
                                             "hr_shadow_payroll"}
        # same query again (no mutation): now it is a clean cache hit
        engine.search(keywords="employee salary")
        assert cache.hits == hits_before + 1
        repo.close()

    def test_profile_invalidation_racing_refresh(self):
        repo = make_repo()
        profile_store = repo.profile_store()
        indexer = repo.indexer()
        indexer.refresh()
        updated = build_clinic_schema("clinic_emr_v2")
        updated.schema_id = 1
        repo.update_schema(updated)

        # Mid-refresh (site fires at batch start), a competing thread's
        # invalidation lands for the schema being refreshed.
        FAULTS.inject("indexer.refresh",
                      hook=lambda: profile_store.invalidate(1), times=1)
        indexer.refresh()
        # the refresh re-put the updated schema; the store must serve
        # the new version, not a resurrected stale profile
        assert profile_store.get_schema(1).name == "clinic_emr_v2"
        assert 1 in profile_store
        repo.close()


# -- server chaos -------------------------------------------------------------

def _get(url: str) -> tuple[int, dict, str]:
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return (response.status, dict(response.headers),
                    response.read().decode())
    except urllib.error.HTTPError as err:
        return err.code, dict(err.headers), err.read().decode()


class TestServerChaos:
    @pytest.fixture
    def server(self):
        repo = make_repo()
        server = SchemrServer(repo, config=SchemrConfig(
            telemetry_enabled=True, max_concurrent_searches=1,
            admission_queue_size=0, admission_timeout_seconds=0.05,
            request_timeout_seconds=1.0))
        server.start()
        yield server
        try:
            server.stop()
        finally:
            repo.close()

    def test_healthz_and_readyz_ok(self, server):
        status, _, _ = _get(f"{server.base_url}/healthz")
        assert status == 200
        status, _, body = _get(f"{server.base_url}/readyz")
        assert status == 200
        assert "<ready/>" in body

    def test_readyz_503_when_breaker_open(self, server):
        breaker = server.engine.store_breaker
        for _ in range(5):
            breaker.record_failure()
        status, headers, body = _get(f"{server.base_url}/readyz")
        assert status == 503
        assert "schema_source" in body
        assert int(headers["Retry-After"]) >= 1
        breaker.reset()
        status, _, _ = _get(f"{server.base_url}/readyz")
        assert status == 200

    def test_overload_sheds_with_429_and_retry_after(self, server):
        gate = threading.Event()
        entered = threading.Event()

        def block() -> None:
            entered.set()
            gate.wait(timeout=10)

        FAULTS.inject("engine.phase1", hook=block, times=1)
        first: dict = {}

        def slow_search() -> None:
            first["response"] = _get(
                f"{server.base_url}/search?keywords=patient")

        thread = threading.Thread(target=slow_search)
        thread.start()
        try:
            assert entered.wait(timeout=10), "first search never started"
            status, headers, body = _get(
                f"{server.base_url}/search?keywords=patient")
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            assert 'status="429"' in body
        finally:
            gate.set()
            thread.join(timeout=10)
        assert first["response"][0] == 200

    def test_search_response_carries_degradation(self, server):
        FAULTS.inject("matcher.name", error=RuntimeError("chaos"))
        FAULTS.inject("matcher.context", error=RuntimeError("chaos"))
        status, _, body = _get(
            f"{server.base_url}/search?keywords=patient+height")
        assert status == 200
        root = ET.fromstring(body)
        assert root.get("degradation") == "phase1_only"
        assert int(root.get("count")) > 0

    def test_sqlite_outage_maps_to_503(self, server):
        FAULTS.inject(
            "store.get_schema",
            error=sqlite3.OperationalError("attempt to write a readonly "
                                           "database"))
        status, _, body = _get(f"{server.base_url}/schema/1")
        assert status == 503
        assert "storage unavailable" in body

    def test_injected_faults_never_yield_500(self, server):
        FAULTS.inject("profile_store.lookup",
                      error=RuntimeError("store down"))
        server.engine.telemetry  # touch to keep fixture shape obvious
        for url in ("/search?keywords=patient+height",
                    "/readyz", "/healthz", "/metrics"):
            status, _, _ = _get(f"{server.base_url}{url}")
            assert status != 500, url

    def test_stalled_post_body_gets_408(self, server):
        import socket
        host, port = server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b"POST /search?keywords=patient HTTP/1.1\r\n"
                         b"Host: test\r\nContent-Length: 50\r\n\r\n")
            # ... and never send the 50 promised bytes
            response = sock.recv(4096).decode()
        assert " 408 " in response.splitlines()[0]

    def test_stop_raises_when_thread_refuses_to_exit(self):
        repo = make_repo()
        server = SchemrServer(repo, config=SchemrConfig(
            telemetry_enabled=True))
        gate = threading.Event()
        stuck = threading.Thread(target=gate.wait, daemon=True)
        stuck.start()
        server._thread = stuck
        server._httpd.shutdown = lambda: None  # type: ignore[method-assign]
        try:
            with pytest.raises(ServiceError, match="did not exit"):
                server.stop(join_timeout_seconds=0.05)
            text = server.telemetry.metrics.to_prometheus_text()
            assert "schemr_server_stop_hangs_total 1" in text
        finally:
            gate.set()
            stuck.join(timeout=5)
            server._thread = None
            server._httpd.server_close()
            server.engine.close()
            repo.close()


# -- injector hygiene ---------------------------------------------------------

class TestInjectorIsolation:
    def test_module_global_is_a_fault_injector(self):
        assert isinstance(FAULTS, FaultInjector)
        assert FAULTS.armed_sites == ()

    def test_repo_accepts_custom_retry_policy(self):
        repo = SchemaRepository(
            retry_policy=RetryPolicy(attempts=2, base_seconds=0.001,
                                     max_seconds=0.002))
        FAULTS.inject("store.add_schema",
                      error=sqlite3.OperationalError("database is locked"),
                      times=3)
        with pytest.raises(sqlite3.OperationalError):
            repo.add_schema(build_clinic_schema())
        assert repo.retry_count == 1
        repo.close()
