"""The static-analysis framework: each rule catches its seeded
violation, stays quiet on the clean twin, honors pragmas and baselines,
and the reporters/CLI behave."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import run_lint, self_check
from repro.analysis.baseline import (
    BaselineError,
    load_baseline,
    split_baselined,
    write_baseline,
)
from repro.analysis.registry import all_rules, get_rule
from repro.analysis.report import LintResult, render_json, render_text
from repro.analysis.runner import main as lint_main
from repro.analysis.source import SourceFile, module_name_for


def _lint_snippet(tmp_path: Path, code: str, rule_id: str,
                  name: str = "mod.py") -> list:
    """Findings of one rule over one synthetic module."""
    path = tmp_path / name
    path.write_text(textwrap.dedent(code), encoding="utf-8")
    source = SourceFile.parse(path)
    rule = get_rule(rule_id)
    findings = list(rule.check_file(source))
    return [f for f in findings
            if not rule.suppressed(source, f.line)]


# -- registry ----------------------------------------------------------


def test_registry_has_all_nine_rules():
    ids = {rule.id for rule in all_rules()}
    assert {"lock-discipline", "clock-hygiene", "exception-safety",
            "metric-catalog", "config-cli-drift", "lock-order",
            "api-blocking", "resource-lifecycle", "site-catalog"} <= ids


def test_rules_declare_pragma_and_description():
    for rule in all_rules():
        assert rule.pragma, rule.id
        assert rule.description, rule.id


# -- lock discipline ---------------------------------------------------

LOCKED_COUNTER = """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self._hits = 0

        def bump(self):
            with self._lock:
                self._hits += 1

        @property
        def hits(self):
            return self._hits
"""


def test_lock_discipline_flags_unlocked_read(tmp_path):
    findings = _lint_snippet(tmp_path, LOCKED_COUNTER, "lock-discipline")
    assert len(findings) == 1
    assert "Store.hits reads self._hits" in findings[0].message


def test_lock_discipline_quiet_when_read_is_locked(tmp_path):
    clean = LOCKED_COUNTER.replace(
        "            return self._hits",
        "            with self._lock:\n"
        "                return self._hits")
    assert _lint_snippet(tmp_path, clean, "lock-discipline") == []


def test_lock_discipline_exempts_constructors(tmp_path):
    code = """
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self._hits = 0

            def bump(self):
                with self._lock:
                    self._hits += 1
    """
    assert _lint_snippet(tmp_path, code, "lock-discipline") == []


def test_lock_discipline_counts_subscript_writes(tmp_path):
    code = """
        import threading

        class Buckets:
            def __init__(self):
                self._lock = threading.Lock()
                self._counts = [0, 0]

            def observe(self, i):
                with self._lock:
                    self._counts[i] += 1

            def peek(self, i):
                return self._counts[i]
    """
    findings = _lint_snippet(tmp_path, code, "lock-discipline")
    assert len(findings) == 1
    assert "Buckets.peek reads self._counts" in findings[0].message


def test_lock_discipline_line_pragma_suppresses(tmp_path):
    code = LOCKED_COUNTER.replace(
        "            return self._hits",
        "            return self._hits"
        "  # lint: unlocked (atomic int read)")
    assert _lint_snippet(tmp_path, code, "lock-discipline") == []


def test_lock_discipline_def_pragma_covers_whole_method(tmp_path):
    code = LOCKED_COUNTER.replace(
        "        def hits(self):",
        "        def hits(self):  # lint: unlocked (caller holds lock)")
    assert _lint_snippet(tmp_path, code, "lock-discipline") == []


def test_pragma_in_string_literal_does_not_suppress(tmp_path):
    code = LOCKED_COUNTER.replace(
        "            return self._hits",
        '            x = "# lint: unlocked"\n'
        "            return self._hits")
    findings = _lint_snippet(tmp_path, code, "lock-discipline")
    assert len(findings) == 1


# -- clock hygiene -----------------------------------------------------


def test_clock_hygiene_flags_calls_in_telemetry_modules(tmp_path):
    pkg = tmp_path / "repro" / "telemetry"
    pkg.mkdir(parents=True)
    path = pkg / "thing.py"
    path.write_text("import time\n\n"
                    "def stamp():\n"
                    "    return time.time()\n", encoding="utf-8")
    source = SourceFile.parse(path)
    assert source.module == "repro.telemetry.thing"
    findings = list(get_rule("clock-hygiene").check_file(source))
    assert len(findings) == 1
    assert "time.time()" in findings[0].message


def test_clock_hygiene_flags_clock_param_functions(tmp_path):
    code = """
        import time

        def wait(clock=time.monotonic):
            deadline = time.monotonic() + 1.0
            return deadline
    """
    findings = _lint_snippet(tmp_path, code, "clock-hygiene")
    assert len(findings) == 1
    assert findings[0].line == 5


def test_clock_hygiene_allows_references_and_perf_counter(tmp_path):
    code = """
        import time

        def wait(clock=time.monotonic):
            return clock() + time.perf_counter()

        def elsewhere():
            return time.time()
    """
    assert _lint_snippet(tmp_path, code, "clock-hygiene") == []


def test_clock_hygiene_covers_clock_injected_classes(tmp_path):
    code = """
        import time

        class Breaker:
            def __init__(self, clock=time.monotonic):
                self._clock = clock

            def trip(self):
                return time.monotonic()
    """
    findings = _lint_snippet(tmp_path, code, "clock-hygiene")
    assert len(findings) == 1


# -- exception safety --------------------------------------------------


def test_exception_safety_flags_bare_except(tmp_path):
    code = """
        def f():
            try:
                pass
            except:
                pass
    """
    findings = _lint_snippet(tmp_path, code, "exception-safety")
    assert len(findings) == 1
    assert "bare except" in findings[0].message


def test_exception_safety_flags_silent_swallow(tmp_path):
    code = """
        def f():
            try:
                pass
            except Exception:
                pass
    """
    findings = _lint_snippet(tmp_path, code, "exception-safety")
    assert len(findings) == 1
    assert "swallows" in findings[0].message


def test_exception_safety_allows_logged_reraise_and_narrow(tmp_path):
    code = """
        import logging
        logger = logging.getLogger(__name__)

        def f():
            try:
                pass
            except Exception as exc:
                logger.exception("boom: %s", exc)

        def g():
            try:
                pass
            except Exception:
                raise

        def h():
            try:
                pass
            except ValueError:
                pass
    """
    assert _lint_snippet(tmp_path, code, "exception-safety") == []


def test_exception_safety_pragma_suppresses(tmp_path):
    code = """
        def f(errors):
            try:
                pass
            except Exception as exc:  # lint: fault-boundary (collector)
                errors.append(exc)
    """
    assert _lint_snippet(tmp_path, code, "exception-safety") == []


# -- metric catalog ----------------------------------------------------


def _metric_corpus(tmp_path: Path, catalog_body: str,
                   user_body: str) -> LintResult:
    pkg = tmp_path / "repro" / "telemetry"
    pkg.mkdir(parents=True)
    (pkg / "catalog.py").write_text(textwrap.dedent(catalog_body),
                                    encoding="utf-8")
    user = tmp_path / "repro" / "user.py"
    user.write_text(textwrap.dedent(user_body), encoding="utf-8")
    return run_lint([tmp_path])


def test_metric_catalog_flags_uncatalogued_and_unused(tmp_path):
    result = _metric_corpus(
        tmp_path,
        """
        METRICS = {
            "schemr_used_total": ("counter", "used"),
            "schemr_orphan_total": ("counter", "never used"),
        }
        """,
        """
        def report(m):
            m.counter("schemr_used_total", "used").inc()
            m.counter("schemr_rogue_total", "not catalogued").inc()
        """)
    messages = [f.message for f in result.findings
                if f.rule == "metric-catalog"]
    assert any("schemr_rogue_total" in m for m in messages)
    assert any("schemr_orphan_total" in m and "never used" in m
               for m in messages)
    assert not any("schemr_used_total" in m for m in messages)


def test_metric_catalog_checks_kind_and_dynamic_names(tmp_path):
    result = _metric_corpus(
        tmp_path,
        """
        METRICS = {
            "schemr_depth": ("gauge", "depth"),
        }
        """,
        """
        def report(m, which):
            m.counter("schemr_depth", "wrong kind").inc()
            m.counter(f"schemr_{which}_total", "dynamic").inc()
        """)
    messages = [f.message for f in result.findings
                if f.rule == "metric-catalog"]
    assert any("registered as counter but catalogued as gauge" in m
               for m in messages)
    assert any("dynamically built" in m for m in messages)


def test_metric_catalog_allows_prefix_references(tmp_path):
    result = _metric_corpus(
        tmp_path,
        """
        METRICS = {
            "schemr_index_documents": ("gauge", "docs"),
        }
        """,
        """
        def group(samples, m):
            m.gauge("schemr_index_documents", "docs").set(1)
            return [s for s in samples
                    if s.startswith("schemr_index_")]
        """)
    assert [f for f in result.findings if f.rule == "metric-catalog"] == []


def test_metric_catalog_inert_without_catalog_module(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text('NAME = "schemr_rogue_total"\n', encoding="utf-8")
    result = run_lint([path])
    assert [f for f in result.findings if f.rule == "metric-catalog"] == []


# -- config/CLI drift --------------------------------------------------


def _drift_corpus(tmp_path: Path, config_body: str,
                  cli_body: str) -> LintResult:
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "config.py").write_text(textwrap.dedent(config_body),
                                   encoding="utf-8")
    cli = tmp_path / "repro" / "cli.py"
    cli.write_text(textwrap.dedent(cli_body), encoding="utf-8")
    return run_lint([tmp_path])


GOOD_CLI = """
    SERVE_FLAG_FIELDS = {
        "--pool": "pool",
    }

    def build(parser):
        parser.add_argument("--pool", type=int)
"""


def test_config_drift_flags_unreachable_field(tmp_path):
    result = _drift_corpus(
        tmp_path,
        """
        class SchemrConfig:
            pool: int = 5
            hidden: float = 1.0
        """,
        GOOD_CLI)
    messages = [f.message for f in result.findings
                if f.rule == "config-cli-drift"]
    assert any("SchemrConfig.hidden is unreachable" in m
               for m in messages)


def test_config_drift_internal_pragma_documents_field(tmp_path):
    result = _drift_corpus(
        tmp_path,
        """
        class SchemrConfig:
            pool: int = 5
            hidden: float = 1.0  # lint: internal (ablation knob)
        """,
        GOOD_CLI)
    assert [f for f in result.findings
            if f.rule == "config-cli-drift"] == []


def test_config_drift_flags_phantom_field_and_flag(tmp_path):
    result = _drift_corpus(
        tmp_path,
        """
        class SchemrConfig:
            pool: int = 5
        """,
        """
        SERVE_FLAG_FIELDS = {
            "--pool": "pool",
            "--ghost": "no_such_field",
        }

        def build(parser):
            parser.add_argument("--pool", type=int)
        """)
    messages = [f.message for f in result.findings
                if f.rule == "config-cli-drift"]
    assert any("no_such_field" in m and "does not exist" in m
               for m in messages)
    assert any("--ghost" in m and "no add_argument" in m
               for m in messages)


# -- the real tree is clean --------------------------------------------


def test_repo_src_and_tests_lint_clean():
    repo_root = Path(__file__).resolve().parents[1]
    result = run_lint([repo_root / "src", repo_root / "tests"])
    assert result.findings == [], "\n".join(
        f.render() for f in result.findings)


def test_self_check_registry_matches_design_md():
    repo_root = Path(__file__).resolve().parents[1]
    assert self_check(str(repo_root / "DESIGN.md")) == []


# -- baseline ----------------------------------------------------------


def test_baseline_round_trip(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(textwrap.dedent(LOCKED_COUNTER), encoding="utf-8")
    result = run_lint([path])
    assert len(result.findings) == 1

    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, result.findings)
    baseline = load_baseline(baseline_path)
    fresh, old = split_baselined(result.findings, baseline)
    assert fresh == []
    assert len(old) == 1

    # A new, different finding is not masked by the old baseline.
    path.write_text(textwrap.dedent(LOCKED_COUNTER).replace(
        "self._hits", "self._misses"), encoding="utf-8")
    rerun = run_lint([path])
    fresh, old = split_baselined(rerun.findings, baseline)
    assert len(fresh) == 1 and old == []


def test_baseline_rejects_malformed(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text('{"version": 99, "findings": []}', encoding="utf-8")
    with pytest.raises(BaselineError):
        load_baseline(bad)
    bad.write_text("not json", encoding="utf-8")
    with pytest.raises(BaselineError):
        load_baseline(bad)


# -- reporters ---------------------------------------------------------


def test_json_reporter_schema(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(textwrap.dedent(LOCKED_COUNTER), encoding="utf-8")
    result = run_lint([path])
    payload = json.loads(render_json(result))
    assert payload["version"] == 1
    assert payload["summary"]["findings"] == 1
    assert payload["summary"]["files"] == 1
    assert payload["summary"]["rules"] == {"lock-discipline": 1}
    finding = payload["findings"][0]
    assert set(finding) == {"rule", "path", "line", "message",
                            "severity"}
    assert finding["rule"] == "lock-discipline"
    assert finding["severity"] == "error"


def test_text_reporter_lists_findings_and_summary(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(textwrap.dedent(LOCKED_COUNTER), encoding="utf-8")
    result = run_lint([path])
    text = render_text(result)
    assert "[lock-discipline]" in text
    assert "1 finding(s) in 1 file(s)" in text


def test_syntax_error_becomes_finding(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def f(:\n", encoding="utf-8")
    result = run_lint([path])
    assert [f.rule for f in result.findings] == ["syntax-error"]


# -- CLI entry points --------------------------------------------------


def test_runner_main_exit_codes(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(textwrap.dedent(LOCKED_COUNTER), encoding="utf-8")
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n", encoding="utf-8")

    assert lint_main([str(clean)]) == 0
    assert lint_main([str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "[lock-discipline]" in out

    baseline = tmp_path / "baseline.json"
    assert lint_main([str(dirty), "--baseline", str(baseline),
                      "--update-baseline"]) == 0
    assert lint_main([str(dirty), "--baseline", str(baseline)]) == 0
    assert lint_main([str(tmp_path / "missing.py")]) == 2


def test_schemr_lint_subcommand(tmp_path, capsys):
    from repro.cli import main as cli_main
    dirty = tmp_path / "dirty.py"
    dirty.write_text(textwrap.dedent(LOCKED_COUNTER), encoding="utf-8")
    assert cli_main(["lint", str(dirty), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["findings"] == 1

    assert cli_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "lock-discipline" in out and "config-cli-drift" in out


def test_module_name_resolution():
    assert module_name_for(
        Path("src/repro/telemetry/catalog.py")) == "repro.telemetry.catalog"
    assert module_name_for(
        Path("src/repro/analysis/__init__.py")) == "repro.analysis"
    assert module_name_for(Path("/tmp/xyz/mod.py")) == "mod"
