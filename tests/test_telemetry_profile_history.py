"""Unit tests for query profiles, the slow-query log, and the JSONL
search-history sink."""

import json

import pytest

from repro.core.results import SearchResult
from repro.errors import RepositoryError
from repro.telemetry.history import (HISTORY_SCHEMA_VERSION, HistoryRecord,
                                     SearchHistorySink)
from repro.telemetry.profile import QueryProfile, QueryProfileLog


def _profile(seconds: float, terms=("patient",)) -> QueryProfile:
    return QueryProfile(query_terms=tuple(terms), total_seconds=seconds)


class TestQueryProfileLog:
    def test_threshold_splits_slow_from_fast(self):
        log = QueryProfileLog(slow_threshold_seconds=0.1)
        assert log.record(_profile(0.05)) is False
        assert log.record(_profile(0.1)) is True  # >= threshold is slow
        assert log.record(_profile(0.5)) is True
        assert log.total_count == 3
        assert log.slow_count == 2
        assert len(log.recent()) == 3
        assert [p.total_seconds for p in log.slow()] == [0.5, 0.1]

    def test_rings_are_bounded_counts_are_not(self):
        log = QueryProfileLog(buffer_size=2, slow_threshold_seconds=0.01)
        for i in range(5):
            log.record(_profile(1.0, terms=(f"q{i}",)))
        assert log.total_count == 5
        assert log.slow_count == 5
        assert [p.query_terms[0] for p in log.recent()] == ["q4", "q3"]
        assert len(log.slow()) == 2

    def test_recent_limit_and_clear(self):
        log = QueryProfileLog()
        log.record(_profile(0.01))
        log.record(_profile(0.02))
        assert len(log.recent(limit=1)) == 1
        log.clear()
        assert log.recent() == []
        assert log.total_count == 2  # counters survive clear

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="buffer_size"):
            QueryProfileLog(buffer_size=0)
        with pytest.raises(ValueError, match="positive"):
            QueryProfileLog(slow_threshold_seconds=0)

    def test_profile_to_dict_round_trips_fields(self):
        profile = QueryProfile(
            query_terms=("patient", "height"), total_seconds=0.2,
            phase_seconds={"schema_matching": 0.1}, candidate_count=4,
            matched_count=4, result_count=2, top_n=10, offset=0,
            strategy="pruned", cache_hit=True, pruned_early=True,
            docs_scored=4, empty_reason=None)
        data = profile.to_dict()
        assert data["query_terms"] == ["patient", "height"]
        assert data["strategy"] == "pruned"
        assert data["cache_hit"] is True
        assert data["phase_seconds"] == {"schema_matching": 0.1}
        json.dumps(data)  # must be JSON-serializable as-is


def _result(schema_id: int, name: str, score: float) -> SearchResult:
    return SearchResult(schema_id=schema_id, name=name, score=score,
                        match_count=1, entity_count=1, attribute_count=2)


class TestSearchHistorySink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "history.jsonl"
        with SearchHistorySink(path) as sink:
            sink.record(["patient", "height"],
                        [_result(1, "clinic", 0.9), _result(2, "hr", 0.4)],
                        total_seconds=0.012)
            sink.record(["salary"], [], total_seconds=0.003)
            assert sink.records_written == 2
        records = SearchHistorySink.load(path)
        assert len(records) == 2
        first = records[0]
        assert first.query_terms == ("patient", "height")
        assert first.total_seconds == pytest.approx(0.012)
        assert first.results[0] == {"schema_id": 1, "name": "clinic",
                                    "score": 0.9, "rank": 1}
        assert first.results[1]["rank"] == 2
        assert records[1].results == ()

    def test_appends_across_sink_instances(self, tmp_path):
        path = tmp_path / "history.jsonl"
        with SearchHistorySink(path) as sink:
            sink.record(["a"], [])
        with SearchHistorySink(path) as sink:
            sink.record(["b"], [])
        terms = [r.query_terms[0] for r in SearchHistorySink.read(path)]
        assert terms == ["a", "b"]

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        path = tmp_path / "history.jsonl"
        with SearchHistorySink(path) as sink:
            sink.record(["ok"], [])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"recorded_at": 1.0, "query_te')  # crash mid-write
        records = SearchHistorySink.load(path)
        assert [r.query_terms for r in records] == [("ok",)]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "history.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("not json\n")
            handle.write('{"recorded_at": 1.0, "query_terms": [],'
                         ' "results": []}\n')
        with pytest.raises(RepositoryError, match="corrupt history line 1"):
            SearchHistorySink.load(path)

    def test_valid_json_invalid_record_raises(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text('{"recorded_at": "never"}\n', encoding="utf-8")
        with pytest.raises(RepositoryError, match="malformed"):
            SearchHistorySink.load(path)

    def test_missing_file_reads_empty(self, tmp_path):
        assert SearchHistorySink.load(tmp_path / "absent.jsonl") == []

    def test_record_after_close_raises(self, tmp_path):
        sink = SearchHistorySink(tmp_path / "h.jsonl")
        sink.close()
        sink.close()  # idempotent
        with pytest.raises(RepositoryError, match="closed"):
            sink.record(["x"], [])

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "h.jsonl"
        with SearchHistorySink(path) as sink:
            sink.record(["x"], [])
        assert path.exists()

    def test_flush_every_validated(self, tmp_path):
        with pytest.raises(ValueError, match="flush_every"):
            SearchHistorySink(tmp_path / "h.jsonl", flush_every=0)

    def test_from_dict_defaults_total_seconds(self):
        record = HistoryRecord.from_dict(
            {"recorded_at": 1.0, "query_terms": ["a"], "results": []})
        assert record.total_seconds == 0.0


class TestHistorySchemaVersion:
    def test_writer_stamps_current_version(self, tmp_path):
        path = tmp_path / "h.jsonl"
        with SearchHistorySink(path) as sink:
            sink.record(["a"], [])
        line = json.loads(path.read_text(encoding="utf-8"))
        assert line["schema_version"] == HISTORY_SCHEMA_VERSION

    def test_versionless_legacy_line_reads_as_version_1(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text('{"recorded_at": 1.0, "query_terms": ["a"],'
                        ' "results": []}\n', encoding="utf-8")
        (record,) = SearchHistorySink.load(path)
        assert record.schema_version == 1
        assert record.query_terms == ("a",)

    def test_future_version_raises_loudly(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text('{"schema_version": 99, "recorded_at": 1.0,'
                        ' "query_terms": [], "results": []}\n',
                        encoding="utf-8")
        with pytest.raises(RepositoryError, match="schema_version 99"):
            SearchHistorySink.load(path)

    def test_clicked_ids_round_trip(self, tmp_path):
        path = tmp_path / "h.jsonl"
        with SearchHistorySink(path) as sink:
            sink.record(["a"], [_result(1, "x", 0.9), _result(2, "y", 0.5)],
                        clicked_ids={2})
        (record,) = SearchHistorySink.load(path)
        assert record.clicked_ids == {2}
        assert "clicked" not in record.results[0]
        assert record.results[1]["clicked"] is True

    def test_recorded_at_override_beats_wall_clock(self, tmp_path):
        sink = SearchHistorySink(tmp_path / "h.jsonl",
                                 wall_clock=lambda: 555.0)
        with sink:
            record = sink.record(["a"], [], recorded_at=7.5)
        assert record.recorded_at == 7.5


class TestHistoryRotation:
    def test_rotates_past_max_bytes(self, tmp_path):
        path = tmp_path / "h.jsonl"
        with SearchHistorySink(path, max_bytes=200) as sink:
            for i in range(8):
                sink.record([f"term{i}"], [])
            assert sink.rotations >= 1
        rotated = sorted(p.name for p in tmp_path.iterdir())
        assert "h.jsonl" in rotated
        assert any(name.startswith("h.jsonl.") for name in rotated)

    def test_read_streams_rotation_chain_oldest_first(self, tmp_path):
        path = tmp_path / "h.jsonl"
        with SearchHistorySink(path, max_bytes=120) as sink:
            for i in range(10):
                sink.record([f"t{i:02d}"], [])
        terms = [r.query_terms[0] for r in SearchHistorySink.read(path)]
        assert terms == [f"t{i:02d}" for i in range(10)]

    def test_max_rotated_files_prunes_oldest(self, tmp_path):
        path = tmp_path / "h.jsonl"
        with SearchHistorySink(path, max_bytes=80,
                               max_rotated_files=2) as sink:
            for i in range(12):
                sink.record([f"t{i}"], [])
        generations = [p for p in tmp_path.iterdir()
                       if p.name.startswith("h.jsonl.")]
        assert 1 <= len(generations) <= 2

    def test_torn_line_tolerated_per_rotated_file(self, tmp_path):
        path = tmp_path / "h.jsonl"
        with SearchHistorySink(path, max_bytes=80) as sink:
            for i in range(4):
                sink.record([f"t{i}"], [])
        with open(f"{path}.1", "a", encoding="utf-8") as handle:
            handle.write('{"torn')
        records = SearchHistorySink.load(path)
        assert len(records) == 4

    def test_rotation_config_validated(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            SearchHistorySink(tmp_path / "h.jsonl", max_bytes=0)
        with pytest.raises(ValueError, match="max_rotated_files"):
            SearchHistorySink(tmp_path / "h.jsonl", max_rotated_files=0)

    def test_config_wires_max_bytes_through_telemetry(self, tmp_path):
        from repro.core.config import SchemrConfig
        from repro.telemetry import Telemetry
        config = SchemrConfig(telemetry_enabled=True,
                              history_path=str(tmp_path / "h.jsonl"),
                              history_max_bytes=100)
        telemetry = Telemetry.from_config(config)
        for i in range(6):
            telemetry.history.record([f"t{i}"], [])
        telemetry.close()
        assert telemetry.history.rotations >= 1

    def test_history_max_bytes_config_validated(self):
        from repro.core.config import SchemrConfig
        from repro.errors import QueryError
        with pytest.raises(QueryError, match="history_max_bytes"):
            SchemrConfig(history_max_bytes=0)


class TestHistoryConcurrentWrites:
    def test_hammer_no_torn_or_interleaved_lines(self, tmp_path):
        """16 threads x 50 records: every line must parse cleanly and
        every record must arrive intact (the line-atomicity contract)."""
        import threading
        path = tmp_path / "h.jsonl"
        threads_n, per_thread = 16, 50
        with SearchHistorySink(path, flush_every=7) as sink:
            def writer(worker: int) -> None:
                for i in range(per_thread):
                    sink.record([f"w{worker}", f"q{i}"],
                                [_result(worker, f"s{worker}", 0.5)],
                                clicked_ids={worker} if i % 2 else None)
            pool = [threading.Thread(target=writer, args=(w,))
                    for w in range(threads_n)]
            for thread in pool:
                thread.start()
            for thread in pool:
                thread.join()
        # Parse raw lines first: interleaved writes would corrupt JSON.
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == threads_n * per_thread
        for line in lines:
            json.loads(line)
        records = SearchHistorySink.load(path)
        per_worker: dict[str, int] = {}
        for record in records:
            per_worker[record.query_terms[0]] = \
                per_worker.get(record.query_terms[0], 0) + 1
        assert per_worker == {f"w{w}": per_thread for w in range(threads_n)}

    def test_hammer_with_rotation_loses_nothing(self, tmp_path):
        import threading
        path = tmp_path / "h.jsonl"
        threads_n, per_thread = 8, 40
        with SearchHistorySink(path, max_bytes=2000) as sink:
            def writer(worker: int) -> None:
                for i in range(per_thread):
                    sink.record([f"w{worker}", f"q{i}"], [])
            pool = [threading.Thread(target=writer, args=(w,))
                    for w in range(threads_n)]
            for thread in pool:
                thread.start()
            for thread in pool:
                thread.join()
            assert sink.rotations >= 1
        records = SearchHistorySink.load(path)
        assert len(records) == threads_n * per_thread


class TestHistoryInjectableWallClock:
    def test_record_stamps_with_injected_clock(self, tmp_path):
        from repro.telemetry.history import SearchHistorySink
        ticks = iter([100.0, 200.0])
        sink = SearchHistorySink(tmp_path / "h.jsonl",
                                 wall_clock=lambda: next(ticks))
        with sink:
            first = sink.record(["a"], [])
            second = sink.record(["b"], [])
        assert (first.recorded_at, second.recorded_at) == (100.0, 200.0)
        loaded = SearchHistorySink.load(tmp_path / "h.jsonl")
        assert [r.recorded_at for r in loaded] == [100.0, 200.0]

    def test_telemetry_facade_threads_wall_clock_through(self, tmp_path):
        from repro.telemetry import Telemetry
        telemetry = Telemetry(
            enabled=True,
            history_path=tmp_path / "h.jsonl",
            wall_clock=lambda: 42.0)
        with telemetry.tracer.span("search") as root:
            pass
        record = telemetry.history.record(["q"], [])
        telemetry.close()
        assert root.started_at == 42.0
        assert record.recorded_at == 42.0
        assert telemetry.wall_clock() == 42.0
