"""Unit tests for the corpus package: noise, generator, filters,
ground truth."""

import random

import pytest

from repro.corpus.domains import DOMAINS, domain_by_name
from repro.corpus.filters import (
    TRIVIAL_ELEMENT_THRESHOLD,
    has_clean_names,
    is_trivial,
    paper_filter,
)
from repro.corpus.generator import CorpusGenerator
from repro.corpus.groundtruth import QUERY_CHANNELS, QuerySampler
from repro.corpus.noise import STYLES, NameStyler, abbreviate, pluralize
from repro.errors import SchemrError
from repro.model.elements import Attribute, Entity
from repro.model.schema import Schema


class TestDomains:
    def test_paper_domains_present(self):
        names = {d.name for d in DOMAINS}
        assert "healthcare" in names      # the Tanzania HIV program
        assert "conservation" in names    # the Nature Conservancy

    def test_domain_lookup(self):
        assert domain_by_name("healthcare").name == "healthcare"
        with pytest.raises(KeyError):
            domain_by_name("ghost")

    def test_references_resolve_within_domain(self):
        for domain in DOMAINS:
            names = {t.name for t in domain.entities}
            for template in domain.entities:
                for ref in template.references:
                    assert ref in names, \
                        f"{domain.name}.{template.name} references {ref}"

    def test_attribute_vocabulary_is_lowercase_words(self):
        for domain in DOMAINS:
            for template in domain.entities:
                for attr in template.attributes:
                    assert attr == attr.lower()
                    assert attr.strip() == attr


class TestNoise:
    @pytest.mark.parametrize("word,plural", [
        ("patient", "patients"),
        ("diagnosis", "diagnoses"),
        ("category", "categories"),
        ("status", "statuses"),
        ("species", "species"),
        ("address", "addresses"),
        ("day", "days"),
        ("leaf", "leaves"),
    ])
    def test_pluralize(self, word, plural):
        assert pluralize(word) == plural

    def test_abbreviate_drops_vowels(self):
        assert "a" not in abbreviate("quantity")[1:]

    def test_abbreviate_short_word_passthrough(self):
        assert abbreviate("id") == "id"

    def test_styles_render_distinctly(self):
        rng = random.Random(1)
        rendered = {}
        for style in STYLES:
            styler = NameStyler(style, rng, plural_probability=0.0,
                                abbreviate_probability=1.0)
            rendered[style] = styler.render("patient height",
                                            allow_plural=False)
        assert rendered["snake"] == "patient_height"
        assert rendered["camel"] == "patientHeight"
        assert rendered["pascal"] == "PatientHeight"
        assert rendered["dash"] == "patient-height"
        assert rendered["squash"] == "patientheight"
        assert "_" in rendered["abbreviated"]

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError):
            NameStyler("shouty", random.Random(1))


class TestGenerator:
    def test_deterministic_per_seed(self):
        a = CorpusGenerator(seed=11).generate(10)
        b = CorpusGenerator(seed=11).generate(10)
        assert [g.schema.name for g in a] == [g.schema.name for g in b]
        assert [g.schema.to_dict() for g in a] == \
            [g.schema.to_dict() for g in b]

    def test_different_seeds_differ(self):
        a = CorpusGenerator(seed=1).generate(10)
        b = CorpusGenerator(seed=2).generate(10)
        assert [g.schema.name for g in a] != [g.schema.name for g in b]

    def test_provenance_recorded(self):
        generated = CorpusGenerator(seed=3).generate_one()
        assert generated.domain in {d.name for d in DOMAINS}
        assert generated.templates
        assert generated.style in STYLES
        for template_name in generated.templates:
            assert template_name in generated.canonical_attributes

    def test_element_map_points_at_real_elements(self):
        generated = CorpusGenerator(seed=4).generate_one()
        from repro.model.elements import ElementRef
        for rendered_path in generated.element_map.values():
            assert generated.schema.has_element(
                ElementRef.parse(rendered_path))

    def test_schemas_are_valid(self):
        for generated in CorpusGenerator(seed=5).generate(25):
            schema = generated.schema
            # Round-tripping revalidates everything.
            assert schema.to_dict() == \
                type(schema).from_dict(schema.to_dict()).to_dict()

    def test_pinned_templates(self):
        generator = CorpusGenerator(seed=6)
        domain = domain_by_name("healthcare")
        generated = generator.generate_from_domain(
            domain, template_names=("patient", "case"))
        assert generated.templates == ("patient", "case")

    def test_raw_stream_contains_junk(self):
        raw = CorpusGenerator(seed=7, junk_fraction=0.3) \
            .generate_raw_stream(100)
        assert len(raw) == 100
        junk = [g for g in raw if g.domain == "junk"]
        assert len(junk) == 30

    def test_bad_junk_fraction_rejected(self):
        with pytest.raises(SchemrError):
            CorpusGenerator(junk_fraction=1.0)


class TestFilters:
    def test_clean_names_accepts_normal_styles(self):
        schema = Schema(name="patient-data", entities={
            "t": Entity("t", [Attribute("first name"),
                              Attribute("dob_2")])})
        assert has_clean_names(schema)

    def test_clean_names_rejects_crawl_junk(self):
        schema = Schema(name="tbl_%7B3%7D", entities={
            "t": Entity("t", [Attribute("x")])})
        assert not has_clean_names(schema)

    def test_trivial_threshold(self):
        small = Schema(name="tiny", entities={
            "t": Entity("t", [Attribute("a"), Attribute("b")])})
        assert small.element_count == TRIVIAL_ELEMENT_THRESHOLD
        assert is_trivial(small)
        small.entity("t").add_attribute(Attribute("c"))
        assert not is_trivial(small)

    def test_paper_filter_accounting(self):
        raw = CorpusGenerator(seed=8, junk_fraction=0.3) \
            .generate_raw_stream(100)
        stats = paper_filter(raw)
        assert stats.total == 100
        assert stats.kept_count + stats.dropped_count == 100
        assert stats.dropped_nonalpha == 10
        assert stats.dropped_singleton == 10
        assert stats.dropped_trivial == 10

    def test_kept_schemas_all_pass_criteria(self):
        raw = CorpusGenerator(seed=9, junk_fraction=0.4) \
            .generate_raw_stream(80)
        for generated in paper_filter(raw).kept:
            assert has_clean_names(generated.schema)
            assert generated.web_frequency >= 2
            assert not is_trivial(generated.schema)

    def test_summary_renders(self):
        stats = paper_filter([])
        assert "filtered 0 raw schemas" in stats.summary()


class TestGroundTruth:
    @pytest.fixture
    def stored_corpus(self):
        corpus = CorpusGenerator(seed=10).generate(50)
        for i, generated in enumerate(corpus, start=1):
            generated.schema.schema_id = i
        return corpus

    def test_requires_stored_corpus(self):
        corpus = CorpusGenerator(seed=11).generate(3)
        with pytest.raises(SchemrError, match="no id"):
            QuerySampler(corpus, DOMAINS)

    def test_empty_corpus_rejected(self):
        with pytest.raises(SchemrError):
            QuerySampler([], DOMAINS)

    def test_every_query_has_exact_answer(self, stored_corpus):
        sampler = QuerySampler(stored_corpus, DOMAINS, seed=1)
        for query in sampler.sample(10):
            assert query.exact_ids
            assert query.exact_ids <= query.relevant_ids

    def test_grades_partition(self, stored_corpus):
        sampler = QuerySampler(stored_corpus, DOMAINS, seed=2)
        query = sampler.sample(1)[0]
        for schema_id, grade in query.relevance.items():
            assert grade in (1, 2)
        by_id = {g.schema.schema_id: g for g in stored_corpus}
        for schema_id in query.exact_ids:
            generated = by_id[schema_id]
            assert query.template in generated.templates
            assert generated.domain == query.domain

    def test_channels(self, stored_corpus):
        sampler = QuerySampler(stored_corpus, DOMAINS, seed=3)
        for channel in QUERY_CHANNELS:
            queries = sampler.sample(3, channel=channel)
            assert all(q.channel == channel for q in queries)

    def test_unknown_channel_rejected(self, stored_corpus):
        sampler = QuerySampler(stored_corpus, DOMAINS, seed=4)
        with pytest.raises(SchemrError, match="unknown channel"):
            sampler.sample(1, channel="shouting")

    def test_delimiter_channel_renders_delimiters(self, stored_corpus):
        sampler = QuerySampler(stored_corpus, DOMAINS, seed=5)
        queries = sampler.sample(5, channel="delimiter")
        joined = " ".join(k for q in queries for k in q.keywords)
        assert any(c in joined for c in "-._")

    def test_deterministic_sampling(self, stored_corpus):
        a = QuerySampler(stored_corpus, DOMAINS, seed=6).sample(5)
        b = QuerySampler(stored_corpus, DOMAINS, seed=6).sample(5)
        assert [q.keywords for q in a] == [q.keywords for q in b]
