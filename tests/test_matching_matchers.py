"""Unit tests for the individual matchers (name, context, exact, synonym,
datatype, structure)."""

import pytest

from repro.matching.context import ContextMatcher, element_context
from repro.matching.datatype import DataTypeMatcher, family_similarity, type_family
from repro.matching.exact import ExactMatcher
from repro.matching.name import NameMatcher
from repro.matching.structure import StructureMatcher, entity_shape_similarity
from repro.matching.synonym import SynonymMatcher
from repro.model.elements import ElementRef
from repro.model.query import QueryGraph

from tests.conftest import build_clinic_schema


@pytest.fixture
def keyword_query(paper_keywords) -> QueryGraph:
    return QueryGraph.build(keywords=paper_keywords)


class TestNameMatcher:
    def test_exact_name_scores_one(self, keyword_query, clinic_schema):
        matrix = NameMatcher().match(keyword_query, clinic_schema)
        assert matrix.get("kw:height", "patient.height") == 1.0

    def test_abbreviated_element_matches(self, clinic_schema):
        """'pat_ht' (abbreviated patient height) should find
        patient.height; 'ht' expands via the abbreviation table."""
        query = QueryGraph.build(keywords=["pat_ht"])
        matrix = NameMatcher().match(query, clinic_schema)
        assert matrix.get("kw:pat_ht", "patient.height") > 0.5

    def test_delimiter_variants_match(self, clinic_schema):
        query = QueryGraph.build(keywords=["patient-height"])
        matrix = NameMatcher().match(query, clinic_schema)
        # patient.height vs patient-height: only the path separator
        # differs after normalization, but the query keyword matches the
        # attribute name 'height' plus entity 'patient' partially.
        assert matrix.get("kw:patient-height", "patient.height") >= 0.25

    def test_threshold_suppresses_noise(self, clinic_schema):
        query = QueryGraph.build(keywords=["zzzz"])
        matrix = NameMatcher(threshold=0.25).match(query, clinic_schema)
        assert matrix.values.max() == 0.0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            NameMatcher(threshold=1.0)

    def test_matrix_labels_canonical(self, keyword_query, clinic_schema):
        matrix = NameMatcher().match(keyword_query, clinic_schema)
        assert matrix.row_labels == keyword_query.element_labels()
        assert len(matrix.col_labels) == clinic_schema.element_count


class TestContextMatcher:
    def test_element_context_attribute(self, clinic_schema):
        context = element_context(clinic_schema,
                                  ElementRef("patient", "height"))
        assert "patient" in context
        assert "gender" in context  # sibling

    def test_element_context_entity_includes_fk_neighbors(self,
                                                          clinic_schema):
        context = element_context(clinic_schema, ElementRef("case"))
        assert "patient" in context  # FK-adjacent entity name
        assert "doctor" in context

    def test_fragment_context_match(self, clinic_schema):
        """A fragment whose entity shares neighborhood vocabulary with a
        candidate entity scores above zero."""
        fragment = build_clinic_schema(name="my_draft")
        query = QueryGraph.build(fragments=[fragment])
        matrix = ContextMatcher().match(query, clinic_schema)
        assert matrix.get("f0:patient.height", "patient.height") > 0.5

    def test_unrelated_entities_score_low(self, clinic_schema, hr_schema):
        query = QueryGraph.build(fragments=[hr_schema])
        matrix = ContextMatcher().match(query, clinic_schema)
        assert matrix.get("f0:employee.salary", "patient.height") < 0.3

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ContextMatcher(threshold=-0.1)


class TestExactMatcher:
    def test_exact_hit(self, keyword_query, clinic_schema):
        matrix = ExactMatcher().match(keyword_query, clinic_schema)
        assert matrix.get("kw:gender", "patient.gender") == 1.0
        assert matrix.get("kw:gender", "doctor.gender") == 1.0

    def test_near_miss_scores_zero(self, clinic_schema):
        query = QueryGraph.build(keywords=["heights"])
        matrix = ExactMatcher().match(query, clinic_schema)
        assert matrix.values.max() == 0.0

    def test_normalization_applies(self, clinic_schema):
        query = QueryGraph.build(keywords=["Patient_Height"])
        matrix = ExactMatcher().match(query, clinic_schema)
        # normalizes to 'patientheight'; candidate 'height' attribute is
        # 'height' only, so no hit — but a camelCase variant of the same
        # words hits an identically normalized name.
        assert matrix.get("kw:Patient_Height", "patient.height") == 0.0

    def test_abbreviation_expansion_enables_exact(self, clinic_schema):
        query = QueryGraph.build(keywords=["ht"])
        matrix = ExactMatcher().match(query, clinic_schema)
        assert matrix.get("kw:ht", "patient.height") == 1.0


class TestSynonymMatcher:
    def test_synonym_hit(self, clinic_schema):
        query = QueryGraph.build(keywords=["physician"])
        matrix = SynonymMatcher().match(query, clinic_schema)
        assert matrix.get("kw:physician", "doctor") == 1.0

    def test_sex_gender(self, clinic_schema):
        query = QueryGraph.build(keywords=["sex"])
        matrix = SynonymMatcher().match(query, clinic_schema)
        assert matrix.get("kw:sex", "patient.gender") == 1.0

    def test_non_synonym_scores_zero(self, clinic_schema):
        query = QueryGraph.build(keywords=["spaceship"])
        matrix = SynonymMatcher().match(query, clinic_schema)
        assert matrix.values.max() == 0.0

    def test_multiword_partial_credit(self):
        from repro.model.elements import Attribute, Entity
        from repro.model.schema import Schema
        schema = Schema(name="s", entities={"t": Entity("t", [
            Attribute("visit_date")])})
        query = QueryGraph.build(keywords=["encounter"])
        matrix = SynonymMatcher().match(query, schema)
        # 'encounter' is a synonym of 'visit'; 'visit_date' has 2 words.
        assert matrix.get("kw:encounter", "t.visit_date") == \
            pytest.approx(0.5)


class TestDataTypeMatcher:
    def test_type_families(self):
        assert type_family("INTEGER") == "numeric"
        assert type_family("VARCHAR(100)") == "text"
        assert type_family("timestamp") == "temporal"
        assert type_family("made_up_type") is None
        assert type_family("") is None

    def test_family_similarity(self):
        assert family_similarity("numeric", "numeric") == 1.0
        assert family_similarity("numeric", "identifier") == 0.6
        assert family_similarity("temporal", "binary") == 0.0
        assert family_similarity(None, "numeric") == 0.0

    def test_fragment_types_matched(self, clinic_schema, hr_schema):
        query = QueryGraph.build(fragments=[hr_schema])
        matrix = DataTypeMatcher().match(query, clinic_schema)
        # salary DECIMAL vs height DECIMAL -> same family.
        assert matrix.get("f0:employee.salary", "patient.height") == 1.0

    def test_keywords_score_zero(self, keyword_query, clinic_schema):
        matrix = DataTypeMatcher().match(keyword_query, clinic_schema)
        assert matrix.values.max() == 0.0

    def test_entities_score_zero(self, clinic_schema, hr_schema):
        query = QueryGraph.build(fragments=[hr_schema])
        matrix = DataTypeMatcher().match(query, clinic_schema)
        assert matrix.get("f0:employee", "patient") == 0.0


class TestStructureMatcher:
    def test_identical_entities_score_high(self, clinic_schema):
        patient = clinic_schema.entity("patient")
        assert entity_shape_similarity(patient, patient) == 1.0

    def test_empty_entity_scores_zero(self, clinic_schema):
        from repro.model.elements import Entity
        assert entity_shape_similarity(clinic_schema.entity("patient"),
                                       Entity("empty")) == 0.0

    def test_similar_fragment_entity_matches(self, clinic_schema):
        fragment = build_clinic_schema(name="draft")
        query = QueryGraph.build(fragments=[fragment])
        matrix = StructureMatcher().match(query, clinic_schema)
        assert matrix.get("f0:patient", "patient") > 0.9

    def test_child_propagation(self, clinic_schema):
        fragment = build_clinic_schema(name="draft")
        query = QueryGraph.build(fragments=[fragment])
        matrix = StructureMatcher().match(query, clinic_schema)
        entity_score = matrix.get("f0:patient", "patient")
        child_score = matrix.get("f0:patient.height", "patient.height")
        assert 0.0 < child_score <= entity_score

    def test_keywords_ignored(self, keyword_query, clinic_schema):
        matrix = StructureMatcher().match(keyword_query, clinic_schema)
        assert matrix.values.max() == 0.0
