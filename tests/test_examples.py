"""Smoke tests: every shipped example must run to completion.

Run as subprocesses so import side effects and __main__ guards are
exercised exactly as a user would.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def run_example(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True, text=True, timeout=300,
        cwd=EXAMPLES_DIR.parent)


def test_examples_directory_has_required_scripts():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3  # the deliverable floor


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_cleanly(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()  # every example narrates its run


def test_quickstart_shows_paper_query_results():
    result = run_example("quickstart.py")
    assert "clinic_emr" in result.stdout
    assert "Score" in result.stdout


def test_health_clinic_shows_collaboration():
    result = run_example("health_clinic.py")
    assert "stars" in result.stdout
    assert "comment by" in result.stdout


def test_metadata_standardization_captures_mapping():
    result = run_example("metadata_standardization.py")
    assert "stature" in result.stdout
    assert "re-use statistics" in result.stdout
