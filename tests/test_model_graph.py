"""Unit tests for repro.model.graph."""

from repro.model.graph import (
    KIND_ATTRIBUTE,
    KIND_ENTITY,
    KIND_SCHEMA,
    REL_CONTAINS,
    REL_FOREIGN_KEY,
    entity_adjacency,
    schema_to_networkx,
)


class TestEntityAdjacency:
    def test_fk_edges_are_undirected(self, clinic_schema):
        adjacency = entity_adjacency(clinic_schema)
        assert "patient" in adjacency["case"]
        assert "case" in adjacency["patient"]

    def test_all_entities_present_even_isolated(self, clinic_schema):
        from repro.model.elements import Attribute, Entity
        clinic_schema.add_entity(Entity("island", [Attribute("x")]))
        adjacency = entity_adjacency(clinic_schema)
        assert adjacency["island"] == set()

    def test_self_reference_ignored(self, hr_schema):
        from repro.model.elements import ForeignKey
        hr_schema.add_foreign_key(
            ForeignKey("employee", "id", "employee", "id"))
        adjacency = entity_adjacency(hr_schema)
        assert "employee" not in adjacency["employee"]

    def test_figure4_neighborhood(self, clinic_schema):
        adjacency = entity_adjacency(clinic_schema)
        # patient and doctor are not adjacent but share the case hub.
        assert "doctor" not in adjacency["patient"]
        assert adjacency["case"] == {"patient", "doctor"}


class TestSchemaToNetworkx:
    def test_node_kinds(self, clinic_schema):
        graph = schema_to_networkx(clinic_schema)
        kinds = {data["kind"] for _n, data in graph.nodes(data=True)}
        assert kinds == {KIND_SCHEMA, KIND_ENTITY, KIND_ATTRIBUTE}

    def test_root_contains_entities(self, clinic_schema):
        graph = schema_to_networkx(clinic_schema)
        root = f"schema:{clinic_schema.name}"
        children = [t for _s, t in graph.out_edges(root)]
        assert set(children) == {"patient", "doctor", "case"}

    def test_containment_and_fk_edges_tagged(self, clinic_schema):
        graph = schema_to_networkx(clinic_schema)
        assert graph.edges["patient", "patient.height"]["relation"] == \
            REL_CONTAINS
        assert graph.edges["case.patient", "patient.id"]["relation"] == \
            REL_FOREIGN_KEY

    def test_attribute_nodes_carry_types(self, clinic_schema):
        graph = schema_to_networkx(clinic_schema)
        assert graph.nodes["patient.height"]["data_type"] == "DECIMAL(5,2)"

    def test_node_count(self, clinic_schema):
        graph = schema_to_networkx(clinic_schema)
        # 1 schema root + 3 entities + 12 attributes
        assert graph.number_of_nodes() == 16
