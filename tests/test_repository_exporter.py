"""Unit tests for the DDL/XSD exporters, including parser round trips."""

import pytest

from repro.parsers.ddl import parse_ddl
from repro.parsers.xsd import parse_xsd
from repro.repository.exporter import export_ddl, export_entity_ddl, export_xsd

from tests.conftest import build_clinic_schema


class TestExportDdl:
    def test_roundtrip_structure(self, clinic_schema):
        rebuilt = parse_ddl(export_ddl(clinic_schema), "clinic_emr")
        assert set(rebuilt.entities) == set(clinic_schema.entities)
        assert rebuilt.attribute_count == clinic_schema.attribute_count
        assert len(rebuilt.foreign_keys) == len(clinic_schema.foreign_keys)

    def test_roundtrip_types_and_flags(self, clinic_schema):
        rebuilt = parse_ddl(export_ddl(clinic_schema))
        original = clinic_schema.entity("patient").attribute("height")
        exported = rebuilt.entity("patient").attribute("height")
        assert exported.data_type == original.data_type
        pk = rebuilt.entity("patient").attribute("id")
        assert pk.primary_key and not pk.nullable

    def test_reserved_words_quoted(self, clinic_schema):
        ddl = export_ddl(clinic_schema)
        assert '"case"' in ddl

    def test_description_emitted_as_comment(self, clinic_schema):
        assert "-- health clinic records" in export_ddl(clinic_schema)

    def test_roundtrip_foreign_keys_exact(self, clinic_schema):
        rebuilt = parse_ddl(export_ddl(clinic_schema))
        assert {str(fk) for fk in rebuilt.foreign_keys} == \
            {str(fk) for fk in clinic_schema.foreign_keys}

    def test_export_entity_ddl_single_table(self, clinic_schema):
        ddl = export_entity_ddl(clinic_schema.entity("patient"))
        rebuilt = parse_ddl(ddl)
        assert set(rebuilt.entities) == {"patient"}

    def test_identifier_with_spaces_quoted(self):
        from repro.model.elements import Attribute, Entity
        from repro.model.schema import Schema
        schema = Schema(name="s")
        schema.add_entity(Entity("my table", [Attribute("first name")]))
        ddl = export_ddl(schema)
        assert '"my table"' in ddl
        assert '"first name"' in ddl
        rebuilt = parse_ddl(ddl)
        assert "my table" in rebuilt.entities


class TestExportXsd:
    def test_roundtrip_entities_and_attributes(self, clinic_schema):
        rebuilt = parse_xsd(export_xsd(clinic_schema))
        assert set(rebuilt.entities) == set(clinic_schema.entities)
        for entity in clinic_schema.entities.values():
            for attr in entity.attributes:
                assert rebuilt.entity(entity.name).has_attribute(attr.name)

    def test_types_mapped_to_families(self, clinic_schema):
        xsd = export_xsd(clinic_schema)
        assert 'type="xs:decimal"' in xsd  # height DECIMAL
        assert 'type="xs:string"' in xsd   # name VARCHAR

    def test_fk_appinfo_recorded(self, clinic_schema):
        xsd = export_xsd(clinic_schema)
        assert 'source="case.patient"' in xsd
        assert 'target="patient.id"' in xsd

    def test_nullable_becomes_minoccurs(self, clinic_schema):
        xsd = export_xsd(clinic_schema)
        assert 'minOccurs="0"' in xsd

    def test_valid_xml(self, clinic_schema):
        import xml.etree.ElementTree as ET
        ET.fromstring(export_xsd(clinic_schema))  # must not raise

    def test_generated_corpus_exports_cleanly(self):
        """Exporters must handle every naming style the generator emits."""
        from repro.corpus.generator import CorpusGenerator
        for generated in CorpusGenerator(seed=13).generate(20):
            ddl = export_ddl(generated.schema)
            rebuilt = parse_ddl(ddl)
            assert rebuilt.entity_count == generated.schema.entity_count
            assert rebuilt.attribute_count == \
                generated.schema.attribute_count


class TestPagination:
    def test_offset_pages_without_overlap(self, small_repository):
        engine = small_repository.engine()
        page1 = engine.search(keywords="name gender id", top_n=2)
        page2 = engine.search(keywords="name gender id", top_n=2, offset=2)
        ids1 = {r.schema_id for r in page1}
        ids2 = {r.schema_id for r in page2}
        assert not ids1 & ids2

    def test_pages_concatenate_to_full_ranking(self, small_repository):
        engine = small_repository.engine()
        full = [r.schema_id
                for r in engine.search(keywords="name gender id", top_n=10)]
        paged = []
        for offset in range(0, 4, 2):
            paged.extend(r.schema_id for r in engine.search(
                keywords="name gender id", top_n=2, offset=offset))
        assert paged == full[:len(paged)]

    def test_negative_offset_rejected(self, small_repository):
        import pytest as _pytest
        from repro.errors import QueryError
        engine = small_repository.engine()
        with _pytest.raises(QueryError):
            engine.search(keywords="name", offset=-1)

    def test_offset_past_end_returns_empty(self, small_repository):
        engine = small_repository.engine()
        assert engine.search(keywords="name", top_n=5, offset=100) == []

    def test_http_offset_parameter(self, small_repository):
        from repro.service.client import SchemrClient
        from repro.service.server import SchemrServer
        server = SchemrServer(small_repository)
        with server.running() as base_url:
            client = SchemrClient(base_url)
            page1 = client.search("name gender id", top_n=2)
            page2 = client.search("name gender id", top_n=2, offset=2)
            assert not ({r.schema_id for r in page1}
                        & {r.schema_id for r in page2})


class TestXsdFkRoundtrip:
    def test_foreign_keys_survive_export_import(self, clinic_schema):
        rebuilt = parse_xsd(export_xsd(clinic_schema))
        assert {str(fk) for fk in rebuilt.foreign_keys} == \
            {str(fk) for fk in clinic_schema.foreign_keys}

    def test_bogus_appinfo_ignored(self):
        xsd = """<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
         <xs:annotation><xs:appinfo>
          <foreignKey source="ghost.x" target="also.gone"/>
          <foreignKey source="nodot" target="still.nodot"/>
         </xs:appinfo></xs:annotation>
         <xs:element name="t">
          <xs:complexType><xs:sequence>
           <xs:element name="a" type="xs:string"/>
          </xs:sequence></xs:complexType>
         </xs:element>
        </xs:schema>"""
        schema = parse_xsd(xsd)
        assert schema.foreign_keys == []
