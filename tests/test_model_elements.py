"""Unit tests for repro.model.elements."""

import pytest

from repro.errors import SchemaError
from repro.model.elements import (
    Attribute,
    ElementKind,
    ElementRef,
    Entity,
    ForeignKey,
)


class TestElementRef:
    def test_entity_ref_kind_and_path(self):
        ref = ElementRef("patient")
        assert ref.kind is ElementKind.ENTITY
        assert ref.path == "patient"
        assert ref.local_name == "patient"

    def test_attribute_ref_kind_and_path(self):
        ref = ElementRef("patient", "height")
        assert ref.kind is ElementKind.ATTRIBUTE
        assert ref.path == "patient.height"
        assert ref.local_name == "height"

    def test_parse_roundtrip_entity(self):
        assert ElementRef.parse("patient") == ElementRef("patient")

    def test_parse_roundtrip_attribute(self):
        assert ElementRef.parse("patient.height") == \
            ElementRef("patient", "height")

    def test_parse_empty_raises(self):
        with pytest.raises(SchemaError):
            ElementRef.parse("")

    def test_parse_dot_only_raises(self):
        with pytest.raises(SchemaError):
            ElementRef.parse(".height")

    def test_refs_are_hashable_and_equal(self):
        assert len({ElementRef("a", "b"), ElementRef("a", "b")}) == 1

    def test_str_is_path(self):
        assert str(ElementRef("case", "diagnosis")) == "case.diagnosis"


class TestAttribute:
    def test_defaults(self):
        attr = Attribute("height")
        assert attr.data_type == ""
        assert attr.nullable is True
        assert attr.primary_key is False

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("")


class TestEntity:
    def test_duplicate_attribute_rejected_at_init(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Entity("patient", [Attribute("x"), Attribute("x")])

    def test_add_attribute_rejects_duplicate(self):
        entity = Entity("patient", [Attribute("x")])
        with pytest.raises(SchemaError):
            entity.add_attribute(Attribute("x"))

    def test_attribute_lookup(self):
        entity = Entity("patient", [Attribute("height")])
        assert entity.attribute("height").name == "height"
        assert entity.has_attribute("height")
        assert not entity.has_attribute("weight")

    def test_attribute_lookup_missing_raises(self):
        with pytest.raises(SchemaError, match="no attribute"):
            Entity("patient").attribute("height")

    def test_refs_order_entity_first(self):
        entity = Entity("patient", [Attribute("a"), Attribute("b")])
        assert [r.path for r in entity.refs()] == \
            ["patient", "patient.a", "patient.b"]

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Entity("")


class TestForeignKey:
    def test_entity_pair(self):
        fk = ForeignKey("case", "patient", "patient", "id")
        assert fk.entity_pair == ("case", "patient")

    def test_str_format(self):
        fk = ForeignKey("case", "patient", "patient", "id")
        assert str(fk) == "case.patient -> patient.id"

    def test_empty_endpoint_rejected(self):
        with pytest.raises(SchemaError):
            ForeignKey("case", "", "patient", "id")

    def test_frozen(self):
        fk = ForeignKey("a", "b", "c", "d")
        with pytest.raises(AttributeError):
            fk.source_entity = "x"  # type: ignore[misc]
