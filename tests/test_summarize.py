"""Unit tests for schema summarization (Yu & Jagadish-style)."""

import pytest

from repro.errors import SchemaError
from repro.model.elements import Attribute, Entity, ForeignKey
from repro.model.schema import Schema
from repro.viz.summarize import entity_importance, summarize_schema


def star_schema(spokes: int = 6) -> Schema:
    """A hub entity referenced by many small spokes."""
    schema = Schema(name="star")
    schema.add_entity(Entity("hub", [
        Attribute(f"h{i}") for i in range(8)]))
    for i in range(spokes):
        schema.add_entity(Entity(f"spoke{i}", [Attribute("id"),
                                               Attribute("value")]))
        schema.add_foreign_key(
            ForeignKey(f"spoke{i}", "id", "hub", "h0"))
    return schema


def chain_schema(n: int) -> Schema:
    schema = Schema(name="chain")
    for i in range(n):
        schema.add_entity(Entity(f"e{i}", [Attribute("id")]))
    for i in range(n - 1):
        schema.add_foreign_key(ForeignKey(f"e{i}", "id", f"e{i+1}", "id"))
    return schema


class TestImportance:
    def test_distribution_sums_to_one(self, clinic_schema):
        importance = entity_importance(clinic_schema)
        assert sum(importance.values()) == pytest.approx(1.0)

    def test_hub_most_important(self):
        importance = entity_importance(star_schema())
        assert max(importance, key=importance.get) == "hub"

    def test_content_matters_for_isolated_entities(self):
        schema = Schema(name="s")
        schema.add_entity(Entity("fat", [Attribute(f"a{i}")
                                         for i in range(10)]))
        schema.add_entity(Entity("thin", [Attribute("x")]))
        importance = entity_importance(schema)
        assert importance["fat"] > importance["thin"]

    def test_empty_schema(self):
        assert entity_importance(Schema(name="empty")) == {}

    def test_figure4_case_is_central(self, clinic_schema):
        """case references both patient and doctor; connectivity makes
        it at least as important as doctor."""
        importance = entity_importance(clinic_schema)
        assert importance["case"] >= importance["doctor"]


class TestSummarize:
    def test_keeps_k_most_important(self):
        summary = summarize_schema(star_schema(), k=1)
        assert summary.entities == ["hub"]
        assert summary.dropped == 6

    def test_identity_when_k_large(self, clinic_schema):
        summary = summarize_schema(clinic_schema, k=10)
        assert set(summary.entities) == set(clinic_schema.entities)
        assert summary.dropped == 0

    def test_direct_edges_preserved(self, clinic_schema):
        summary = summarize_schema(clinic_schema, k=3)
        pairs = {(e.source, e.target) for e in summary.edges}
        assert ("case", "patient") in pairs
        assert all(e.direct for e in summary.edges)

    def test_derived_edges_through_dropped_entities(self):
        # Dumbbell: two fat hubs joined by a thin bridge entity.  k=2
        # keeps the hubs; connectivity through the dropped bridge must
        # survive as a derived edge.
        schema = Schema(name="dumbbell")
        for hub in ("hub_a", "hub_b"):
            schema.add_entity(Entity(hub, [
                Attribute(f"{hub}_c{i}") for i in range(8)]))
        schema.add_entity(Entity("bridge", [Attribute("id")]))
        schema.add_foreign_key(
            ForeignKey("bridge", "id", "hub_a", "hub_a_c0"))
        schema.add_foreign_key(
            ForeignKey("bridge", "id", "hub_b", "hub_b_c0"))
        summary = summarize_schema(schema, k=2)
        assert summary.entities == ["hub_a", "hub_b"]
        assert len(summary.edges) == 1
        edge = summary.edges[0]
        assert not edge.direct
        assert edge.via_count == 1

    def test_invalid_k_rejected(self, clinic_schema):
        with pytest.raises(SchemaError):
            summarize_schema(clinic_schema, k=0)

    def test_summary_graph_renders(self, clinic_schema):
        summary = summarize_schema(clinic_schema, k=2)
        graph = summary.to_networkx(clinic_schema)
        assert graph.number_of_nodes() > 2
        # Importance is shown in entity labels.
        labels = [d.get("label", "") for _n, d in graph.nodes(data=True)]
        assert any("(" in label for label in labels)

    def test_summary_graph_layout_compatible(self, clinic_schema):
        """The summary graph must feed the existing layout engines."""
        from repro.viz.drill import display_subgraph
        from repro.viz.svg import render_svg
        from repro.viz.tree import tree_layout
        summary = summarize_schema(clinic_schema, k=2)
        graph = summary.to_networkx(clinic_schema)
        svg = render_svg(tree_layout(display_subgraph(graph)))
        assert svg.startswith("<svg")

    def test_large_generated_schema_summary(self):
        """Summaries stay small and connected on generator output."""
        from repro.corpus.domains import domain_by_name
        from repro.corpus.generator import CorpusGenerator
        generator = CorpusGenerator(seed=3)
        domain = domain_by_name("healthcare")
        generated = generator.generate_from_domain(
            domain, template_names=("patient", "doctor", "case", "visit",
                                    "medication", "clinic"))
        summary = summarize_schema(generated.schema, k=3)
        assert len(summary.entities) == 3
        assert summary.dropped == 3
