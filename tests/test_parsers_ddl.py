"""Unit tests for the DDL parser."""

import pytest

from repro.errors import ParseError
from repro.parsers.ddl import parse_ddl, parse_ddl_result

CLINIC_DDL = """
CREATE TABLE patient (
  id INTEGER PRIMARY KEY,
  name VARCHAR(100) NOT NULL,
  height DECIMAL(5,2),
  gender CHAR(1)
);
CREATE TABLE "case" (
  id INTEGER PRIMARY KEY,
  patient_id INTEGER REFERENCES patient(id),
  diagnosis TEXT
);
"""


class TestBasicParsing:
    def test_two_tables(self):
        schema = parse_ddl(CLINIC_DDL, "clinic")
        assert schema.name == "clinic"
        assert set(schema.entities) == {"patient", "case"}

    def test_columns_in_order(self):
        schema = parse_ddl(CLINIC_DDL)
        names = [a.name for a in schema.entity("patient").attributes]
        assert names == ["id", "name", "height", "gender"]

    def test_types_with_parameters(self):
        schema = parse_ddl(CLINIC_DDL)
        assert schema.entity("patient").attribute("height").data_type == \
            "DECIMAL(5,2)"
        assert schema.entity("patient").attribute("name").data_type == \
            "VARCHAR(100)"

    def test_primary_key_flag(self):
        schema = parse_ddl(CLINIC_DDL)
        attr = schema.entity("patient").attribute("id")
        assert attr.primary_key is True
        assert attr.nullable is False

    def test_not_null_flag(self):
        schema = parse_ddl(CLINIC_DDL)
        assert schema.entity("patient").attribute("name").nullable is False
        assert schema.entity("patient").attribute("gender").nullable is True

    def test_no_create_table_raises(self):
        with pytest.raises(ParseError, match="no CREATE TABLE"):
            parse_ddl("SELECT 1;")

    def test_source_marked(self):
        assert parse_ddl(CLINIC_DDL).source == "ddl"


class TestForeignKeys:
    def test_inline_references(self):
        schema = parse_ddl(CLINIC_DDL)
        assert len(schema.foreign_keys) == 1
        fk = schema.foreign_keys[0]
        assert str(fk) == "case.patient_id -> patient.id"

    def test_table_level_foreign_key(self):
        ddl = """
        CREATE TABLE a (id INTEGER PRIMARY KEY);
        CREATE TABLE b (
          a_id INTEGER,
          FOREIGN KEY (a_id) REFERENCES a(id)
        );
        """
        schema = parse_ddl(ddl)
        assert str(schema.foreign_keys[0]) == "b.a_id -> a.id"

    def test_named_constraint_foreign_key(self):
        ddl = """
        CREATE TABLE a (id INTEGER PRIMARY KEY);
        CREATE TABLE b (
          a_id INTEGER,
          CONSTRAINT fk_b_a FOREIGN KEY (a_id) REFERENCES a(id)
        );
        """
        assert len(parse_ddl(ddl).foreign_keys) == 1

    def test_references_without_column_uses_primary_key(self):
        ddl = """
        CREATE TABLE a (pk INTEGER PRIMARY KEY, other TEXT);
        CREATE TABLE b (a_ref INTEGER REFERENCES a);
        """
        fk = parse_ddl(ddl).foreign_keys[0]
        assert fk.target_attribute == "pk"

    def test_dangling_fk_reported_not_fatal(self):
        ddl = "CREATE TABLE b (x INTEGER REFERENCES ghost(id));"
        result = parse_ddl_result(ddl)
        assert result.schema.foreign_keys == []
        assert len(result.dangling_foreign_keys) == 1
        assert "ghost" in result.dangling_foreign_keys[0]

    def test_on_delete_action_consumed(self):
        ddl = """
        CREATE TABLE a (id INTEGER PRIMARY KEY);
        CREATE TABLE b (
          a_id INTEGER REFERENCES a(id) ON DELETE CASCADE
        );
        """
        assert len(parse_ddl(ddl).foreign_keys) == 1

    def test_on_delete_set_null_consumed(self):
        ddl = """
        CREATE TABLE a (id INTEGER PRIMARY KEY);
        CREATE TABLE b (
          a_id INTEGER REFERENCES a(id) ON DELETE SET NULL,
          note TEXT
        );
        """
        schema = parse_ddl(ddl)
        assert schema.entity("b").has_attribute("note")


class TestDialectTolerance:
    def test_if_not_exists(self):
        schema = parse_ddl("CREATE TABLE IF NOT EXISTS t (x INTEGER);")
        assert "t" in schema.entities

    def test_schema_qualified_name(self):
        schema = parse_ddl("CREATE TABLE public.users (id INTEGER);")
        assert "users" in schema.entities

    def test_multi_word_type(self):
        schema = parse_ddl("CREATE TABLE t (x DOUBLE PRECISION);")
        assert schema.entity("t").attribute("x").data_type == \
            "DOUBLE PRECISION"

    def test_default_values(self):
        ddl = ("CREATE TABLE t (a INTEGER DEFAULT 0, "
               "b TEXT DEFAULT 'none', c REAL DEFAULT -1.5);")
        assert parse_ddl(ddl).entity("t").attribute("c").name == "c"

    def test_default_function_call(self):
        ddl = "CREATE TABLE t (ts TIMESTAMP DEFAULT now());"
        assert "t" in parse_ddl(ddl).entities

    def test_check_constraints_skipped(self):
        ddl = ("CREATE TABLE t (age INTEGER CHECK (age > 0), "
               "CHECK (age < 200));")
        assert parse_ddl(ddl).entity("t").attribute("age").name == "age"

    def test_table_level_primary_key(self):
        ddl = "CREATE TABLE t (a INTEGER, b INTEGER, PRIMARY KEY (a, b));"
        entity = parse_ddl(ddl).entity("t")
        assert entity.attribute("a").primary_key
        assert entity.attribute("b").primary_key

    def test_unique_and_index_clauses(self):
        ddl = ("CREATE TABLE t (a INTEGER UNIQUE, b TEXT, "
               "UNIQUE (a, b), KEY idx_b (b));")
        assert len(parse_ddl(ddl).entity("t").attributes) == 2

    def test_auto_increment(self):
        ddl = "CREATE TABLE t (id INTEGER PRIMARY KEY AUTO_INCREMENT);"
        assert parse_ddl(ddl).entity("t").attribute("id").primary_key

    def test_quoted_reserved_word_table(self):
        schema = parse_ddl('CREATE TABLE "order" (id INTEGER);')
        assert "order" in schema.entities

    def test_comments_ignored(self):
        ddl = """
        -- the patient table
        CREATE TABLE patient (
          id INTEGER, /* surrogate key */
          name TEXT
        );
        """
        assert parse_ddl(ddl).entity("patient").has_attribute("name")

    def test_other_statements_skipped(self):
        ddl = """
        DROP TABLE IF EXISTS old_stuff;
        CREATE TABLE t (x INTEGER);
        INSERT INTO t VALUES (1);
        """
        assert set(parse_ddl(ddl).entities) == {"t"}

    def test_duplicate_table_keeps_first(self):
        ddl = """
        CREATE TABLE t (a INTEGER);
        CREATE TABLE t (b INTEGER);
        """
        assert parse_ddl(ddl).entity("t").has_attribute("a")

    def test_typeless_column(self):
        schema = parse_ddl("CREATE TABLE t (x, y);")
        assert schema.entity("t").attribute("x").data_type == ""

    def test_malformed_column_raises(self):
        with pytest.raises(ParseError):
            parse_ddl("CREATE TABLE t (x INTEGER ???);")
