"""Unit tests for the data-examples substrate."""

import numpy as np
import pytest

from repro.errors import RepositoryError, SchemaError
from repro.instances.features import (
    FEATURE_NAMES,
    column_features,
    feature_similarity,
)
from repro.instances.matcher import InstanceMatcher
from repro.instances.sampler import (
    generate_instances,
    instances_by_path,
)
from repro.instances.store import load_instances, save_instances
from repro.model.elements import Attribute, Entity
from repro.model.query import QueryGraph
from repro.model.schema import Schema
from repro.repository.store import SchemaRepository

from tests.conftest import build_clinic_schema


class TestSampler:
    def test_every_attribute_gets_values(self, clinic_schema):
        tables = generate_instances(clinic_schema, rows=10)
        assert set(tables) == set(clinic_schema.entities)
        for entity in clinic_schema.entities.values():
            table = tables[entity.name]
            assert set(table.columns) == \
                {a.name for a in entity.attributes}
            assert table.row_count == 10

    def test_deterministic_per_seed(self, clinic_schema):
        a = generate_instances(clinic_schema, rows=5, seed=3)
        b = generate_instances(clinic_schema, rows=5, seed=3)
        assert a["patient"].columns == b["patient"].columns

    def test_concept_appropriate_values(self, clinic_schema):
        tables = generate_instances(clinic_schema, rows=30)
        heights = tables["patient"].columns["height"]
        assert all(40 <= float(value) <= 210 for value in heights)
        names = tables["patient"].columns["name"]
        assert all(any(c.isalpha() for c in value) for value in names)

    def test_rows_view(self, clinic_schema):
        table = generate_instances(clinic_schema, rows=4)["patient"]
        rows = table.rows()
        assert len(rows) == 4
        assert all(len(row) == len(table.columns) for row in rows)

    def test_rows_validation(self, clinic_schema):
        with pytest.raises(SchemaError):
            generate_instances(clinic_schema, rows=0)

    def test_instances_by_path(self, clinic_schema):
        flat = instances_by_path(generate_instances(clinic_schema, rows=3))
        assert "patient.height" in flat
        assert len(flat["patient.height"]) == 3


class TestFeatures:
    def test_vector_length_matches_names(self):
        assert len(column_features(["a", "b"])) == len(FEATURE_NAMES)

    def test_empty_column_zero_vector(self):
        assert not column_features([]).any()

    def test_numeric_column_recognized(self):
        features = column_features(["12.5", "99.1", "45.0"])
        numeric_fraction = features[FEATURE_NAMES.index("numeric_fraction")]
        assert numeric_fraction == 1.0

    def test_text_column_alpha_heavy(self):
        features = column_features(["alpha beta", "gamma delta"])
        alpha_ratio = features[FEATURE_NAMES.index("alpha_ratio")]
        assert alpha_ratio > 0.7

    def test_similarity_bounds(self):
        a = column_features(["12.5", "99.1"])
        b = column_features(["150.2", "44.9"])
        c = column_features(["alpha beta gamma", "delta epsilon"])
        assert feature_similarity(a, a) == pytest.approx(1.0)
        assert 0.0 <= feature_similarity(a, c) <= 1.0
        assert feature_similarity(a, b) > feature_similarity(a, c)

    def test_zero_vectors_score_zero(self):
        zero = np.zeros(len(FEATURE_NAMES))
        assert feature_similarity(zero, zero) == 0.0

    def test_similar_distributions_score_high(self):
        heights_a = [f"{v:.1f}" for v in (170.2, 165.8, 181.1, 158.9)]
        heights_b = [f"{v:.1f}" for v in (172.4, 160.3, 175.7, 169.0)]
        assert feature_similarity(column_features(heights_a),
                                  column_features(heights_b)) > 0.9


class TestStore:
    def test_save_load_roundtrip(self, clinic_schema):
        with SchemaRepository.in_memory() as repo:
            schema_id = repo.add_schema(clinic_schema)
            tables = generate_instances(clinic_schema, rows=5)
            save_instances(repo, schema_id, tables)
            loaded = load_instances(repo, schema_id)
            assert set(loaded) == set(tables)
            assert loaded["patient"].columns == tables["patient"].columns

    def test_save_replaces(self, clinic_schema):
        with SchemaRepository.in_memory() as repo:
            schema_id = repo.add_schema(clinic_schema)
            save_instances(repo, schema_id,
                           generate_instances(clinic_schema, rows=3,
                                              seed=1))
            save_instances(repo, schema_id,
                           generate_instances(clinic_schema, rows=7,
                                              seed=2))
            loaded = load_instances(repo, schema_id)
            assert loaded["patient"].row_count == 7

    def test_missing_schema_rejected(self, clinic_schema):
        with SchemaRepository.in_memory() as repo:
            with pytest.raises(RepositoryError):
                save_instances(repo, 9,
                               generate_instances(clinic_schema, rows=2))

    def test_no_instances_empty_dict(self, clinic_schema):
        with SchemaRepository.in_memory() as repo:
            schema_id = repo.add_schema(clinic_schema)
            assert load_instances(repo, schema_id) == {}


class TestInstanceMatcher:
    @pytest.fixture
    def candidate(self) -> Schema:
        """Attribute names share nothing with the draft; only the data
        distributions connect them."""
        schema = Schema(name="anonymized", schema_id=1)
        schema.add_entity(Entity("t", [
            Attribute("col_a", "DECIMAL(5,2)"),   # heights
            Attribute("col_b", "VARCHAR(100)"),   # person names
        ]))
        return schema

    @pytest.fixture
    def provider(self, candidate):
        values = {
            "t.col_a": ["171.2", "164.9", "180.4", "158.8", "175.5"],
            "t.col_b": ["amina mushi", "john smith", "grace kimaro",
                        "peter brown", "mary wilson"],
        }

        def _provider(schema_id: int):
            return values if schema_id == 1 else {}
        return _provider

    @pytest.fixture
    def draft_query(self) -> tuple[QueryGraph, dict[str, list[str]]]:
        draft = Schema(name="draft")
        draft.add_entity(Entity("person", [
            Attribute("height", "DECIMAL(5,2)"),
            Attribute("full_name", "VARCHAR(100)"),
        ]))
        query = QueryGraph.build(fragments=[draft])
        examples = {
            "person.height": ["168.0", "177.3", "161.2", "183.9"],
            "person.full_name": ["neema shayo", "david davis",
                                 "esther massawe"],
        }
        return query, examples

    def test_distribution_match_found(self, candidate, provider,
                                      draft_query):
        query, examples = draft_query
        matcher = InstanceMatcher(provider, query_instances=examples)
        matrix = matcher.match(query, candidate)
        assert matrix.get("f0:person.height", "t.col_a") > 0.8
        assert matrix.get("f0:person.full_name", "t.col_b") > 0.8

    def test_cross_type_pairs_score_lower(self, candidate, provider,
                                          draft_query):
        query, examples = draft_query
        matcher = InstanceMatcher(provider, query_instances=examples,
                                  threshold=0.0)
        matrix = matcher.match(query, candidate)
        assert matrix.get("f0:person.height", "t.col_a") > \
            matrix.get("f0:person.height", "t.col_b")

    def test_abstains_without_candidate_instances(self, candidate,
                                                  draft_query):
        query, examples = draft_query
        matcher = InstanceMatcher(lambda _id: {},
                                  query_instances=examples)
        assert matcher.match(query, candidate).values.max() == 0.0

    def test_abstains_without_query_instances(self, candidate, provider):
        query = QueryGraph.build(keywords=["height"])
        matcher = InstanceMatcher(provider)
        assert matcher.match(query, candidate).values.max() == 0.0

    def test_threshold_validation(self, provider):
        with pytest.raises(ValueError):
            InstanceMatcher(provider, threshold=1.0)

    def test_repository_backed_end_to_end(self, clinic_schema):
        """Full loop: store examples, search with a draft + examples."""
        from repro.instances.store import load_instances
        from repro.instances.sampler import instances_by_path
        from repro.matching.ensemble import MatcherEnsemble
        from repro.matching.name import NameMatcher
        with SchemaRepository.in_memory() as repo:
            schema_id = repo.add_schema(clinic_schema)
            save_instances(repo, schema_id,
                           generate_instances(clinic_schema, rows=15))

            def provider(sid: int):
                return instances_by_path(load_instances(repo, sid))

            draft = Schema(name="draft")
            draft.add_entity(Entity("person", [
                Attribute("stature_cm", "DECIMAL(5,2)")]))
            draft_examples = {
                "person.stature_cm": ["170.1", "166.4", "179.8",
                                      "155.0", "172.2"]}
            ensemble = MatcherEnsemble([
                NameMatcher(),
                InstanceMatcher(provider,
                                query_instances=draft_examples)])
            query = QueryGraph.build(fragments=[draft])
            result = ensemble.match(query, repo.get_schema(schema_id))
            instance_matrix = result.per_matcher["instance"]
            # The data connects stature_cm to patient.height even though
            # the name matcher sees little.
            assert instance_matrix.get("f0:person.stature_cm",
                                       "patient.height") > 0.5
