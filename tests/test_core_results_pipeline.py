"""Unit tests for result formatting and pipeline tracing."""

import time

import pytest

from repro.core.pipeline import PipelineTrace, timed_phase
from repro.core.results import ElementMatch, SearchResult, format_result_table


def make_result(name: str = "clinic", score: float = 0.5,
                description: str = "desc") -> SearchResult:
    return SearchResult(schema_id=1, name=name, score=score, match_count=3,
                        entity_count=2, attribute_count=8,
                        description=description)


class TestFormatResultTable:
    def test_header_and_separator(self):
        table = format_result_table([make_result()])
        lines = table.splitlines()
        assert "Name" in lines[0]
        assert "Score" in lines[0]
        assert set(lines[1]) <= {"-", " "}

    def test_figure2_columns_present(self):
        """Figure 2: name, score, matches, entities, attributes,
        description columns."""
        header = format_result_table([]).splitlines()[0].lower()
        for column in ("name", "score", "matches", "entities",
                       "attributes", "description"):
            assert column in header

    def test_rows_numbered(self):
        table = format_result_table([make_result("a"), make_result("b")])
        rows = table.splitlines()[2:]
        assert rows[0].startswith("1 ")
        assert rows[1].startswith("2 ")

    def test_long_description_truncated(self):
        result = make_result(description="x" * 100)
        table = format_result_table([result], max_description=20)
        assert "x" * 21 not in table
        assert "..." in table

    def test_score_formatting(self):
        table = format_result_table([make_result(score=0.123456)])
        assert "0.1235" in table

    def test_empty_results(self):
        table = format_result_table([])
        assert len(table.splitlines()) == 2  # header + separator


class TestSearchResultHelpers:
    def test_top_matches_limit_and_order(self):
        result = make_result()
        result.element_matches = [
            ElementMatch("q", "e1", 0.2),
            ElementMatch("q", "e2", 0.9),
            ElementMatch("q", "e3", 0.5),
        ]
        top = result.top_matches(2)
        assert [m.element_path for m in top] == ["e2", "e3"]


class TestPipelineTrace:
    def test_timed_phase_records_duration(self):
        trace = PipelineTrace()
        with timed_phase(trace, "work") as phase:
            phase.items_in = 10
            time.sleep(0.01)
            phase.items_out = 5
        recorded = trace.phase("work")
        assert recorded.seconds >= 0.01
        assert recorded.items_in == 10
        assert recorded.items_out == 5

    def test_total_seconds_sums(self):
        trace = PipelineTrace()
        with timed_phase(trace, "a"):
            pass
        with timed_phase(trace, "b"):
            pass
        assert trace.total_seconds == pytest.approx(
            sum(p.seconds for p in trace.phases))

    def test_missing_phase_raises(self):
        with pytest.raises(KeyError):
            PipelineTrace().phase("ghost")

    def test_summary_contains_every_phase(self):
        trace = PipelineTrace()
        with timed_phase(trace, "alpha"):
            pass
        summary = trace.summary()
        assert "alpha" in summary
        assert "total" in summary
