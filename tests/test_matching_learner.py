"""Unit tests for the logistic-regression weight learner."""

import random

import pytest

from repro.errors import MatchError
from repro.matching.learner import TrainingExample, WeightLearner


def synthetic_history(n: int, seed: int = 5) -> list[TrainingExample]:
    """History where 'name' evidence predicts relevance and 'noise'
    evidence is random."""
    rng = random.Random(seed)
    examples = []
    for _ in range(n):
        relevant = rng.random() < 0.5
        name_score = (rng.uniform(0.6, 1.0) if relevant
                      else rng.uniform(0.0, 0.4))
        noise_score = rng.uniform(0.0, 1.0)
        examples.append(TrainingExample(
            features={"name": name_score, "noise": noise_score},
            relevant=relevant))
    return examples


class TestValidation:
    def test_needs_matcher_names(self):
        with pytest.raises(MatchError):
            WeightLearner([])

    def test_needs_two_examples(self):
        learner = WeightLearner(["name"])
        with pytest.raises(MatchError):
            learner.fit([TrainingExample({"name": 1.0}, True)])

    def test_needs_both_classes(self):
        learner = WeightLearner(["name"])
        examples = [TrainingExample({"name": 1.0}, True)] * 3
        with pytest.raises(MatchError, match="both"):
            learner.fit(examples)

    def test_unfitted_predict_raises(self):
        learner = WeightLearner(["name"])
        with pytest.raises(MatchError, match="not fitted"):
            learner.predict_probability({"name": 1.0})
        with pytest.raises(MatchError):
            learner.weights()


class TestLearning:
    def test_informative_feature_gets_higher_weight(self):
        learner = WeightLearner(["name", "noise"])
        learner.fit(synthetic_history(200))
        weights = learner.weights()
        assert weights["name"] > weights["noise"]

    def test_weights_normalized(self):
        learner = WeightLearner(["name", "noise"])
        learner.fit(synthetic_history(100))
        assert sum(learner.weights().values()) == pytest.approx(1.0)

    def test_weights_floor_applied(self):
        learner = WeightLearner(["name", "noise"])
        learner.fit(synthetic_history(200))
        assert all(w > 0 for w in learner.weights(floor=0.05).values())

    def test_prediction_separates_classes(self):
        learner = WeightLearner(["name", "noise"])
        learner.fit(synthetic_history(200))
        high = learner.predict_probability({"name": 0.9, "noise": 0.5})
        low = learner.predict_probability({"name": 0.1, "noise": 0.5})
        assert high > 0.5 > low

    def test_accuracy_on_training_data(self):
        learner = WeightLearner(["name", "noise"])
        history = synthetic_history(200)
        learner.fit(history)
        assert learner.accuracy(history) > 0.9

    def test_missing_feature_treated_as_zero(self):
        learner = WeightLearner(["name", "noise"])
        learner.fit(synthetic_history(100))
        assert learner.predict_probability({}) < 0.5

    def test_is_fitted_flag(self):
        learner = WeightLearner(["name"])
        assert not learner.is_fitted
        learner.fit([TrainingExample({"name": 1.0}, True),
                     TrainingExample({"name": 0.0}, False)])
        assert learner.is_fitted

    def test_accuracy_empty_raises(self):
        learner = WeightLearner(["name"])
        with pytest.raises(MatchError):
            learner.accuracy([])
