"""Edge-path tests for small utilities not covered elsewhere."""

import networkx as nx
import pytest

from repro.core.dedup import format_deduped
from repro.errors import ParseError, SchemrError
from repro.viz.layout import Layout, find_root


class TestParseErrorPositions:
    def test_line_and_column_in_message(self):
        error = ParseError("bad token", line=3, column=7)
        assert "line 3" in str(error)
        assert "column 7" in str(error)
        assert error.line == 3 and error.column == 7

    def test_line_only(self):
        error = ParseError("bad token", line=3)
        assert str(error).endswith("(line 3)")

    def test_no_position(self):
        assert str(ParseError("bad token")) == "bad token"


class TestFindRoot:
    def test_prefers_schema_node(self):
        graph = nx.DiGraph()
        graph.add_node("a", kind="entity")
        graph.add_node("schema:s", kind="schema")
        graph.add_edge("schema:s", "a")
        assert find_root(graph) == "schema:s"

    def test_falls_back_to_sourceless_node(self):
        graph = nx.DiGraph()
        graph.add_edge("root", "child")
        assert find_root(graph) == "root"

    def test_empty_graph_raises(self):
        with pytest.raises(SchemrError):
            find_root(nx.DiGraph())


class TestLayoutLookup:
    def test_missing_node_raises(self):
        layout = Layout(name="x")
        with pytest.raises(SchemrError):
            layout.node("ghost")


class TestFormatDeduped:
    def test_empty_groups(self):
        assert format_deduped([]) == ""


class TestErrorHierarchy:
    def test_every_error_is_schemr_error(self):
        from repro import errors
        for name in ("ParseError", "SchemaError", "IndexError_",
                     "QueryError", "MatchError", "RepositoryError",
                     "ServiceError"):
            assert issubclass(getattr(errors, name), errors.SchemrError)

    def test_single_catch_covers_library(self, small_repository):
        """One except SchemrError clause handles any library failure."""
        from repro.errors import SchemrError as TopError
        engine = small_repository.engine()
        with pytest.raises(TopError):
            engine.search()  # empty query

    def test_version_exposed(self):
        import repro
        assert repro.__version__
