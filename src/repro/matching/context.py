"""The context matcher: neighboring-element term sets.

"A context matcher builds a set of terms from neighboring elements, and
tries to capture matches when neighboring-element sets are similar to
each other."  (The technique the paper cites from Rahm & Bernstein's
survey.)

Neighborhood definition:

* for an *attribute* — its own words, its entity's name words, and the
  words of its sibling attributes;
* for an *entity* — its name words, its attributes' words, and the name
  words of FK-adjacent entities.

For the query side, keywords have no structure, so a keyword's context
is the whole query term set (all keywords and fragment element names
share one query "neighborhood"); fragment elements get real neighborhoods
from their fragment.  Similarity is Jaccard over analyzed word sets.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.matching.base import Matcher, SimilarityMatrix
from repro.matching.normalize import normalize_words
from repro.model.elements import ElementRef
from repro.model.graph import entity_adjacency
from repro.model.query import QueryGraph, QueryItemKind
from repro.model.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.matching.profile import MatchScratch, SchemaMatchProfile


def _jaccard(a: set[str], b: set[str]) -> float:
    if not a or not b:
        return 0.0
    union = len(a | b)
    if union == 0:
        return 0.0
    return len(a & b) / union


def element_context(schema: Schema, ref: ElementRef,
                    adjacency: dict[str, set[str]] | None = None) -> set[str]:
    """The neighborhood term set of one schema element."""
    if adjacency is None:
        adjacency = entity_adjacency(schema)
    entity = schema.entity(ref.entity)
    terms: set[str] = set(normalize_words(entity.name))
    for attr in entity.attributes:
        terms.update(normalize_words(attr.name))
    if ref.attribute is None:
        for neighbor in adjacency.get(entity.name, ()):
            terms.update(normalize_words(neighbor))
    return terms


class ContextMatcher(Matcher):
    """Scores element pairs by Jaccard similarity of neighborhood terms."""

    name = "context"

    def __init__(self, threshold: float = 0.1) -> None:
        if not 0.0 <= threshold < 1.0:
            raise ValueError(f"threshold must be in [0, 1), got {threshold}")
        self._threshold = threshold

    def match(self, query: QueryGraph, candidate: Schema,
              profile: "SchemaMatchProfile | None" = None,
              scratch: "MatchScratch | None" = None) -> SimilarityMatrix:
        matrix = self.empty_matrix(query, candidate,
                                   profile=profile, scratch=scratch)
        query_contexts = self._memoized_query_contexts(query, scratch)
        if profile is not None:
            # Fast path: neighborhood term sets were derived once at
            # ingest time; no adjacency rebuild, no re-normalization.
            contexts_of = profile.context_terms
            candidate_contexts = [(path, contexts_of[path])
                                  for path in profile.element_paths]
        else:
            adjacency = entity_adjacency(candidate)
            candidate_contexts = [
                (ref.path, element_context(candidate, ref, adjacency))
                for ref in candidate.elements()
            ]
        jaccard_cache = (scratch.jaccard_cache
                         if scratch is not None and profile is not None
                         else None)
        for row_label, query_context in query_contexts:
            if not query_context:
                continue
            for col_label, cand_context in candidate_contexts:
                if jaccard_cache is not None:
                    key = (query_context, cand_context)
                    score = jaccard_cache.get(key)
                    if score is None:
                        score = _jaccard(query_context, cand_context)
                        jaccard_cache[key] = score
                else:
                    score = _jaccard(query_context, cand_context)
                if score >= self._threshold:
                    matrix.set(row_label, col_label, score)
        return matrix

    def _memoized_query_contexts(self, query: QueryGraph,
                                 scratch: "MatchScratch | None"
                                 ) -> list[tuple[str, frozenset[str]]]:
        """Query-side contexts, computed once per search when a scratch
        is available (they are a function of the query alone)."""
        if scratch is not None:
            cached = scratch.matcher_memo.get(self.name)
            if cached is not None:
                return cached  # type: ignore[return-value]
        contexts = self._query_contexts(query)
        if scratch is not None:
            scratch.matcher_memo[self.name] = contexts
        return contexts

    def _query_contexts(self, query: QueryGraph) \
            -> list[tuple[str, frozenset[str]]]:
        labels = query.element_labels()
        contexts: list[tuple[str, frozenset[str]]] = []
        # Keywords share the flat query term set as their context.
        keyword_terms: set[str] = set()
        for name in query.element_names():
            keyword_terms.update(normalize_words(name))
        # Frozen so the (query context, candidate context) pair is a
        # usable memo key in the profiled fast path.
        keyword_context = frozenset(keyword_terms)
        label_iter = iter(labels)
        for item in query.items:
            if item.kind is QueryItemKind.KEYWORD:
                label = next(label_iter)
                contexts.append((label, keyword_context))
            else:
                assert item.fragment is not None
                adjacency = entity_adjacency(item.fragment)
                for ref in item.fragment.elements():
                    label = next(label_iter)
                    contexts.append(
                        (label,
                         frozenset(element_context(item.fragment, ref,
                                                   adjacency))))
        return contexts
