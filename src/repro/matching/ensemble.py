"""Matcher ensemble: run every matcher, combine with a weighting scheme.

"For every candidate schema, the similarity matrices of the different
matchers are combined into a single matrix containing total similarity
scores.  We combine the scores from each matcher with a weighting
scheme, which is initially uniform."
"""

from __future__ import annotations

import types
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.errors import MatchError
from repro.matching.base import Matcher, SimilarityMatrix
from repro.matching.context import ContextMatcher
from repro.matching.name import NameMatcher
from repro.model.query import QueryGraph
from repro.model.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.matching.profile import MatchScratch, SchemaMatchProfile


@dataclass(slots=True)
class EnsembleResult:
    """Combined matrix plus the per-matcher matrices that produced it."""

    combined: SimilarityMatrix
    per_matcher: dict[str, SimilarityMatrix] = field(default_factory=dict)


class MatcherEnsemble:
    """A weighted set of matchers applied to (query, candidate) pairs."""

    def __init__(self, matchers: list[Matcher] | None = None,
                 weights: dict[str, float] | None = None) -> None:
        if matchers is None:
            matchers = [NameMatcher(), ContextMatcher()]
        if not matchers:
            raise MatchError("ensemble needs at least one matcher")
        names = [m.name for m in matchers]
        if len(set(names)) != len(names):
            raise MatchError(f"duplicate matcher names: {names}")
        # Immutable/snapshot containers so the properties below can hand
        # out views instead of copying per access (the engine reads them
        # in the per-candidate hot loop).
        self._matchers: tuple[Matcher, ...] = tuple(matchers)
        self._matcher_names: tuple[str, ...] = tuple(names)
        self._weights = {m.name: 1.0 for m in matchers}
        self._weights_view = types.MappingProxyType(self._weights)
        if weights:
            self.set_weights(weights)

    @classmethod
    def default(cls) -> "MatcherEnsemble":
        """The paper's configuration: name + context, uniform weights."""
        return cls()

    @property
    def matchers(self) -> tuple[Matcher, ...]:
        return self._matchers

    @property
    def matcher_names(self) -> tuple[str, ...]:
        return self._matcher_names

    @property
    def weights(self) -> Mapping[str, float]:
        """Read-only live view of the weighting scheme."""
        return self._weights_view

    def set_weights(self, weights: dict[str, float]) -> None:
        """Replace the weighting scheme (e.g. with learned weights).

        Unknown matcher names are rejected; missing names keep their
        current weight.
        """
        known = set(self._weights)
        unknown = set(weights) - known
        if unknown:
            raise MatchError(
                f"weights name unknown matchers: {sorted(unknown)}")
        # Validate against a snapshot so a rejected update leaves the
        # current scheme untouched (the mutation boundary owns the copy).
        updated = dict(self._weights)
        for name, weight in weights.items():
            if weight < 0:
                raise MatchError(f"weight for {name!r} must be >= 0")
            updated[name] = weight
        if all(w == 0 for w in updated.values()):
            raise MatchError("at least one matcher weight must be positive")
        self._weights.update(updated)

    def match(self, query: QueryGraph, candidate: Schema,
              profile: "SchemaMatchProfile | None" = None,
              scratch: "MatchScratch | None" = None) -> EnsembleResult:
        """Run every matcher and combine into the total-similarity matrix.

        ``profile``/``scratch`` are forwarded to every matcher — the
        candidate's precomputed artifacts and the per-query memoization
        of the acceleration layer.
        """
        per_matcher: dict[str, SimilarityMatrix] = {}
        matrices: list[SimilarityMatrix] = []
        weight_list: list[float] = []
        for matcher in self._matchers:
            matrix = matcher.match(query, candidate,
                                   profile=profile, scratch=scratch)
            per_matcher[matcher.name] = matrix
            matrices.append(matrix)
            weight_list.append(self._weights[matcher.name])
        combined = SimilarityMatrix.combine(matrices, weight_list)
        return EnsembleResult(combined=combined, per_matcher=per_matcher)
