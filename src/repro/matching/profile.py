"""The match-phase acceleration layer: precomputed schema profiles.

Phases two and three of the pipeline used to re-derive everything per
candidate per query: re-parse the stored JSON payload, re-split and
re-normalize every element name, rebuild the entity adjacency map twice
(context matcher and tightness scorer), and re-run the foreign-key
transitive closure.  A :class:`SchemaMatchProfile` computes all of those
artifacts exactly once — at index/ingest time — so a query's match phase
collapses to dict lookups plus arithmetic:

* analyzed element words (abbreviation-expanded and plain) per element;
* weighted n-gram profiles for every distinct word and squashed name
  (seeded into the process-wide gram cache, see
  :func:`repro.matching.ngram.warm_gram_cache`);
* neighboring-element context term sets per element;
* the undirected entity adjacency map and the FK transitive closure
  (component map) feeding :class:`~repro.scoring.neighborhood.NeighborhoodIndex`;
* declared-type families and per-entity attribute word sets for the
  datatype and structure matchers.

:class:`ProfileStore` is the serving side: an LRU read-through cache of
``(schema, profile)`` pairs fronting any ``SchemaSource``, so a candidate
fetched (and profiled) for one query is free for the next.  The
repository invalidates entries on ``update_schema``/``delete_schema``
and the changelog-driven :class:`~repro.repository.indexer.RepositoryIndexer`
rebuilds them on refresh.

:class:`MatchScratch` is the per-query companion: memoization shared
across the candidates (and worker threads) of one search, for the pure
pair functions (name similarity, Jaccard) and the query-side artifacts
every matcher would otherwise recompute per candidate.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol

from repro.errors import RepositoryError, SchemaError
from repro.matching.datatype import type_family
from repro.matching.ngram import warm_gram_cache, weighted_gram_profile
from repro.matching.normalize import normalize_words
from repro.model.graph import entity_adjacency
from repro.model.schema import Schema
from repro.scoring.neighborhood import NeighborhoodIndex, entity_components

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.query import QueryGraph


@dataclass(slots=True)
class SchemaMatchProfile:
    """Per-schema artifacts every matcher needs, computed once.

    All fields are derived purely from the schema, so a profile is valid
    until the schema changes (the repository invalidates on mutation).
    The profile is serializable (:meth:`to_dict` / :meth:`from_dict`) so
    offline indexers can persist it next to the index segment.
    """

    schema_id: int | None
    #: Element paths in canonical schema order — the similarity-matrix
    #: column labels.
    element_paths: list[str]
    #: path -> owning entity name (``patient.height`` -> ``patient``).
    entity_of: dict[str, str]
    #: path -> normalized words of the element's local name, with and
    #: without abbreviation expansion (both views exist because matchers
    #: are individually configurable).
    words_expanded: dict[str, tuple[str, ...]]
    words_plain: dict[str, tuple[str, ...]]
    #: path -> neighboring-element context term set (the context
    #: matcher's per-element neighborhood).
    context_terms: dict[str, frozenset[str]]
    #: Undirected entity-level FK adjacency.
    adjacency: dict[str, frozenset[str]]
    #: entity -> connected-component id (FK transitive closure).
    component_of: dict[str, int]
    #: attribute path -> declared-type family (datatype matcher).
    type_families: dict[str, str | None]
    #: entity -> union of its attributes' words (structure matcher).
    entity_attr_words: dict[str, frozenset[str]]
    #: distinct word / squashed name -> (gram set, total weight); the
    #: ingest-time half of the weighted n-gram similarity.
    word_grams: dict[str, tuple[frozenset[str], float]]
    #: Lazily rehydrated NeighborhoodIndex (not serialized).
    _neighborhoods: NeighborhoodIndex | None = field(
        default=None, repr=False, compare=False)

    @classmethod
    def build(cls, schema: Schema) -> "SchemaMatchProfile":
        """Derive every artifact from ``schema`` in one pass."""
        element_paths: list[str] = []
        entity_of: dict[str, str] = {}
        words_expanded: dict[str, tuple[str, ...]] = {}
        words_plain: dict[str, tuple[str, ...]] = {}
        for ref in schema.elements():
            path = ref.path
            element_paths.append(path)
            entity_of[path] = ref.entity
            name = ref.local_name
            words_expanded[path] = tuple(normalize_words(name, expand=True))
            words_plain[path] = tuple(normalize_words(name, expand=False))

        adjacency = entity_adjacency(schema)
        component_of: dict[str, int] = {}
        components = entity_components(schema, adjacency=adjacency)
        for component_id, component in enumerate(components):
            for entity in component:
                component_of[entity] = component_id

        context_terms: dict[str, frozenset[str]] = {}
        type_families: dict[str, str | None] = {}
        entity_attr_words: dict[str, frozenset[str]] = {}
        for entity in schema.entities.values():
            attr_words: set[str] = set()
            for attr in entity.attributes:
                path = f"{entity.name}.{attr.name}"
                attr_words.update(words_expanded[path])
                type_families[path] = type_family(attr.data_type)
            entity_attr_words[entity.name] = frozenset(attr_words)
            # Every attribute of an entity shares one context set: the
            # entity's name words plus all sibling attribute words.
            shared = frozenset(
                set(words_expanded[entity.name]) | attr_words)
            for attr in entity.attributes:
                context_terms[f"{entity.name}.{attr.name}"] = shared
            # The entity element additionally sees FK-adjacent entity
            # name words.
            entity_terms = set(shared)
            for neighbor in adjacency.get(entity.name, ()):
                entity_terms.update(words_expanded[neighbor])
            context_terms[entity.name] = frozenset(entity_terms)

        word_grams: dict[str, tuple[frozenset[str], float]] = {}
        for table in (words_expanded, words_plain):
            for words in table.values():
                if not words:
                    continue
                for word in words:
                    if word not in word_grams:
                        word_grams[word] = weighted_gram_profile(word)
                squashed = "".join(words)
                if squashed not in word_grams:
                    word_grams[squashed] = weighted_gram_profile(squashed)

        return cls(
            schema_id=schema.schema_id,
            element_paths=element_paths,
            entity_of=entity_of,
            words_expanded=words_expanded,
            words_plain=words_plain,
            context_terms=context_terms,
            adjacency={name: frozenset(neighbors)
                       for name, neighbors in adjacency.items()},
            component_of=component_of,
            type_families=type_families,
            entity_attr_words=entity_attr_words,
            word_grams=word_grams,
        )

    # -- fast-path accessors -------------------------------------------

    def words(self, path: str, expand: bool = True) -> tuple[str, ...]:
        """Normalized words of one element's local name."""
        table = self.words_expanded if expand else self.words_plain
        try:
            return table[path]
        except KeyError:
            raise SchemaError(f"profile has no element {path!r}") from None

    def neighborhood_index(self) -> NeighborhoodIndex:
        """The schema's (cached) NeighborhoodIndex, rehydrated from the
        precomputed component map — no graph traversal per query."""
        index = self._neighborhoods
        if index is None:
            index = NeighborhoodIndex.from_component_map(self.component_of)
            self._neighborhoods = index
        return index

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe form (sets become sorted lists)."""
        return {
            "schema_id": self.schema_id,
            "element_paths": list(self.element_paths),
            "entity_of": dict(self.entity_of),
            "words_expanded": {path: list(words)
                               for path, words in self.words_expanded.items()},
            "words_plain": {path: list(words)
                            for path, words in self.words_plain.items()},
            "context_terms": {path: sorted(terms)
                              for path, terms in self.context_terms.items()},
            "adjacency": {name: sorted(neighbors)
                          for name, neighbors in self.adjacency.items()},
            "component_of": dict(self.component_of),
            "type_families": dict(self.type_families),
            "entity_attr_words": {
                name: sorted(words)
                for name, words in self.entity_attr_words.items()},
            "word_grams": {word: [sorted(grams), weight]
                           for word, (grams, weight)
                           in self.word_grams.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SchemaMatchProfile":
        """Inverse of :meth:`to_dict`; re-seeds the process gram cache."""
        try:
            word_grams = {word: (frozenset(grams), float(weight))
                          for word, (grams, weight)
                          in data["word_grams"].items()}
            profile = cls(
                schema_id=data["schema_id"],
                element_paths=list(data["element_paths"]),
                entity_of=dict(data["entity_of"]),
                words_expanded={path: tuple(words) for path, words
                                in data["words_expanded"].items()},
                words_plain={path: tuple(words) for path, words
                             in data["words_plain"].items()},
                context_terms={path: frozenset(terms) for path, terms
                               in data["context_terms"].items()},
                adjacency={name: frozenset(neighbors) for name, neighbors
                           in data["adjacency"].items()},
                component_of={name: int(component) for name, component
                              in data["component_of"].items()},
                type_families=dict(data["type_families"]),
                entity_attr_words={name: frozenset(words) for name, words
                                   in data["entity_attr_words"].items()},
                word_grams=word_grams,
            )
        except KeyError as exc:
            raise SchemaError(f"profile dict missing key {exc}") from exc
        warm_gram_cache(word_grams)
        return profile


class MatchScratch:
    """Per-query memoization shared across candidates and workers.

    The caches hold results of *pure* functions of their keys, so
    sharing one scratch across the worker threads of a parallel match
    phase is safe: a racing recomputation produces the identical value
    (CPython dict reads/writes are atomic under the GIL).
    """

    __slots__ = ("name_sim_cache", "jaccard_cache", "matcher_memo",
                 "_row_labels")

    def __init__(self) -> None:
        #: (query words, candidate words) -> name similarity.
        self.name_sim_cache: dict[tuple, float] = {}
        #: (query context, candidate context) -> Jaccard similarity.
        self.jaccard_cache: dict[tuple, float] = {}
        #: matcher name -> its prepared query-side artifact.
        self.matcher_memo: dict[str, object] = {}
        self._row_labels: list[str] | None = None

    def row_labels(self, query: "QueryGraph") -> list[str]:
        """The query's element labels, computed once per search."""
        labels = self._row_labels
        if labels is None:
            labels = query.element_labels()
            self._row_labels = labels
        return labels


class SchemaSourceLike(Protocol):  # pragma: no cover - typing only
    """Anything that resolves schema ids to schemas."""

    def get_schema(self, schema_id: int) -> Schema:
        ...


class ProfileStore:
    """LRU read-through cache of (schema, match profile) pairs.

    Fronts any ``SchemaSource``: :meth:`get_schema` satisfies the engine
    protocol from cache, falling through to the underlying source on a
    miss; :meth:`get_profile` serves the precomputed artifacts.  The
    schema and its profile live in one entry, so they can never drift
    apart.  Mutation paths call :meth:`invalidate` (repository CRUD) or
    :meth:`put` (indexer refresh) to keep the cache honest.

    Thread-safe: the engine's parallel match phase reads from worker
    threads while the scheduled indexer refreshes from another.
    """

    def __init__(self, source: SchemaSourceLike,
                 capacity: int = 1024) -> None:
        if capacity <= 0:
            raise RepositoryError(
                f"profile cache capacity must be positive, got {capacity}")
        self._source = source
        self._capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[int, tuple[Schema, SchemaMatchProfile]]" \
            = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- SchemaSource protocol -----------------------------------------

    def get_schema(self, schema_id: int) -> Schema:
        """The cached schema (read-through on miss).

        Returned objects are shared across callers — treat as
        immutable; use :meth:`repro.model.schema.Schema.copy` before
        mutating.
        """
        return self._entry(schema_id)[0]

    def get_profile(self, schema_id: int) -> SchemaMatchProfile:
        """The cached match profile (read-through on miss)."""
        return self._entry(schema_id)[1]

    # -- cache management ----------------------------------------------

    def put(self, schema: Schema) -> SchemaMatchProfile:
        """Eagerly (re)build the entry for ``schema`` — the ingest path.

        Called by the repository indexer while applying changelog
        entries, so profiles are ready before the first query needs
        them.
        """
        if schema.schema_id is None:
            raise RepositoryError(
                "cannot profile a schema without an id; store it first")
        return self._admit(schema)[1]

    def invalidate(self, schema_id: int) -> bool:
        """Drop one entry; returns whether it was cached."""
        with self._lock:
            return self._entries.pop(schema_id, None) is not None

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, schema_id: int) -> bool:
        with self._lock:
            return schema_id in self._entries

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def hits(self) -> int:
        """Lookups served from cache."""
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        """Lookups that fell through to the source (and rebuilt)."""
        with self._lock:
            return self._misses

    @property
    def evictions(self) -> int:
        """Entries dropped to stay within capacity (LRU overflow)."""
        with self._lock:
            return self._evictions

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self._hits + self._misses
            return self._hits / total if total else 0.0

    # -- internals -----------------------------------------------------

    def _entry(self, schema_id: int) -> tuple[Schema, SchemaMatchProfile]:
        with self._lock:
            entry = self._entries.get(schema_id)
            if entry is not None:
                self._entries.move_to_end(schema_id)
                self._hits += 1
                return entry
            self._misses += 1
        # Fetch and build outside the lock: sqlite and profile building
        # are the slow parts, and a racing double-build is benign.
        from repro.resilience.faults import FAULTS
        FAULTS.hit("profile_store.lookup")
        schema = self._source.get_schema(schema_id)
        return self._admit(schema)

    def _admit(self, schema: Schema) \
            -> tuple[Schema, SchemaMatchProfile]:
        profile = SchemaMatchProfile.build(schema)
        entry = (schema, profile)
        assert schema.schema_id is not None
        with self._lock:
            self._entries[schema.schema_id] = entry
            self._entries.move_to_end(schema.schema_id)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
        return entry
