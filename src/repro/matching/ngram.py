"""N-gram machinery for the name matcher.

"Each schema element in the query is parsed into a set of all possible
n-grams, ranging in length from one character to the length of the
word."  Overlap is scored with a length-weighted Dice coefficient:
longer shared n-grams count more, which is what makes ``patientheight``
and ``patht`` score well (shared ``pat`` + ``ht``) while keeping random
single-character collisions cheap.
"""

from __future__ import annotations


def ngrams(text: str, min_n: int = 1, max_n: int | None = None) -> set[str]:
    """All character n-grams of ``text`` with lengths in [min_n, max_n].

    ``max_n=None`` means up to ``len(text)`` (the paper's definition).
    """
    if min_n < 1:
        raise ValueError(f"min_n must be >= 1, got {min_n}")
    length = len(text)
    if max_n is None or max_n > length:
        max_n = length
    grams: set[str] = set()
    for n in range(min_n, max_n + 1):
        for i in range(length - n + 1):
            grams.add(text[i:i + n])
    return grams


def dice_similarity(a: set[str], b: set[str]) -> float:
    """Plain Dice coefficient over two n-gram sets."""
    if not a and not b:
        return 0.0
    return 2.0 * len(a & b) / (len(a) + len(b))


#: Process-wide gram-profile cache.  A plain dict (not ``lru_cache``)
#: so the ingest-time profile builder can seed it via
#: :func:`warm_gram_cache` — a deserialized schema profile then serves
#: gram lookups without recomputing a single n-gram.
_GRAM_CACHE: dict[tuple[str, int, int], tuple[frozenset[str], float]] = {}
_GRAM_CACHE_MAX = 1 << 17


def weighted_gram_profile(text: str, min_n: int = 1, max_n_cap: int = 24) \
        -> tuple[frozenset[str], float]:
    """(gram set, total weight) for ``text``; weight of a gram = its length.

    Cached because candidate schemas repeat element names constantly
    during a search session.
    """
    key = (text, min_n, max_n_cap)
    hit = _GRAM_CACHE.get(key)
    if hit is None:
        grams = ngrams(text, min_n=min_n,
                       max_n=min(len(text), max_n_cap) or 1)
        hit = (frozenset(grams), float(sum(len(g) for g in grams)))
        if len(_GRAM_CACHE) >= _GRAM_CACHE_MAX:
            _GRAM_CACHE.clear()
        _GRAM_CACHE[key] = hit
    return hit


def warm_gram_cache(profiles: dict[str, tuple[frozenset[str], float]],
                    min_n: int = 1, max_n_cap: int = 24) -> int:
    """Seed the gram cache with precomputed profiles; returns seeded count.

    Used by :class:`~repro.matching.profile.SchemaMatchProfile` so that
    profiles loaded from disk make their n-gram work reusable without
    re-deriving it.
    """
    seeded = 0
    for word, profile in profiles.items():
        key = (word, min_n, max_n_cap)
        if key not in _GRAM_CACHE and len(_GRAM_CACHE) < _GRAM_CACHE_MAX:
            _GRAM_CACHE[key] = profile
            seeded += 1
    return seeded


# Backwards-compatible internal alias (pre-acceleration name).
_weighted_grams = weighted_gram_profile


def weighted_ngram_similarity(a: str, b: str, min_n: int = 1,
                              max_n_cap: int = 24) -> float:
    """Length-weighted Dice coefficient between two strings' n-gram sets.

    ``sim = 2 * weight(shared grams) / (weight(a grams) + weight(b grams))``

    Identical strings score 1.0; disjoint alphabets score 0.0.
    ``max_n_cap`` bounds work on pathologically long names.
    """
    if not a or not b:
        return 0.0
    if a == b:
        return 1.0
    grams_a, weight_a = weighted_gram_profile(a, min_n, max_n_cap)
    grams_b, weight_b = weighted_gram_profile(b, min_n, max_n_cap)
    if weight_a + weight_b == 0.0:
        return 0.0
    shared = grams_a & grams_b
    shared_weight = sum(len(g) for g in shared)
    return 2.0 * shared_weight / (weight_a + weight_b)
