"""N-gram machinery for the name matcher.

"Each schema element in the query is parsed into a set of all possible
n-grams, ranging in length from one character to the length of the
word."  Overlap is scored with a length-weighted Dice coefficient:
longer shared n-grams count more, which is what makes ``patientheight``
and ``patht`` score well (shared ``pat`` + ``ht``) while keeping random
single-character collisions cheap.
"""

from __future__ import annotations

from functools import lru_cache


def ngrams(text: str, min_n: int = 1, max_n: int | None = None) -> set[str]:
    """All character n-grams of ``text`` with lengths in [min_n, max_n].

    ``max_n=None`` means up to ``len(text)`` (the paper's definition).
    """
    if min_n < 1:
        raise ValueError(f"min_n must be >= 1, got {min_n}")
    length = len(text)
    if max_n is None or max_n > length:
        max_n = length
    grams: set[str] = set()
    for n in range(min_n, max_n + 1):
        for i in range(length - n + 1):
            grams.add(text[i:i + n])
    return grams


def dice_similarity(a: set[str], b: set[str]) -> float:
    """Plain Dice coefficient over two n-gram sets."""
    if not a and not b:
        return 0.0
    return 2.0 * len(a & b) / (len(a) + len(b))


@lru_cache(maxsize=65536)
def _weighted_grams(text: str, min_n: int, max_n_cap: int) \
        -> tuple[frozenset[str], float]:
    """(gram set, total weight) for ``text``; weight of a gram = its length.

    Cached because candidate schemas repeat element names constantly
    during a search session.
    """
    grams = ngrams(text, min_n=min_n,
                   max_n=min(len(text), max_n_cap) or 1)
    weight = float(sum(len(g) for g in grams))
    return frozenset(grams), weight


def weighted_ngram_similarity(a: str, b: str, min_n: int = 1,
                              max_n_cap: int = 24) -> float:
    """Length-weighted Dice coefficient between two strings' n-gram sets.

    ``sim = 2 * weight(shared grams) / (weight(a grams) + weight(b grams))``

    Identical strings score 1.0; disjoint alphabets score 0.0.
    ``max_n_cap`` bounds work on pathologically long names.
    """
    if not a or not b:
        return 0.0
    if a == b:
        return 1.0
    grams_a, weight_a = _weighted_grams(a, min_n, max_n_cap)
    grams_b, weight_b = _weighted_grams(b, min_n, max_n_cap)
    if weight_a + weight_b == 0.0:
        return 0.0
    shared = grams_a & grams_b
    shared_weight = sum(len(g) for g in shared)
    return 2.0 * shared_weight / (weight_a + weight_b)
