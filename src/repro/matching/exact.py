"""Exact matcher: normalized-name equality.

The cheapest and highest-precision signal in the ensemble: 1.0 when two
element names normalize to the same string, else 0.0.  Useful as an
anchor for the learner (exact hits are almost always relevant) and as a
baseline in the ablation bench.
"""

from __future__ import annotations

from repro.matching.base import Matcher, SimilarityMatrix
from repro.matching.normalize import normalize_name
from repro.model.query import QueryGraph
from repro.model.schema import Schema


class ExactMatcher(Matcher):
    """1.0 for equal normalized names, 0.0 otherwise."""

    name = "exact"

    def __init__(self, expand: bool = True) -> None:
        self._expand = expand

    def match(self, query: QueryGraph, candidate: Schema) -> SimilarityMatrix:
        matrix = self.empty_matrix(query, candidate)
        candidate_norms: dict[str, list[str]] = {}
        for path, name, _kind in self.candidate_elements(candidate):
            norm = normalize_name(name, expand=self._expand)
            if norm:
                candidate_norms.setdefault(norm, []).append(path)
        for label, name in self.query_elements(query):
            norm = normalize_name(name, expand=self._expand)
            for path in candidate_norms.get(norm, ()):
                matrix.set(label, path, 1.0)
        return matrix
