"""Exact matcher: normalized-name equality.

The cheapest and highest-precision signal in the ensemble: 1.0 when two
element names normalize to the same string, else 0.0.  Useful as an
anchor for the learner (exact hits are almost always relevant) and as a
baseline in the ablation bench.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.matching.base import Matcher, SimilarityMatrix
from repro.matching.normalize import normalize_name
from repro.model.query import QueryGraph
from repro.model.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.matching.profile import MatchScratch, SchemaMatchProfile


class ExactMatcher(Matcher):
    """1.0 for equal normalized names, 0.0 otherwise."""

    name = "exact"

    def __init__(self, expand: bool = True) -> None:
        self._expand = expand

    def match(self, query: QueryGraph, candidate: Schema,
              profile: "SchemaMatchProfile | None" = None,
              scratch: "MatchScratch | None" = None) -> SimilarityMatrix:
        matrix = self.empty_matrix(query, candidate,
                                   profile=profile, scratch=scratch)
        candidate_norms: dict[str, list[str]] = {}
        if profile is not None:
            words_of = (profile.words_expanded if self._expand
                        else profile.words_plain)
            for path in profile.element_paths:
                norm = "".join(words_of[path])
                if norm:
                    candidate_norms.setdefault(norm, []).append(path)
        else:
            for path, name, _kind in self.candidate_elements(candidate):
                norm = normalize_name(name, expand=self._expand)
                if norm:
                    candidate_norms.setdefault(norm, []).append(path)
        for label, norm in self._query_norms(query, scratch):
            for path in candidate_norms.get(norm, ()):
                matrix.set(label, path, 1.0)
        return matrix

    def _query_norms(self, query: QueryGraph,
                     scratch: "MatchScratch | None"
                     ) -> list[tuple[str, str]]:
        if scratch is not None:
            cached = scratch.matcher_memo.get(self.name)
            if cached is not None:
                return cached  # type: ignore[return-value]
        norms = [(label, normalize_name(name, expand=self._expand))
                 for label, name in self.query_elements(query)]
        if scratch is not None:
            scratch.matcher_memo[self.name] = norms
        return norms
