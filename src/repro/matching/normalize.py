"""Term normalization for name matching.

"A name matcher normalizes terms and computes n-gram overlap..."
Normalization here means: identifier splitting, lowercasing, and
expansion of the abbreviations that plague real schema names (``qty``,
``amt``, ``dob``, ``addr``...).  The abbreviation table is intentionally
conservative — only unambiguous, widely used short forms — because a
wrong expansion costs more than a missed one (the n-gram overlap still
catches prefix abbreviations like ``pat`` vs ``patient`` on its own).
"""

from __future__ import annotations

from repro.text.splitter import split_words_lower

#: Unambiguous schema-name abbreviations -> expansions.
ABBREVIATIONS: dict[str, str] = {
    "abbr": "abbreviation",
    "acct": "account",
    "addr": "address",
    "amt": "amount",
    "avg": "average",
    "bal": "balance",
    "cat": "category",
    "cnt": "count",
    "ctry": "country",
    "curr": "currency",
    "desc": "description",
    "dept": "department",
    "dob": "date of birth",
    "emp": "employee",
    "fname": "first name",
    "gend": "gender",
    "govt": "government",
    "hosp": "hospital",
    "hr": "hour",
    "ht": "height",
    "lang": "language",
    "lname": "last name",
    "loc": "location",
    "max": "maximum",
    "med": "medication",
    "min": "minimum",
    "mgr": "manager",
    "msg": "message",
    "nbr": "number",
    "num": "number",
    "org": "organization",
    "pct": "percent",
    "phn": "phone",
    "pos": "position",
    "prod": "product",
    "pwd": "password",
    "qty": "quantity",
    "ref": "reference",
    "sal": "salary",
    "ssn": "social security number",
    "st": "street",
    "stat": "status",
    "tel": "telephone",
    "temp": "temperature",
    "tot": "total",
    "usr": "user",
    "wt": "weight",
    "yr": "year",
}


def expand_abbreviations(words: list[str]) -> list[str]:
    """Replace each known abbreviation with its expansion words."""
    out: list[str] = []
    for word in words:
        expansion = ABBREVIATIONS.get(word)
        if expansion is None:
            out.append(word)
        else:
            out.extend(expansion.split())
    return out


def normalize_name(name: str, expand: bool = True) -> str:
    """Canonical single-string form of an element name.

    Splits the identifier, lowercases, optionally expands abbreviations,
    and rejoins without separators.  Removing separators is what lets
    pure n-gram overlap see through "delimiter characters not in the
    original query" (the paper's example failure mode).

    >>> normalize_name("Patient_Height")
    'patientheight'
    >>> normalize_name("pat_ht")  # 'pat' is not in the table; 'ht' is
    'patheight'
    """
    words = split_words_lower(name)
    if expand:
        words = expand_abbreviations(words)
    return "".join(words)


def normalize_words(name: str, expand: bool = True) -> list[str]:
    """Word-list form of :func:`normalize_name` (for set matchers)."""
    words = split_words_lower(name)
    if expand:
        words = expand_abbreviations(words)
    return words
