"""Data-type matcher: type-family compatibility for attribute pairs.

Schemr's OpenII integration sketch mentions "a codebook that contains
data types like units, date/time, and geographic location".  This
matcher implements the data-type leg: declared SQL/XSD types are mapped
into families (numeric, text, temporal, boolean, binary, identifier)
and attribute pairs are scored by a family-compatibility table.  Pairs
where either side lacks a declared type, and any pair involving an
entity, score 0 — the matcher abstains rather than guessing.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING

from repro.matching.base import Matcher, SimilarityMatrix
from repro.model.elements import ElementKind, ElementRef
from repro.model.query import QueryGraph, QueryItemKind
from repro.model.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.matching.profile import MatchScratch, SchemaMatchProfile

#: type-name (lowercased, parameters stripped) -> family
_TYPE_FAMILIES: dict[str, str] = {
    # numeric
    "int": "numeric", "integer": "numeric", "smallint": "numeric",
    "bigint": "numeric", "tinyint": "numeric", "decimal": "numeric",
    "numeric": "numeric", "float": "numeric", "real": "numeric",
    "double": "numeric", "double precision": "numeric", "number": "numeric",
    "byte": "numeric", "short": "numeric", "long": "numeric",
    # text
    "char": "text", "varchar": "text", "text": "text", "string": "text",
    "clob": "text", "nvarchar": "text", "nchar": "text", "token": "text",
    "normalizedstring": "text",
    # temporal
    "date": "temporal", "time": "temporal", "datetime": "temporal",
    "timestamp": "temporal", "year": "temporal", "duration": "temporal",
    "gyear": "temporal", "gmonth": "temporal", "gday": "temporal",
    # boolean
    "bool": "boolean", "boolean": "boolean", "bit": "boolean",
    # binary
    "blob": "binary", "binary": "binary", "varbinary": "binary",
    "bytea": "binary", "base64binary": "binary", "hexbinary": "binary",
    # identifiers
    "id": "identifier", "idref": "identifier", "uuid": "identifier",
    "serial": "identifier", "bigserial": "identifier",
}

#: (family, family) -> score; symmetric, same-family pairs handled apart.
_CROSS_FAMILY: dict[frozenset[str], float] = {
    frozenset({"numeric", "identifier"}): 0.6,
    frozenset({"text", "identifier"}): 0.4,
    frozenset({"numeric", "temporal"}): 0.2,
    frozenset({"text", "temporal"}): 0.2,
    frozenset({"numeric", "boolean"}): 0.2,
}

_PARAMS = re.compile(r"\(.*\)$")


def type_family(declared: str) -> str | None:
    """Map a declared type string to its family, or None when unknown."""
    cleaned = _PARAMS.sub("", declared.strip().lower()).strip()
    if not cleaned:
        return None
    return _TYPE_FAMILIES.get(cleaned)


def family_similarity(a: str | None, b: str | None) -> float:
    """Compatibility score between two type families."""
    if a is None or b is None:
        return 0.0
    if a == b:
        return 1.0
    return _CROSS_FAMILY.get(frozenset({a, b}), 0.0)


class DataTypeMatcher(Matcher):
    """Scores attribute pairs by declared-type family compatibility.

    Only fragment attributes carry declared types on the query side, so
    keyword rows always stay 0 — this matcher refines fragment queries
    and abstains otherwise, which is the behaviour the ensemble
    weighting expects.
    """

    name = "datatype"

    def match(self, query: QueryGraph, candidate: Schema,
              profile: "SchemaMatchProfile | None" = None,
              scratch: "MatchScratch | None" = None) -> SimilarityMatrix:
        matrix = self.empty_matrix(query, candidate,
                                   profile=profile, scratch=scratch)
        if profile is not None:
            candidate_families = list(profile.type_families.items())
        else:
            candidate_families = self._attribute_families(candidate)
        for label, family in self._query_families(query, scratch):
            if family is None:
                continue
            for path, cand_family in candidate_families:
                score = family_similarity(family, cand_family)
                if score > 0.0:
                    matrix.set(label, path, score)
        return matrix

    def _query_families(self, query: QueryGraph,
                        scratch: "MatchScratch | None"
                        ) -> list[tuple[str, str | None]]:
        """(label, declared-type family) per fragment element, memoized
        per search; keyword rows are omitted (they carry no type)."""
        if scratch is not None:
            cached = scratch.matcher_memo.get(self.name)
            if cached is not None:
                return cached  # type: ignore[return-value]
        families: list[tuple[str, str | None]] = []
        labels = iter(query.element_labels())
        for item in query.items:
            if item.kind is QueryItemKind.KEYWORD:
                next(labels)  # keywords have no declared type
                continue
            assert item.fragment is not None
            for ref in item.fragment.elements():
                label = next(labels)
                families.append(
                    (label, self._ref_family(item.fragment, ref)))
        if scratch is not None:
            scratch.matcher_memo[self.name] = families
        return families

    @staticmethod
    def _ref_family(schema: Schema, ref: ElementRef) -> str | None:
        if ref.kind is ElementKind.ENTITY:
            return None
        attribute = schema.entity(ref.entity).attribute(ref.attribute or "")
        return type_family(attribute.data_type)

    @staticmethod
    def _attribute_families(schema: Schema) -> list[tuple[str, str | None]]:
        out: list[tuple[str, str | None]] = []
        for entity in schema.entities.values():
            for attr in entity.attributes:
                out.append((f"{entity.name}.{attr.name}",
                            type_family(attr.data_type)))
        return out
