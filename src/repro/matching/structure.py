"""Structural matcher: entity-shape similarity for fragment queries.

When the query contains a schema fragment, its *entities* carry
structural signal beyond their names: how many attributes they have and
how their attribute names distribute.  This matcher scores
entity/entity pairs by combining child-name overlap (Jaccard over
normalized attribute words) with an attribute-count ratio, and assigns
attribute/attribute pairs the score of their parent entity pair scaled
down — a cheap stand-in for the propagation step of similarity-flooding
style algorithms.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.matching.base import Matcher, SimilarityMatrix
from repro.matching.normalize import normalize_words
from repro.model.elements import Entity
from repro.model.query import QueryGraph, QueryItemKind
from repro.model.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.matching.profile import MatchScratch, SchemaMatchProfile

#: Attribute pairs inherit this fraction of their entities' score.
_CHILD_PROPAGATION = 0.5


def _entity_word_set(entity: Entity) -> set[str]:
    words: set[str] = set()
    for attr in entity.attributes:
        words.update(normalize_words(attr.name))
    return words


def _shape_score(words_a: frozenset[str] | set[str], count_a: int,
                 words_b: frozenset[str] | set[str], count_b: int) -> float:
    if not count_a or not count_b:
        return 0.0
    union = words_a | words_b
    name_overlap = (len(words_a & words_b) / len(union)) if union else 0.0
    count_ratio = min(count_a, count_b) / max(count_a, count_b)
    return 0.7 * name_overlap + 0.3 * count_ratio


def entity_shape_similarity(a: Entity, b: Entity) -> float:
    """Structural similarity of two entities in [0, 1].

    0.7 * child-name Jaccard + 0.3 * attribute-count ratio.  Entities
    with no attributes score 0 (no structure to compare).
    """
    return _shape_score(_entity_word_set(a), len(a.attributes),
                        _entity_word_set(b), len(b.attributes))


class StructureMatcher(Matcher):
    """Scores entity pairs by shape; propagates a fraction to children."""

    name = "structure"

    def __init__(self, threshold: float = 0.1) -> None:
        if not 0.0 <= threshold < 1.0:
            raise ValueError(f"threshold must be in [0, 1), got {threshold}")
        self._threshold = threshold

    def match(self, query: QueryGraph, candidate: Schema,
              profile: "SchemaMatchProfile | None" = None,
              scratch: "MatchScratch | None" = None) -> SimilarityMatrix:
        matrix = self.empty_matrix(query, candidate,
                                   profile=profile, scratch=scratch)
        cand_words_of = profile.entity_attr_words if profile is not None \
            else None
        for fragment_labels, query_entity, query_words in \
                self._query_shapes(query, scratch):
            entity_label = fragment_labels[query_entity.name]
            for cand_entity in candidate.entities.values():
                if cand_words_of is not None:
                    score = _shape_score(
                        query_words, len(query_entity.attributes),
                        cand_words_of[cand_entity.name],
                        len(cand_entity.attributes))
                else:
                    score = _shape_score(
                        query_words, len(query_entity.attributes),
                        _entity_word_set(cand_entity),
                        len(cand_entity.attributes))
                if score < self._threshold:
                    continue
                matrix.set(entity_label, cand_entity.name, score)
                child_score = score * _CHILD_PROPAGATION
                if child_score < self._threshold:
                    continue
                for q_attr in query_entity.attributes:
                    q_label = fragment_labels[
                        f"{query_entity.name}.{q_attr.name}"]
                    for c_attr in cand_entity.attributes:
                        col = f"{cand_entity.name}.{c_attr.name}"
                        if matrix.get(q_label, col) < child_score:
                            matrix.set(q_label, col, child_score)
        return matrix

    def _query_shapes(self, query: QueryGraph,
                      scratch: "MatchScratch | None"
                      ) -> list[tuple[dict[str, str], Entity, set[str]]]:
        """(fragment labels by path, query entity, its attribute word
        set) per fragment entity, memoized per search."""
        if scratch is not None:
            cached = scratch.matcher_memo.get(self.name)
            if cached is not None:
                return cached  # type: ignore[return-value]
        shapes: list[tuple[dict[str, str], Entity, set[str]]] = []
        labels = iter(query.element_labels())
        for item in query.items:
            if item.kind is QueryItemKind.KEYWORD:
                next(labels)
                continue
            assert item.fragment is not None
            # Collect this fragment's labels keyed by element path.
            fragment_labels: dict[str, str] = {}
            for ref in item.fragment.elements():
                fragment_labels[ref.path] = next(labels)
            for query_entity in item.fragment.entities.values():
                shapes.append((fragment_labels, query_entity,
                               _entity_word_set(query_entity)))
        if scratch is not None:
            scratch.matcher_memo[self.name] = shapes
        return shapes
