"""The name matcher: normalized n-gram overlap.

"We found this matcher to be particularly helpful for properly ranking
schemas containing abbreviated terms, alternate grammatical forms, and
delimiter characters not in the original query."

* abbreviations — handled by abbreviation expansion plus the fact that
  an abbreviation's n-grams are usually a subset of the full word's;
* alternate grammatical forms — shared stems dominate the weighted
  n-gram overlap (``diagnosis`` / ``diagnoses``);
* delimiters — normalization strips them before n-grams are taken.

Similarity between two element names is the max of two views:

* *whole-string*: weighted n-gram overlap of the fully squashed names
  (handles names that cannot be split, e.g. ``patientheight``);
* *word-aligned*: each side's words greedily aligned to the other
  side's best-matching word, averaged symmetrically (handles compound
  vs. single-word names, e.g. ``patient height`` vs ``height``).
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING

from repro.matching.base import Matcher, SimilarityMatrix
from repro.matching.ngram import weighted_ngram_similarity
from repro.matching.normalize import normalize_words
from repro.model.query import QueryGraph
from repro.model.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.matching.profile import MatchScratch, SchemaMatchProfile


@lru_cache(maxsize=65536)
def _word_similarity(a: str, b: str) -> float:
    return weighted_ngram_similarity(a, b)


def name_similarity(a_words: tuple[str, ...],
                    b_words: tuple[str, ...]) -> float:
    """Similarity of two normalized word tuples in [0, 1]."""
    if not a_words or not b_words:
        return 0.0
    whole = _word_similarity("".join(a_words), "".join(b_words))
    if len(a_words) == 1 and len(b_words) == 1:
        return whole
    forward = sum(max(_word_similarity(a, b) for b in b_words)
                  for a in a_words) / len(a_words)
    backward = sum(max(_word_similarity(b, a) for a in a_words)
                   for b in b_words) / len(b_words)
    aligned = (forward + backward) / 2.0
    return max(whole, aligned)


class NameMatcher(Matcher):
    """Scores element pairs by n-gram overlap of normalized names.

    ``threshold`` zeroes scores below a noise floor: every pair of
    English words shares a few single letters, and keeping that haze in
    the matrix would pollute the tightness-of-fit aggregates.
    """

    name = "name"

    def __init__(self, threshold: float = 0.25, expand: bool = True) -> None:
        if not 0.0 <= threshold < 1.0:
            raise ValueError(f"threshold must be in [0, 1), got {threshold}")
        self._threshold = threshold
        self._expand = expand

    def match(self, query: QueryGraph, candidate: Schema,
              profile: "SchemaMatchProfile | None" = None,
              scratch: "MatchScratch | None" = None) -> SimilarityMatrix:
        matrix = self.empty_matrix(query, candidate,
                                   profile=profile, scratch=scratch)
        query_pairs = self._query_pairs(query, scratch)
        if profile is not None:
            words_of = (profile.words_expanded if self._expand
                        else profile.words_plain)
            candidate_pairs = [(path, words_of[path])
                               for path in profile.element_paths]
        else:
            candidate_pairs = [
                (path, tuple(normalize_words(name, expand=self._expand)))
                for path, name, _kind in self.candidate_elements(candidate)
            ]
        sim_cache = scratch.name_sim_cache if scratch is not None else None
        for row_label, query_words in query_pairs:
            if not query_words:
                continue
            for col_label, cand_words in candidate_pairs:
                if not cand_words:
                    continue
                if sim_cache is not None:
                    key = (query_words, cand_words)
                    score = sim_cache.get(key)
                    if score is None:
                        score = name_similarity(query_words, cand_words)
                        sim_cache[key] = score
                else:
                    score = name_similarity(query_words, cand_words)
                if score >= self._threshold:
                    matrix.set(row_label, col_label, min(score, 1.0))
        return matrix

    def _query_pairs(self, query: QueryGraph,
                     scratch: "MatchScratch | None"
                     ) -> list[tuple[str, tuple[str, ...]]]:
        """(label, normalized words) per query element, memoized per
        search so the normalization runs once, not once per candidate."""
        if scratch is not None:
            cached = scratch.matcher_memo.get(self.name)
            if cached is not None:
                return cached  # type: ignore[return-value]
        pairs = [
            (label, tuple(normalize_words(name, expand=self._expand)))
            for label, name in self.query_elements(query)
        ]
        if scratch is not None:
            scratch.matcher_memo[self.name] = pairs
        return pairs
