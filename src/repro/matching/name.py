"""The name matcher: normalized n-gram overlap.

"We found this matcher to be particularly helpful for properly ranking
schemas containing abbreviated terms, alternate grammatical forms, and
delimiter characters not in the original query."

* abbreviations — handled by abbreviation expansion plus the fact that
  an abbreviation's n-grams are usually a subset of the full word's;
* alternate grammatical forms — shared stems dominate the weighted
  n-gram overlap (``diagnosis`` / ``diagnoses``);
* delimiters — normalization strips them before n-grams are taken.

Similarity between two element names is the max of two views:

* *whole-string*: weighted n-gram overlap of the fully squashed names
  (handles names that cannot be split, e.g. ``patientheight``);
* *word-aligned*: each side's words greedily aligned to the other
  side's best-matching word, averaged symmetrically (handles compound
  vs. single-word names, e.g. ``patient height`` vs ``height``).
"""

from __future__ import annotations

from functools import lru_cache

from repro.matching.base import Matcher, SimilarityMatrix
from repro.matching.ngram import weighted_ngram_similarity
from repro.matching.normalize import normalize_words
from repro.model.query import QueryGraph
from repro.model.schema import Schema


@lru_cache(maxsize=65536)
def _word_similarity(a: str, b: str) -> float:
    return weighted_ngram_similarity(a, b)


def name_similarity(a_words: tuple[str, ...],
                    b_words: tuple[str, ...]) -> float:
    """Similarity of two normalized word tuples in [0, 1]."""
    if not a_words or not b_words:
        return 0.0
    whole = _word_similarity("".join(a_words), "".join(b_words))
    if len(a_words) == 1 and len(b_words) == 1:
        return whole
    forward = sum(max(_word_similarity(a, b) for b in b_words)
                  for a in a_words) / len(a_words)
    backward = sum(max(_word_similarity(b, a) for a in a_words)
                   for b in b_words) / len(b_words)
    aligned = (forward + backward) / 2.0
    return max(whole, aligned)


class NameMatcher(Matcher):
    """Scores element pairs by n-gram overlap of normalized names.

    ``threshold`` zeroes scores below a noise floor: every pair of
    English words shares a few single letters, and keeping that haze in
    the matrix would pollute the tightness-of-fit aggregates.
    """

    name = "name"

    def __init__(self, threshold: float = 0.25, expand: bool = True) -> None:
        if not 0.0 <= threshold < 1.0:
            raise ValueError(f"threshold must be in [0, 1), got {threshold}")
        self._threshold = threshold
        self._expand = expand

    def match(self, query: QueryGraph, candidate: Schema) -> SimilarityMatrix:
        matrix = self.empty_matrix(query, candidate)
        query_pairs = [
            (label, tuple(normalize_words(name, expand=self._expand)))
            for label, name in self.query_elements(query)
        ]
        candidate_pairs = [
            (path, tuple(normalize_words(name, expand=self._expand)))
            for path, name, _kind in self.candidate_elements(candidate)
        ]
        for row_label, query_words in query_pairs:
            if not query_words:
                continue
            for col_label, cand_words in candidate_pairs:
                if not cand_words:
                    continue
                score = name_similarity(query_words, cand_words)
                if score >= self._threshold:
                    matrix.set(row_label, col_label, min(score, 1.0))
        return matrix
