"""Schema matching: the fine-grained ensemble of phase two.

"The top candidate schemas are evaluated against the query-graph and
ranked using an ensemble of fine-grained matchers. ... Each matcher
produces a similarity matrix between query graph elements and schema
elements. ... the similarity matrices of the different matchers are
combined into a single matrix containing total similarity scores [with]
a weighting scheme, which is initially uniform."

Matchers provided (the paper's two plus the "other matchers may be used
as well" extension set):

* :class:`~repro.matching.name.NameMatcher` — normalized n-gram overlap
  (the paper's most useful matcher);
* :class:`~repro.matching.context.ContextMatcher` — neighboring-element
  term sets (Rahm & Bernstein-style context);
* :class:`~repro.matching.exact.ExactMatcher` — normalized equality;
* :class:`~repro.matching.synonym.SynonymMatcher` — thesaurus lookup;
* :class:`~repro.matching.datatype.DataTypeMatcher` — type-family
  compatibility for attribute/attribute pairs;
* :class:`~repro.matching.structure.StructureMatcher` — entity shape
  similarity for fragment queries.

:class:`~repro.matching.ensemble.MatcherEnsemble` combines them;
:class:`~repro.matching.learner.WeightLearner` trains the weighting
scheme from recorded search history with logistic regression, as the
paper proposes via Madhavan et al.'s corpus-based meta-learner.
"""

from repro.matching.base import Matcher, SimilarityMatrix
from repro.matching.context import ContextMatcher
from repro.matching.datatype import DataTypeMatcher
from repro.matching.ensemble import MatcherEnsemble
from repro.matching.exact import ExactMatcher
from repro.matching.learner import TrainingExample, WeightLearner
from repro.matching.name import NameMatcher
from repro.matching.ngram import (
    dice_similarity,
    ngrams,
    warm_gram_cache,
    weighted_gram_profile,
    weighted_ngram_similarity,
)
from repro.matching.normalize import expand_abbreviations, normalize_name
from repro.matching.profile import MatchScratch, ProfileStore, SchemaMatchProfile
from repro.matching.structure import StructureMatcher
from repro.matching.synonym import SynonymMatcher

__all__ = [
    "ContextMatcher",
    "DataTypeMatcher",
    "ExactMatcher",
    "MatchScratch",
    "Matcher",
    "MatcherEnsemble",
    "NameMatcher",
    "ProfileStore",
    "SchemaMatchProfile",
    "SimilarityMatrix",
    "StructureMatcher",
    "SynonymMatcher",
    "TrainingExample",
    "WeightLearner",
    "dice_similarity",
    "expand_abbreviations",
    "ngrams",
    "normalize_name",
    "warm_gram_cache",
    "weighted_gram_profile",
    "weighted_ngram_similarity",
]
