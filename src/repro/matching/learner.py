"""Meta-learner: logistic regression over recorded search history.

"As Schemr is utilized in practice, we can record search histories to
create a training set of search-term to schema-fragment matches.  With
such a training set, we may then determine an appropriate weighting
scheme.  For instance, Madhavan et al use a meta-learner to compute a
logistic regression over a training set of schemas."

Each training example carries the per-matcher evidence for one
(query, schema) pair — here, the max combined-matrix cell each matcher
produced — and a binary relevance label (the user clicked / marked the
result).  The learner fits w via regularized logistic regression
(batch gradient descent, numpy) and exposes the positive part of w,
normalized, as the ensemble weighting scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MatchError


@dataclass(frozen=True, slots=True)
class TrainingExample:
    """Per-matcher evidence for one (query, schema) pair, plus the label."""

    features: dict[str, float]
    relevant: bool


class WeightLearner:
    """Fits matcher weights from labelled search history."""

    def __init__(self, matcher_names: list[str], learning_rate: float = 0.5,
                 iterations: int = 500, l2: float = 1e-3) -> None:
        if not matcher_names:
            raise MatchError("learner needs at least one matcher name")
        self._names = list(matcher_names)
        self._learning_rate = learning_rate
        self._iterations = iterations
        self._l2 = l2
        self._coefficients: np.ndarray | None = None
        self._bias = 0.0

    @property
    def matcher_names(self) -> list[str]:
        return list(self._names)

    def _design_matrix(self, examples: list[TrainingExample]) \
            -> tuple[np.ndarray, np.ndarray]:
        x = np.zeros((len(examples), len(self._names)))
        y = np.zeros(len(examples))
        for i, example in enumerate(examples):
            for j, name in enumerate(self._names):
                x[i, j] = example.features.get(name, 0.0)
            y[i] = 1.0 if example.relevant else 0.0
        return x, y

    def fit(self, examples: list[TrainingExample]) -> None:
        """Train on labelled history; needs both classes present."""
        if len(examples) < 2:
            raise MatchError("need at least two training examples")
        x, y = self._design_matrix(examples)
        if y.min() == y.max():
            raise MatchError(
                "training set needs both relevant and irrelevant examples")
        n, d = x.shape
        w = np.zeros(d)
        b = 0.0
        for _ in range(self._iterations):
            z = x @ w + b
            p = 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))
            gradient_w = x.T @ (p - y) / n + self._l2 * w
            gradient_b = float(np.mean(p - y))
            w -= self._learning_rate * gradient_w
            b -= self._learning_rate * gradient_b
        self._coefficients = w
        self._bias = b

    @property
    def is_fitted(self) -> bool:
        return self._coefficients is not None

    def predict_probability(self, features: dict[str, float]) -> float:
        """P(relevant) for one feature vector."""
        if self._coefficients is None:
            raise MatchError("learner is not fitted")
        x = np.array([features.get(name, 0.0) for name in self._names])
        z = float(x @ self._coefficients + self._bias)
        return 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))

    def weights(self, floor: float = 0.05) -> dict[str, float]:
        """The learned weighting scheme for the ensemble.

        Negative coefficients are clamped to ``floor`` (a matcher that
        anti-correlates with relevance on a small history sample should
        be down-weighted, not inverted) and the result is normalized to
        sum to 1.
        """
        if self._coefficients is None:
            raise MatchError("learner is not fitted")
        raw = np.maximum(self._coefficients, floor)
        total = float(raw.sum())
        if total <= 0:
            raise MatchError("all learned weights are zero")
        return {name: float(value / total)
                for name, value in zip(self._names, raw)}

    def accuracy(self, examples: list[TrainingExample]) -> float:
        """Fraction of examples classified correctly at threshold 0.5."""
        if not examples:
            raise MatchError("no examples to evaluate")
        correct = 0
        for example in examples:
            predicted = self.predict_probability(example.features) >= 0.5
            correct += int(predicted == example.relevant)
        return correct / len(examples)
