"""Synonym matcher: thesaurus lookup over normalized names.

The built-in thesaurus covers vocabulary from the paper's motivating
domains (health data, conservation monitoring) plus generic business
terms.  Matching is by synonym *set*: two names score 1.0 when they
normalize into the same set, and a partial score when multi-word names
share synonyms word-wise.  Callers can extend or replace the thesaurus
(e.g. with the OpenII "codebook" integration the paper sketches).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.matching.base import Matcher, SimilarityMatrix
from repro.matching.normalize import normalize_words
from repro.model.query import QueryGraph
from repro.model.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.matching.profile import MatchScratch, SchemaMatchProfile

#: Each inner tuple is one synonym set.
DEFAULT_THESAURUS: tuple[tuple[str, ...], ...] = (
    ("doctor", "physician", "clinician", "provider"),
    ("patient", "subject", "client"),
    ("gender", "sex"),
    ("diagnosis", "condition", "disease", "illness"),
    ("medication", "drug", "medicine", "prescription"),
    ("visit", "encounter", "appointment"),
    ("height", "stature"),
    ("weight", "mass"),
    ("birth", "born"),
    ("death", "deceased", "mortality"),
    ("species", "taxon", "organism"),
    ("site", "location", "place", "station"),
    ("observation", "sighting", "record", "measurement"),
    ("date", "day", "time"),
    ("area", "region", "zone"),
    ("salary", "wage", "pay", "compensation"),
    ("employee", "worker", "staff"),
    ("company", "firm", "organization", "employer"),
    ("customer", "client", "buyer"),
    ("price", "cost", "amount"),
    ("product", "item", "good"),
    ("order", "purchase"),
    ("address", "residence"),
    ("phone", "telephone", "mobile"),
    ("email", "mail"),
    ("country", "nation"),
    ("city", "town", "municipality"),
    ("identifier", "id", "key", "code"),
    ("name", "title", "label"),
    ("quantity", "count", "number"),
    ("begin", "start"),
    ("end", "finish", "stop"),
    ("teacher", "instructor", "professor"),
    ("student", "pupil", "learner"),
    ("course", "class", "subject"),
    ("grade", "mark", "score"),
    ("author", "writer", "creator"),
    ("vehicle", "car", "automobile"),
)


class SynonymMatcher(Matcher):
    """Scores pairs by word-level synonym overlap."""

    name = "synonym"

    def __init__(self,
                 thesaurus: tuple[tuple[str, ...], ...] = DEFAULT_THESAURUS
                 ) -> None:
        # A word may appear in several sets ("client" is a synonym of
        # both patient and customer), so membership is a set of set-ids.
        self._memberships: dict[str, set[int]] = {}
        for set_id, synonym_set in enumerate(thesaurus):
            for word in synonym_set:
                self._memberships.setdefault(word, set()).add(set_id)

    def _word_sets(self, name: str) -> set[int]:
        """Ids of every synonym set touched by the words of ``name``."""
        return self._sets_of(normalize_words(name))

    def _sets_of(self, words: Iterable[str]) -> set[int]:
        sets: set[int] = set()
        for word in words:
            sets.update(self._memberships.get(word, ()))
        return sets

    def match(self, query: QueryGraph, candidate: Schema,
              profile: "SchemaMatchProfile | None" = None,
              scratch: "MatchScratch | None" = None) -> SimilarityMatrix:
        matrix = self.empty_matrix(query, candidate,
                                   profile=profile, scratch=scratch)
        if profile is not None:
            candidate_sets = [
                (path, self._sets_of(profile.words_expanded[path]),
                 len(profile.words_expanded[path]))
                for path in profile.element_paths
            ]
        else:
            candidate_sets = [
                (path, self._word_sets(name), len(normalize_words(name)))
                for path, name, _kind in self.candidate_elements(candidate)
            ]
        for label, query_sets, query_word_count in \
                self._query_sets(query, scratch):
            if not query_sets:
                continue
            for path, cand_sets, cand_word_count in candidate_sets:
                shared = len(query_sets & cand_sets)
                if shared == 0:
                    continue
                # Fraction of the longer name's words that found a
                # synonym partner; single-word synonym hits score 1.0.
                denom = max(query_word_count, cand_word_count, 1)
                matrix.set(label, path, min(1.0, shared / denom))
        return matrix

    def _query_sets(self, query: QueryGraph,
                    scratch: "MatchScratch | None"
                    ) -> list[tuple[str, set[int], int]]:
        """(label, synonym-set ids, word count) per query element,
        memoized per search when a scratch is available."""
        if scratch is not None:
            cached = scratch.matcher_memo.get(self.name)
            if cached is not None:
                return cached  # type: ignore[return-value]
        out = [
            (label, self._word_sets(name),
             max(len(normalize_words(name)), 1))
            for label, name in self.query_elements(query)
        ]
        if scratch is not None:
            scratch.matcher_memo[self.name] = out
        return out
