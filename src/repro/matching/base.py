"""Matcher interface and the similarity matrix they all produce.

"Each (query element, schema element) pair has a corresponding value
which describes the match quality — a value between 0 and 1."
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.errors import MatchError
from repro.model.elements import ElementKind, ElementRef
from repro.model.query import QueryGraph
from repro.model.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.matching.profile import MatchScratch, SchemaMatchProfile


class SimilarityMatrix:
    """Query elements x schema elements, values in [0, 1].

    Rows are labelled with query element labels (keyword text or
    fragment element path); columns with candidate element paths.
    Backed by a numpy array so ensemble combination and the max-per-
    element collapse are vectorized.
    """

    def __init__(self, row_labels: list[str], col_labels: list[str],
                 values: np.ndarray | None = None) -> None:
        if len(set(row_labels)) != len(row_labels):
            raise MatchError("duplicate row labels in similarity matrix")
        if len(set(col_labels)) != len(col_labels):
            raise MatchError("duplicate column labels in similarity matrix")
        self.row_labels = list(row_labels)
        self.col_labels = list(col_labels)
        self._row_index = {label: i for i, label in enumerate(row_labels)}
        self._col_index = {label: i for i, label in enumerate(col_labels)}
        shape = (len(row_labels), len(col_labels))
        if values is None:
            self.values = np.zeros(shape)
        else:
            values = np.asarray(values, dtype=float)
            if values.shape != shape:
                raise MatchError(
                    f"matrix shape {values.shape} does not match labels "
                    f"{shape}")
            self.values = values

    # -- element access ----------------------------------------------------

    def get(self, row: str, col: str) -> float:
        return float(self.values[self._row_index[row], self._col_index[col]])

    def set(self, row: str, col: str, value: float) -> None:
        if not 0.0 <= value <= 1.0:
            raise MatchError(
                f"similarity must be in [0, 1], got {value} "
                f"for ({row!r}, {col!r})")
        self.values[self._row_index[row], self._col_index[col]] = value

    @property
    def shape(self) -> tuple[int, int]:
        return (len(self.row_labels), len(self.col_labels))

    # -- reductions used by tightness-of-fit -------------------------------

    def max_per_column(self) -> dict[str, float]:
        """Best query-element score for each schema element.

        This is the paper's "selecting the maximum value of each schema
        element's entry in the matrix as the final match score for that
        element".  Empty row set yields zeros.
        """
        if not self.row_labels:
            return {label: 0.0 for label in self.col_labels}
        best = self.values.max(axis=0)
        return {label: float(best[i])
                for i, label in enumerate(self.col_labels)}

    def max_per_row(self) -> dict[str, float]:
        """Best schema-element score for each query element."""
        if not self.col_labels:
            return {label: 0.0 for label in self.row_labels}
        best = self.values.max(axis=1)
        return {label: float(best[i])
                for i, label in enumerate(self.row_labels)}

    def nonzero_pairs(self, threshold: float = 0.0) \
            -> Iterator[tuple[str, str, float]]:
        """(row, col, value) triples with value > threshold, best first."""
        rows, cols = np.nonzero(self.values > threshold)
        order = np.argsort(-self.values[rows, cols])
        for k in order:
            i, j = int(rows[k]), int(cols[k])
            yield (self.row_labels[i], self.col_labels[j],
                   float(self.values[i, j]))

    # -- combination -------------------------------------------------------

    @staticmethod
    def combine(matrices: list["SimilarityMatrix"],
                weights: list[float] | None = None) -> "SimilarityMatrix":
        """Weighted average of same-shaped matrices.

        Weights are normalized to sum to 1 (uniform when omitted), so the
        result stays within [0, 1].
        """
        if not matrices:
            raise MatchError("cannot combine zero matrices")
        first = matrices[0]
        for other in matrices[1:]:
            if (other.row_labels != first.row_labels
                    or other.col_labels != first.col_labels):
                raise MatchError("matrices have mismatched labels")
        if weights is None:
            weights = [1.0] * len(matrices)
        if len(weights) != len(matrices):
            raise MatchError(
                f"{len(weights)} weights for {len(matrices)} matrices")
        if any(w < 0 for w in weights):
            raise MatchError("weights must be non-negative")
        total = sum(weights)
        if total <= 0:
            raise MatchError("weights sum to zero")
        combined = np.zeros(first.shape)
        for matrix, weight in zip(matrices, weights):
            combined += (weight / total) * matrix.values
        return SimilarityMatrix(first.row_labels, first.col_labels, combined)


class Matcher(abc.ABC):
    """One fine-grained matcher of the ensemble."""

    #: Short identifier used in ensemble reports and learned weights.
    name: str = "matcher"

    @abc.abstractmethod
    def match(self, query: QueryGraph, candidate: Schema,
              profile: "SchemaMatchProfile | None" = None,
              scratch: "MatchScratch | None" = None) -> SimilarityMatrix:
        """Score every (query element, candidate element) pair.

        ``profile`` carries the candidate's precomputed artifacts (the
        acceleration layer); ``scratch`` carries per-query memoization
        shared across candidates.  Both are optional: without them a
        matcher derives everything from scratch, and the two paths must
        produce identical matrices (the golden-equivalence tests hold
        them to it).
        """

    # -- shared helpers ----------------------------------------------------

    @staticmethod
    def query_elements(query: QueryGraph) -> list[tuple[str, str]]:
        """(label, name) pairs for every query element."""
        return list(zip(query.element_labels(), query.element_names()))

    @staticmethod
    def candidate_elements(candidate: Schema) \
            -> list[tuple[str, str, ElementKind]]:
        """(path, local name, kind) triples for every candidate element."""
        out = []
        for ref in candidate.elements():
            out.append((ref.path, ref.local_name, ref.kind))
        return out

    def empty_matrix(self, query: QueryGraph, candidate: Schema,
                     profile: "SchemaMatchProfile | None" = None,
                     scratch: "MatchScratch | None" = None
                     ) -> SimilarityMatrix:
        """A zero matrix with the canonical labels for this pair.

        With a profile/scratch available the labels come from the
        precomputed artifacts instead of re-walking the schema and
        query.
        """
        if scratch is not None:
            row_labels = scratch.row_labels(query)
        else:
            row_labels = query.element_labels()
        if profile is not None:
            col_labels = profile.element_paths
        else:
            col_labels = [ref.path for ref in candidate.elements()]
        return SimilarityMatrix(row_labels=row_labels, col_labels=col_labels)
