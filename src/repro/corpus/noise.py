"""Naming-noise models.

The name matcher exists because real web schemas contain "abbreviated
terms, alternate grammatical forms, and delimiter characters not in the
original query".  :class:`NameStyler` renders canonical multi-word names
through exactly those three noise channels, deterministically per seed,
so benches can measure each channel in isolation.
"""

from __future__ import annotations

import random

_VOWELS = set("aeiou")

#: Words whose plural is irregular enough to matter in schema names.
_IRREGULAR_PLURALS = {
    "person": "people",
    "child": "children",
    "man": "men",
    "woman": "women",
    "foot": "feet",
    "datum": "data",
    "medium": "media",
    "species": "species",
    "status": "statuses",
    "analysis": "analyses",
    "diagnosis": "diagnoses",
}


def pluralize(word: str) -> str:
    """English pluralization, good enough for schema vocabulary."""
    if not word:
        return word
    irregular = _IRREGULAR_PLURALS.get(word.lower())
    if irregular:
        return irregular
    if word.endswith(("s", "x", "z", "ch", "sh")):
        return word + "es"
    if word.endswith("y") and len(word) > 1 and word[-2] not in _VOWELS:
        return word[:-1] + "ies"
    if word.endswith("f"):
        return word[:-1] + "ves"
    if word.endswith("fe"):
        return word[:-2] + "ves"
    return word + "s"


def abbreviate(word: str, min_keep: int = 3) -> str:
    """Abbreviate one word the way schema authors do.

    Strategy: drop interior vowels after the first letter; if that
    changes nothing useful, truncate.  ``height -> hght``/``hei``,
    ``quantity -> qnty``.  Words already at or below ``min_keep`` pass
    through.
    """
    if len(word) <= min_keep:
        return word
    head, tail = word[0], word[1:]
    squeezed = head + "".join(c for c in tail if c.lower() not in _VOWELS)
    if len(squeezed) >= min_keep and squeezed != word:
        return squeezed[:6]
    return word[:min_keep]


#: The rendering styles a generated schema can use.
STYLES = ("snake", "camel", "pascal", "space", "dash", "dot", "squash",
          "abbreviated")


class NameStyler:
    """Deterministic renderer of canonical names into one noisy style.

    A styler is created per generated schema (one schema is internally
    consistent in style, like real exports are) with its own seeded RNG
    deciding per-name coin flips (pluralization, abbreviation extent).
    """

    def __init__(self, style: str, rng: random.Random,
                 plural_probability: float = 0.2,
                 abbreviate_probability: float = 0.6) -> None:
        if style not in STYLES:
            raise ValueError(f"unknown style {style!r}; one of {STYLES}")
        self._style = style
        self._rng = rng
        self._plural_probability = plural_probability
        self._abbreviate_probability = abbreviate_probability

    @property
    def style(self) -> str:
        return self._style

    def render(self, canonical: str, allow_plural: bool = True) -> str:
        """Render a canonical lower-case multi-word name."""
        words = canonical.split()
        if allow_plural and words \
                and self._rng.random() < self._plural_probability:
            words[-1] = pluralize(words[-1])
        if self._style == "abbreviated":
            words = [
                abbreviate(w)
                if self._rng.random() < self._abbreviate_probability else w
                for w in words
            ]
            return "_".join(words)
        if self._style == "snake":
            return "_".join(words)
        if self._style == "camel":
            return words[0] + "".join(w.capitalize() for w in words[1:])
        if self._style == "pascal":
            return "".join(w.capitalize() for w in words)
        if self._style == "space":
            return " ".join(words)
        if self._style == "dash":
            return "-".join(words)
        if self._style == "dot":
            return ".".join(words)
        # squash: no delimiter at all, the hardest case for matchers.
        return "".join(words)
