"""Synthetic WebTables-style corpus with known ground truth.

The paper's repository held "over 30,000 public schemas ... [that] came
[from] a collection of 10 million HTML tables, and were filtered by
removing schemas containing non-alphabetical characters, schemas that
only appeared once on the web, and trivial schemas with three or less
elements."  That corpus is not redistributable, so this package
generates the equivalent: multi-domain schemas rendered through the
naming-noise phenomena the paper's matchers target (abbreviations,
alternate grammatical forms, delimiter characters), with per-schema
provenance kept so evaluation queries have exact relevance labels.
"""

from repro.corpus.domains import DOMAINS, Domain, EntityTemplate
from repro.corpus.filters import FilterStats, paper_filter
from repro.corpus.generator import CorpusGenerator, GeneratedSchema
from repro.corpus.groundtruth import GroundTruthQuery, QuerySampler
from repro.corpus.noise import NameStyler, pluralize

__all__ = [
    "DOMAINS",
    "CorpusGenerator",
    "Domain",
    "EntityTemplate",
    "FilterStats",
    "GeneratedSchema",
    "GroundTruthQuery",
    "NameStyler",
    "QuerySampler",
    "paper_filter",
    "pluralize",
]
