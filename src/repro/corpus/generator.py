"""The corpus generator: domain templates -> noisy WebTables-style schemas.

Each generated schema records its provenance (domain, templates used,
canonical attribute names) so that ground-truth relevance is exact.
Generation is fully deterministic per seed.

To exercise the paper's filter pipeline, the raw stream also contains
the junk the real crawl contained: schemas with non-alphabetic names,
single-occurrence schemas, and trivial (<= 3 element) schemas.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.corpus.domains import DOMAINS, Domain, EntityTemplate
from repro.corpus.noise import STYLES, NameStyler
from repro.errors import SchemrError
from repro.model.elements import Attribute, Entity, ForeignKey
from repro.model.schema import Schema

_SQL_TYPES = ("INTEGER", "VARCHAR(100)", "TEXT", "DECIMAL(10,2)", "DATE",
              "REAL", "BOOLEAN")


@dataclass(slots=True)
class GeneratedSchema:
    """A schema plus its generation provenance (the ground truth)."""

    schema: Schema
    domain: str
    templates: tuple[str, ...]
    canonical_attributes: dict[str, tuple[str, ...]]
    style: str
    web_frequency: int = 2
    element_map: dict[str, str] = field(default_factory=dict)
    """canonical ``template.attribute`` path -> rendered element path."""


class CorpusGenerator:
    """Deterministic generator of WebTables-style schema corpora."""

    def __init__(self, seed: int = 7,
                 domains: tuple[Domain, ...] = DOMAINS,
                 junk_fraction: float = 0.15) -> None:
        if not domains:
            raise SchemrError("generator needs at least one domain")
        if not 0.0 <= junk_fraction < 1.0:
            raise SchemrError(
                f"junk_fraction must be in [0, 1), got {junk_fraction}")
        self._rng = random.Random(seed)
        self._domains = domains
        self._junk_fraction = junk_fraction
        self._serial = 0

    # -- public API ------------------------------------------------------

    def generate(self, count: int) -> list[GeneratedSchema]:
        """``count`` clean schemas (no junk), provenance attached."""
        return [self.generate_one() for _ in range(count)]

    def generate_one(self) -> GeneratedSchema:
        """One clean schema from a random domain."""
        domain = self._rng.choice(self._domains)
        return self.generate_from_domain(domain)

    def generate_from_domain(self, domain: Domain,
                             template_names: tuple[str, ...] | None = None
                             ) -> GeneratedSchema:
        """One schema rendered from ``domain``.

        ``template_names`` pins the entity templates (used by ground
        truth to plant known-relevant schemas); otherwise 1..4 templates
        are sampled with their FK closure preferred.
        """
        self._serial += 1
        if template_names is None:
            templates = self._sample_templates(domain)
        else:
            templates = tuple(domain.entity(n) for n in template_names)
        style = self._rng.choice(STYLES)
        styler = NameStyler(style, self._rng)
        schema_name = styler.render(
            f"{domain.name} {templates[0].name} data", allow_plural=False)
        schema = Schema(
            name=f"{schema_name}_{self._serial}",
            description=f"{domain.name} dataset covering "
                        + ", ".join(t.name for t in templates),
            source="generated",
        )
        canonical: dict[str, tuple[str, ...]] = {}
        element_map: dict[str, str] = {}
        rendered_entities: dict[str, str] = {}
        for template in templates:
            entity = self._render_entity(template, styler, canonical,
                                         element_map)
            schema.add_entity(entity)
            rendered_entities[template.name] = entity.name
        self._render_foreign_keys(schema, templates, rendered_entities)
        return GeneratedSchema(
            schema=schema,
            domain=domain.name,
            templates=tuple(t.name for t in templates),
            canonical_attributes=canonical,
            style=style,
            web_frequency=self._rng.randint(2, 50),
            element_map=element_map,
        )

    def generate_raw_stream(self, count: int) -> list[GeneratedSchema]:
        """A pre-filter stream: clean schemas mixed with crawl junk.

        Junk kinds (equal thirds of the junk budget) mirror the paper's
        filter criteria: non-alphabetic names, web frequency 1, and
        trivial schemas with <= 3 elements.
        """
        junk_count = int(count * self._junk_fraction)
        clean_count = count - junk_count
        out = self.generate(clean_count)
        for i in range(junk_count):
            out.append(self._generate_junk(i % 3))
        self._rng.shuffle(out)
        return out

    def stream(self, count: int,
               include_junk: bool = False) -> Iterator[GeneratedSchema]:
        """Yield ``count`` schemas one at a time, in bounded memory.

        The streaming counterpart of :meth:`generate` /
        :meth:`generate_raw_stream` for repository-scale corpora
        (100k+ schemas): nothing is materialized or shuffled, so peak
        memory is one schema regardless of ``count``.  With
        ``include_junk`` the configured junk fraction is interleaved by
        a per-item coin flip instead of a batch shuffle; either way the
        stream is fully deterministic per seed.
        """
        junk_serial = 0
        for _ in range(count):
            if include_junk and self._rng.random() < self._junk_fraction:
                yield self._generate_junk(junk_serial % 3)
                junk_serial += 1
            else:
                yield self.generate_one()

    # -- internals -------------------------------------------------------

    def _sample_templates(self, domain: Domain) -> tuple[EntityTemplate, ...]:
        count = min(self._rng.randint(1, 4), len(domain.entities))
        picked = list(self._rng.sample(list(domain.entities), count))
        # Pull in FK targets so references usually resolve.
        names = {t.name for t in picked}
        for template in list(picked):
            for target in template.references:
                if target not in names and self._rng.random() < 0.7:
                    try:
                        picked.append(domain.entity(target))
                        names.add(target)
                    except KeyError:  # pragma: no cover - defensive
                        pass
        return tuple(picked)

    def _render_entity(self, template: EntityTemplate, styler: NameStyler,
                       canonical: dict[str, tuple[str, ...]],
                       element_map: dict[str, str]) -> Entity:
        entity_name = styler.render(template.name)
        # Keep 60-100% of the template's attributes, original order.
        keep = max(2, int(len(template.attributes)
                          * self._rng.uniform(0.6, 1.0)))
        kept = list(template.attributes[:keep])
        entity = Entity(name=entity_name)
        used: set[str] = set()
        kept_canonical: list[str] = []
        for attr_canonical in kept:
            rendered = styler.render(attr_canonical)
            if rendered in used:
                continue
            used.add(rendered)
            kept_canonical.append(attr_canonical)
            entity.add_attribute(Attribute(
                name=rendered,
                data_type=self._rng.choice(_SQL_TYPES),
            ))
            element_map[f"{template.name}.{attr_canonical}"] = \
                f"{entity_name}.{rendered}"
        canonical[template.name] = tuple(kept_canonical)
        element_map[template.name] = entity_name
        return entity

    def _render_foreign_keys(self, schema: Schema,
                             templates: tuple[EntityTemplate, ...],
                             rendered: dict[str, str]) -> None:
        for template in templates:
            source_entity = schema.entity(rendered[template.name])
            if not source_entity.attributes:
                continue
            for target_name in template.references:
                target_rendered = rendered.get(target_name)
                if target_rendered is None:
                    continue
                target_entity = schema.entity(target_rendered)
                if not target_entity.attributes:
                    continue
                schema.add_foreign_key(ForeignKey(
                    source_entity=source_entity.name,
                    source_attribute=source_entity.attributes[0].name,
                    target_entity=target_entity.name,
                    target_attribute=target_entity.attributes[0].name,
                ))

    def _generate_junk(self, kind: int) -> GeneratedSchema:
        """One junk schema of the given kind (0, 1 or 2)."""
        self._serial += 1
        if kind == 0:
            # Non-alphabetic noise in names (crawler artifacts).
            name = f"tbl_{self._serial}_%7B{self._rng.randint(0, 999)}%7D"
            entity = Entity(name=name, attributes=[
                Attribute(name=f"c{i}$#{self._rng.randint(0, 9)}")
                for i in range(4)
            ])
            frequency = self._rng.randint(2, 10)
        elif kind == 1:
            # Seen once on the web.
            name = f"singleton_table_{self._serial}"
            entity = Entity(name=name, attributes=[
                Attribute(name=word) for word in
                ("alpha", "beta", "gamma", "delta")
            ])
            frequency = 1
        else:
            # Trivial: three or fewer elements in total.
            name = f"tiny_{self._serial}"
            entity = Entity(name=name, attributes=[
                Attribute(name="value"), Attribute(name="label")
            ])
            frequency = self._rng.randint(2, 10)
        schema = Schema(name=name, entities={entity.name: entity},
                        source="generated-junk")
        return GeneratedSchema(
            schema=schema,
            domain="junk",
            templates=(),
            canonical_attributes={},
            style="snake",
            web_frequency=frequency,
        )
