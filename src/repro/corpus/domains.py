"""Domain templates: the canonical vocabulary schemas are generated from.

Each :class:`Domain` holds entity templates with canonical attribute
names; generated schemas render noisy variants of these, and ground
truth is defined by which templates a schema was rendered from.  The
domain set intentionally includes the paper's two motivating scenarios
(a health system and conservation monitoring) among general-web
domains.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class EntityTemplate:
    """Canonical form of one entity."""

    name: str
    attributes: tuple[str, ...]
    #: Names of templates this entity naturally references (FK targets).
    references: tuple[str, ...] = ()


@dataclass(frozen=True, slots=True)
class Domain:
    """A topical group of entity templates."""

    name: str
    entities: tuple[EntityTemplate, ...] = field(default_factory=tuple)

    def entity(self, name: str) -> EntityTemplate:
        for template in self.entities:
            if template.name == name:
                return template
        raise KeyError(f"domain {self.name!r} has no entity {name!r}")


DOMAINS: tuple[Domain, ...] = (
    Domain("healthcare", (
        EntityTemplate("patient", (
            "patient id", "first name", "last name", "birth date", "gender",
            "height", "weight", "blood type", "phone", "address")),
        EntityTemplate("doctor", (
            "doctor id", "first name", "last name", "gender", "specialty",
            "license number", "phone")),
        EntityTemplate("case", (
            "case id", "diagnosis", "severity", "onset date", "outcome",
            "notes"), references=("patient", "doctor")),
        EntityTemplate("visit", (
            "visit id", "visit date", "reason", "blood pressure",
            "temperature", "heart rate"), references=("patient", "doctor")),
        EntityTemplate("medication", (
            "medication id", "drug name", "dose", "frequency", "start date",
            "end date"), references=("patient",)),
        EntityTemplate("clinic", (
            "clinic id", "clinic name", "district", "region", "capacity")),
    )),
    Domain("conservation", (
        EntityTemplate("site", (
            "site id", "site name", "latitude", "longitude", "habitat",
            "protection status", "area")),
        EntityTemplate("species", (
            "species id", "common name", "scientific name", "family",
            "conservation status", "population trend")),
        EntityTemplate("observation", (
            "observation id", "observation date", "count", "observer",
            "weather", "notes"), references=("site", "species")),
        EntityTemplate("water_sample", (
            "sample id", "sample date", "ph", "dissolved oxygen",
            "turbidity", "temperature"), references=("site",)),
        EntityTemplate("volunteer", (
            "volunteer id", "name", "email", "organization",
            "training level")),
    )),
    Domain("education", (
        EntityTemplate("student", (
            "student id", "first name", "last name", "birth date", "gender",
            "enrollment year", "email")),
        EntityTemplate("teacher", (
            "teacher id", "first name", "last name", "department", "email",
            "hire date")),
        EntityTemplate("course", (
            "course id", "course name", "credits", "level", "semester"),
            references=("teacher",)),
        EntityTemplate("enrollment", (
            "enrollment id", "grade", "status", "enrollment date"),
            references=("student", "course")),
    )),
    Domain("retail", (
        EntityTemplate("product", (
            "product id", "product name", "category", "price", "stock",
            "weight", "brand")),
        EntityTemplate("customer", (
            "customer id", "first name", "last name", "email", "phone",
            "address", "city", "country")),
        EntityTemplate("order", (
            "order id", "order date", "status", "total amount",
            "shipping cost"), references=("customer",)),
        EntityTemplate("order_item", (
            "item id", "quantity", "unit price", "discount"),
            references=("order", "product")),
    )),
    Domain("finance", (
        EntityTemplate("account", (
            "account id", "account number", "account type", "balance",
            "currency", "opened date")),
        EntityTemplate("transaction", (
            "transaction id", "transaction date", "amount", "currency",
            "merchant", "category"), references=("account",)),
        EntityTemplate("customer", (
            "customer id", "name", "tax id", "risk score", "segment")),
        EntityTemplate("loan", (
            "loan id", "principal", "interest rate", "term", "start date",
            "status"), references=("account", "customer")),
    )),
    Domain("human_resources", (
        EntityTemplate("employee", (
            "employee id", "first name", "last name", "salary", "hire date",
            "job title", "email")),
        EntityTemplate("department", (
            "department id", "department name", "budget", "location",
            "manager")),
        EntityTemplate("assignment", (
            "assignment id", "role", "start date", "end date",
            "allocation"), references=("employee", "department")),
        EntityTemplate("payroll", (
            "payroll id", "period", "gross pay", "net pay", "tax",
            "benefits"), references=("employee",)),
    )),
    Domain("library", (
        EntityTemplate("book", (
            "book id", "title", "author", "isbn", "publisher",
            "publication year", "pages")),
        EntityTemplate("member", (
            "member id", "name", "email", "join date", "status")),
        EntityTemplate("loan", (
            "loan id", "loan date", "due date", "return date", "fine"),
            references=("book", "member")),
    )),
    Domain("transport", (
        EntityTemplate("vehicle", (
            "vehicle id", "make", "model", "year", "license plate",
            "capacity", "fuel type")),
        EntityTemplate("driver", (
            "driver id", "name", "license number", "hire date", "rating")),
        EntityTemplate("route", (
            "route id", "origin", "destination", "distance", "duration")),
        EntityTemplate("trip", (
            "trip id", "departure time", "arrival time", "passengers",
            "fare"), references=("vehicle", "driver", "route")),
    )),
    Domain("real_estate", (
        EntityTemplate("property", (
            "property id", "address", "city", "price", "bedrooms",
            "bathrooms", "area", "year built")),
        EntityTemplate("agent", (
            "agent id", "name", "agency", "phone", "email")),
        EntityTemplate("listing", (
            "listing id", "list date", "status", "asking price",
            "days on market"), references=("property", "agent")),
    )),
    Domain("sports", (
        EntityTemplate("team", (
            "team id", "team name", "city", "founded", "stadium", "coach")),
        EntityTemplate("player", (
            "player id", "name", "position", "number", "height", "weight",
            "birth date"), references=("team",)),
        EntityTemplate("game", (
            "game id", "game date", "home score", "away score",
            "attendance"), references=("team",)),
    )),
    Domain("weather", (
        EntityTemplate("station", (
            "station id", "station name", "latitude", "longitude",
            "elevation", "country")),
        EntityTemplate("reading", (
            "reading id", "reading time", "temperature", "humidity",
            "pressure", "wind speed", "precipitation"),
            references=("station",)),
    )),
    Domain("events", (
        EntityTemplate("event", (
            "event id", "event name", "event date", "venue", "capacity",
            "category")),
        EntityTemplate("attendee", (
            "attendee id", "name", "email", "ticket type")),
        EntityTemplate("registration", (
            "registration id", "registration date", "price", "status"),
            references=("event", "attendee")),
    )),
    Domain("government", (
        EntityTemplate("agency", (
            "agency id", "agency name", "jurisdiction", "budget",
            "head count")),
        EntityTemplate("permit", (
            "permit id", "permit type", "issue date", "expiry date",
            "fee", "status"), references=("agency",)),
        EntityTemplate("inspection", (
            "inspection id", "inspection date", "inspector", "outcome",
            "violations"), references=("permit",)),
    )),
    Domain("energy", (
        EntityTemplate("plant", (
            "plant id", "plant name", "fuel type", "capacity",
            "commission year", "latitude", "longitude")),
        EntityTemplate("meter", (
            "meter id", "customer name", "tariff", "install date"),
            references=("plant",)),
        EntityTemplate("meter_reading", (
            "reading id", "reading date", "consumption", "peak demand"),
            references=("meter",)),
    )),
    Domain("logistics", (
        EntityTemplate("warehouse", (
            "warehouse id", "warehouse name", "city", "capacity",
            "manager")),
        EntityTemplate("shipment", (
            "shipment id", "ship date", "delivery date", "weight",
            "freight cost", "carrier"), references=("warehouse",)),
        EntityTemplate("parcel", (
            "parcel id", "tracking number", "destination", "status"),
            references=("shipment",)),
    )),
    Domain("social_media", (
        EntityTemplate("user_account", (
            "account id", "username", "email", "join date", "followers",
            "verified")),
        EntityTemplate("post", (
            "post id", "post time", "content", "likes", "shares"),
            references=("user_account",)),
        EntityTemplate("comment", (
            "comment id", "comment time", "body", "likes"),
            references=("post", "user_account")),
    )),
)


def domain_by_name(name: str) -> Domain:
    """Look up a domain; raises :class:`KeyError` when absent."""
    for domain in DOMAINS:
        if domain.name == name:
            return domain
    raise KeyError(f"no domain named {name!r}")
