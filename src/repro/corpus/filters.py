"""The paper's corpus filter pipeline.

"These schemas came [from] a collection of 10 million HTML tables, and
were filtered by removing schemas containing non-alphabetical
characters, schemas that only appeared once on the web, and trivial
schemas with three or less elements."

The non-alphabetical criterion is interpreted the way the crawl needed
it: names made of letters, digits and ordinary word delimiters pass;
names containing crawler artifacts (``%7B``, ``$``, ``#`` ...) fail.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.corpus.generator import GeneratedSchema
from repro.model.schema import Schema

#: Characters legitimate schema names are made of.
_CLEAN_NAME = re.compile(r"^[A-Za-z0-9_\-. ]+$")

#: The paper's trivial-schema threshold: "three or less elements".
TRIVIAL_ELEMENT_THRESHOLD = 3


def has_clean_names(schema: Schema) -> bool:
    """True when every element name passes the character filter."""
    if not _CLEAN_NAME.match(schema.name):
        return False
    for entity in schema.entities.values():
        if not _CLEAN_NAME.match(entity.name):
            return False
        for attr in entity.attributes:
            if not _CLEAN_NAME.match(attr.name):
                return False
    return True


def is_trivial(schema: Schema) -> bool:
    """True for schemas with three or fewer elements."""
    return schema.element_count <= TRIVIAL_ELEMENT_THRESHOLD


@dataclass(slots=True)
class FilterStats:
    """Accounting of one filter run (reported by the E1 bench)."""

    total: int = 0
    dropped_nonalpha: int = 0
    dropped_singleton: int = 0
    dropped_trivial: int = 0
    kept: list[GeneratedSchema] = field(default_factory=list)

    @property
    def kept_count(self) -> int:
        return len(self.kept)

    @property
    def dropped_count(self) -> int:
        return (self.dropped_nonalpha + self.dropped_singleton
                + self.dropped_trivial)

    def summary(self) -> str:
        return (f"filtered {self.total} raw schemas -> {self.kept_count} "
                f"kept ({self.dropped_nonalpha} non-alphabetic, "
                f"{self.dropped_singleton} singleton, "
                f"{self.dropped_trivial} trivial dropped)")


def paper_filter(raw: list[GeneratedSchema]) -> FilterStats:
    """Apply the paper's three filters in its stated order."""
    stats = FilterStats(total=len(raw))
    for generated in raw:
        if not has_clean_names(generated.schema):
            stats.dropped_nonalpha += 1
            continue
        if generated.web_frequency <= 1:
            stats.dropped_singleton += 1
            continue
        if is_trivial(generated.schema):
            stats.dropped_trivial += 1
            continue
        stats.kept.append(generated)
    return stats
