"""Ground-truth query sampling for quality evaluation.

Because every generated schema carries its provenance (domain +
templates + canonical attributes), exact graded relevance is available:

* grade 2 — the schema was rendered from the queried entity template
  (it genuinely models the queried concept);
* grade 1 — same domain but different templates (topically related);
* grade 0 — everything else.

A sampled query takes a template's canonical attribute names as
keywords and can render them through a noise channel (abbreviation,
morphology, delimiters) to measure each channel's effect on ranking —
the phenomena the paper says the name matcher wins on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.corpus.domains import Domain
from repro.corpus.generator import GeneratedSchema
from repro.corpus.noise import NameStyler, pluralize
from repro.errors import SchemrError

#: Query noise channels for the E2 bench.  "typo" injects a character
#: deletion/transposition the corpus never contains — the case where
#: candidate extraction needs fuzzy help.
QUERY_CHANNELS = ("clean", "abbreviated", "plural", "delimiter", "typo")


@dataclass(slots=True)
class GroundTruthQuery:
    """One evaluation query with graded relevance over the corpus."""

    keywords: list[str]
    canonical_keywords: list[str]
    domain: str
    template: str
    channel: str
    relevance: dict[int, int]
    """schema_id -> grade (2: queried template with the queried
    attributes actually present; 1: same template missing some queried
    attributes, or same domain; 0 omitted)."""

    @property
    def relevant_ids(self) -> set[int]:
        """Ids with any positive relevance."""
        return {schema_id for schema_id, grade in self.relevance.items()
                if grade > 0}

    @property
    def exact_ids(self) -> set[int]:
        """Ids rendered from the queried template (grade 2)."""
        return {schema_id for schema_id, grade in self.relevance.items()
                if grade >= 2}


class QuerySampler:
    """Samples ground-truth queries against a generated corpus.

    The corpus schemas must already be stored (``schema_id`` set) so the
    relevance map can reference them.
    """

    def __init__(self, corpus: list[GeneratedSchema],
                 domains: tuple[Domain, ...], seed: int = 23) -> None:
        if not corpus:
            raise SchemrError("query sampler needs a non-empty corpus")
        for generated in corpus:
            if generated.schema.schema_id is None:
                raise SchemrError(
                    f"schema {generated.schema.name!r} has no id; store the "
                    "corpus before sampling queries")
        self._corpus = corpus
        self._domains = {domain.name: domain for domain in domains}
        self._rng = random.Random(seed)

    def sample(self, count: int,
               channel: str = "clean",
               keywords_per_query: int = 4) -> list[GroundTruthQuery]:
        """``count`` queries through one noise channel.

        Templates are sampled from schemas that actually exist in the
        corpus, so every query has at least one grade-2 answer.
        """
        if channel not in QUERY_CHANNELS:
            raise SchemrError(
                f"unknown channel {channel!r}; one of {QUERY_CHANNELS}")
        candidates = [g for g in self._corpus if g.templates]
        if not candidates:
            raise SchemrError("corpus has no provenanced schemas")
        queries = []
        for _ in range(count):
            source = self._rng.choice(candidates)
            template_name = self._rng.choice(source.templates)
            queries.append(self._build_query(
                source, template_name, channel, keywords_per_query))
        return queries

    def _build_query(self, source: GeneratedSchema, template_name: str,
                     channel: str, keywords_per_query: int
                     ) -> GroundTruthQuery:
        domain_name = source.domain
        # Queried attributes come from the SOURCE schema's kept canonical
        # attributes, so the source itself is always a grade-2 answer.
        kept = source.canonical_attributes.get(template_name, ())
        pool = [a for a in kept if not a.endswith(" id")]
        if not pool:
            pool = list(kept)
        picked = self._rng.sample(
            pool, min(keywords_per_query - 1, len(pool)))
        canonical_keywords = [template_name] + picked
        keywords = [self._render_keyword(word, channel)
                    for word in canonical_keywords]
        relevance: dict[int, int] = {}
        queried_attributes = set(picked)
        for generated in self._corpus:
            schema_id = generated.schema.schema_id
            assert schema_id is not None
            same_template = (template_name in generated.templates
                             and generated.domain == domain_name)
            if same_template:
                kept = set(generated.canonical_attributes.get(
                    template_name, ()))
                # Grade 2 only when the schema actually models what the
                # query asked for; a same-template schema missing the
                # queried attributes is merely related (grade 1).
                if queried_attributes <= kept:
                    relevance[schema_id] = 2
                else:
                    relevance[schema_id] = 1
            elif generated.domain == domain_name:
                relevance[schema_id] = 1
        return GroundTruthQuery(
            keywords=keywords,
            canonical_keywords=canonical_keywords,
            domain=domain_name,
            template=template_name,
            channel=channel,
            relevance=relevance,
        )

    def _render_keyword(self, canonical: str, channel: str) -> str:
        if channel == "clean":
            return canonical
        if channel == "abbreviated":
            styler = NameStyler("abbreviated", self._rng,
                                plural_probability=0.0,
                                abbreviate_probability=1.0)
            return styler.render(canonical, allow_plural=False)
        if channel == "plural":
            words = canonical.split()
            words[-1] = pluralize(words[-1])
            return " ".join(words)
        if channel == "typo":
            words = canonical.split()
            target = max(range(len(words)), key=lambda i: len(words[i]))
            words[target] = self._typo(words[target])
            return " ".join(words)
        # delimiter: join with a random non-space delimiter.
        delimiter = self._rng.choice(("-", ".", "_"))
        return delimiter.join(canonical.split())

    def _typo(self, word: str) -> str:
        """One interior character deletion or adjacent transposition."""
        if len(word) < 4:
            return word
        i = self._rng.randrange(1, len(word) - 2)
        if self._rng.random() < 0.5:
            return word[:i] + word[i + 1:]
        return word[:i] + word[i + 1] + word[i] + word[i + 2:]
