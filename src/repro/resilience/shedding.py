"""Server-side load shedding: bounded admission ahead of the engine.

Unbounded concurrency is how an interactive service dies: every extra
in-flight search slows all the others until everything times out.  The
:class:`AdmissionController` in front of ``SchemrServer``'s search
routes admits at most ``max_concurrent`` searches; up to ``queue_size``
more may wait ``queue_timeout_seconds`` for a slot, and everything past
that is shed immediately with a structured
:class:`~repro.errors.AdmissionRejected` — which the service layer
turns into ``429 Too Many Requests`` + ``Retry-After``, the polite way
to fail fast instead of queueing into oblivion.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

from repro.errors import AdmissionRejected


class AdmissionController:
    """Concurrency limiter with a bounded, time-limited wait queue."""

    def __init__(self, max_concurrent: int = 32, queue_size: int = 64,
                 queue_timeout_seconds: float = 0.5) -> None:
        if max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be >= 1, got {max_concurrent}")
        if queue_size < 0:
            raise ValueError(
                f"queue_size must be >= 0, got {queue_size}")
        if queue_timeout_seconds < 0:
            raise ValueError(
                "queue_timeout_seconds must be >= 0, got "
                f"{queue_timeout_seconds}")
        self._max_concurrent = max_concurrent
        self._queue_size = queue_size
        self._queue_timeout = queue_timeout_seconds
        self._cond = threading.Condition()
        self._active = 0
        self._waiting = 0
        self._admitted_total = 0
        self._rejected_total = 0
        self._timed_out_total = 0

    # -- observability ---------------------------------------------------

    @property
    def max_concurrent(self) -> int:
        return self._max_concurrent

    @property
    def active(self) -> int:
        """Searches currently holding a slot."""
        with self._cond:
            return self._active

    @property
    def waiting(self) -> int:
        """Requests currently queued for a slot."""
        with self._cond:
            return self._waiting

    @property
    def admitted_total(self) -> int:
        with self._cond:
            return self._admitted_total

    @property
    def rejected_total(self) -> int:
        """Requests shed because the queue was full."""
        with self._cond:
            return self._rejected_total

    @property
    def timed_out_total(self) -> int:
        """Requests shed after waiting the full queue timeout."""
        with self._cond:
            return self._timed_out_total

    def retry_after_seconds(self) -> float:
        """Suggested client back-off: at least the queue drain time."""
        return max(1.0, self._queue_timeout * 2.0)

    # -- admission -------------------------------------------------------

    def acquire(self) -> None:
        """Take a slot or raise :class:`AdmissionRejected`.

        Rejects immediately when the wait queue is full; otherwise
        waits up to the queue timeout for a running search to finish.
        """
        with self._cond:
            if self._active < self._max_concurrent:
                self._active += 1
                self._admitted_total += 1
                return
            if self._waiting >= self._queue_size:
                self._rejected_total += 1
                raise AdmissionRejected(
                    f"server saturated: {self._active} active searches, "
                    f"{self._waiting} queued",
                    retry_after=self.retry_after_seconds())
            self._waiting += 1
            try:
                granted = self._cond.wait_for(
                    lambda: self._active < self._max_concurrent,
                    timeout=self._queue_timeout)
            finally:
                self._waiting -= 1
            if not granted:
                self._timed_out_total += 1
                raise AdmissionRejected(
                    "server saturated: queued "
                    f"{self._queue_timeout:.2f}s without a free slot",
                    retry_after=self.retry_after_seconds())
            self._active += 1
            self._admitted_total += 1

    def release(self) -> None:
        with self._cond:
            if self._active <= 0:
                raise RuntimeError("release without matching acquire")
            self._active -= 1
            self._cond.notify()

    @contextmanager
    def admitted(self) -> Iterator[None]:
        """``with controller.admitted(): ...`` around one search."""
        self.acquire()
        try:
            yield
        finally:
            self.release()
