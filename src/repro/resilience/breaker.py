"""Circuit breakers for the pipeline's fragile dependencies.

A :class:`CircuitBreaker` guards a call site (one matcher, the sqlite
store) with the classic three-state machine:

* **closed** — calls flow; consecutive failures are counted and the
  breaker opens at ``failure_threshold``;
* **open** — calls are refused outright (:meth:`allow` is False,
  :meth:`call` raises :class:`~repro.errors.CircuitOpenError`) until
  ``reset_seconds`` elapse;
* **half-open** — after the cool-down a bounded number of probe calls
  is admitted; one success closes the breaker, one failure re-opens it
  and restarts the cool-down.

The clock is injectable for deterministic tests.  All transitions are
lock-protected; the breaker is shared between serving threads.
"""

from __future__ import annotations

import logging
import threading
import time
from typing import Callable, TypeVar

from repro.errors import CircuitOpenError

logger = logging.getLogger(__name__)

T = TypeVar("T")

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"

#: Numeric state encoding for the ``schemr_breaker_state`` gauge.
STATE_CODES = {STATE_CLOSED: 0, STATE_HALF_OPEN: 1, STATE_OPEN: 2}


class CircuitBreaker:
    """Open-after-N-failures breaker with timed half-open probes."""

    def __init__(self, name: str, failure_threshold: int = 5,
                 reset_seconds: float = 30.0, half_open_probes: int = 1,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        if reset_seconds <= 0:
            raise ValueError(
                f"reset_seconds must be positive, got {reset_seconds}")
        if half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {half_open_probes}")
        self.name = name
        self._threshold = failure_threshold
        self._reset_seconds = reset_seconds
        self._max_probes = half_open_probes
        self._clock = clock
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._open_count = 0
        self._rejected_count = 0
        self._failure_count = 0

    # -- observability -------------------------------------------------

    @property
    def state(self) -> str:
        """Current state (promotes open -> half_open when cooled down)."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def state_code(self) -> int:
        """Numeric state for gauges: 0 closed, 1 half-open, 2 open."""
        return STATE_CODES[self.state]

    @property
    def open_count(self) -> int:
        """Times this breaker has tripped open."""
        with self._lock:
            return self._open_count

    @property
    def rejected_count(self) -> int:
        """Calls refused while open."""
        with self._lock:
            return self._rejected_count

    @property
    def failure_count(self) -> int:
        """Failures ever recorded."""
        with self._lock:
            return self._failure_count

    def retry_after(self) -> float:
        """Seconds until the next probe would be admitted (0 if now)."""
        with self._lock:
            if self._state != STATE_OPEN:
                return 0.0
            return max(0.0, self._reset_seconds
                       - (self._clock() - self._opened_at))

    # -- state machine -------------------------------------------------

    def _maybe_half_open(self) -> None:  # lint: unlocked (caller holds self._lock)
        if (self._state == STATE_OPEN
                and self._clock() - self._opened_at >= self._reset_seconds):
            self._state = STATE_HALF_OPEN
            self._probes_in_flight = 0

    def allow(self) -> bool:
        """Whether a call may proceed right now.

        In half-open state at most ``half_open_probes`` concurrent
        probes are admitted; further calls are refused until a probe
        reports back.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == STATE_CLOSED:
                return True
            if self._state == STATE_HALF_OPEN:
                if self._probes_in_flight < self._max_probes:
                    self._probes_in_flight += 1
                    return True
            self._rejected_count += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            if self._state == STATE_HALF_OPEN:
                logger.info("breaker %s: probe succeeded, closing",
                            self.name)
            self._state = STATE_CLOSED
            self._consecutive_failures = 0
            self._probes_in_flight = 0

    def record_failure(self) -> None:
        with self._lock:
            self._failure_count += 1
            if self._state == STATE_HALF_OPEN:
                self._trip()
                return
            self._consecutive_failures += 1
            if (self._state == STATE_CLOSED
                    and self._consecutive_failures >= self._threshold):
                self._trip()

    def _trip(self) -> None:  # lint: unlocked (caller holds self._lock)
        self._state = STATE_OPEN
        self._opened_at = self._clock()
        self._open_count += 1
        self._consecutive_failures = 0
        self._probes_in_flight = 0
        logger.warning("breaker %s: opened (cool-down %.1fs)",
                       self.name, self._reset_seconds)

    def reset(self) -> None:
        """Force-close (tests, admin tooling)."""
        with self._lock:
            self._state = STATE_CLOSED
            self._consecutive_failures = 0
            self._probes_in_flight = 0

    # -- convenience ---------------------------------------------------

    def call(self, fn: Callable[..., T], *args: object,
             **kwargs: object) -> T:
        """Run ``fn`` under the breaker.

        Raises :class:`CircuitOpenError` without calling when open;
        otherwise records success/failure from the call's outcome and
        re-raises its exception.
        """
        if not self.allow():
            raise CircuitOpenError(
                f"circuit {self.name!r} is open",
                breaker=self.name, retry_after=self.retry_after())
        try:
            result = fn(*args, **kwargs)
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result
