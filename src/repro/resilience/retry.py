"""Retry with exponential backoff and jitter for transient failures.

The one transient failure this codebase actually sees is sqlite's
``OperationalError: database is locked`` — a writer holding the file
while a reader (or the indexer refresh loop) comes through.  WAL mode
plus ``busy_timeout`` (see :class:`~repro.repository.store.SchemaRepository`)
absorbs most of it; the retry loop here is the second line of defence
for the cases that still surface.

``sleep`` and ``rng`` are injectable so tests assert the exact backoff
sequence without real sleeping.
"""

from __future__ import annotations

import logging
import random
import sqlite3
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

logger = logging.getLogger(__name__)

T = TypeVar("T")

#: OperationalError messages that indicate a transient lock/busy state
#: (anything else — malformed database, disk I/O error — is permanent).
_TRANSIENT_MARKERS = ("locked", "busy")


def is_transient_sqlite_error(exc: BaseException) -> bool:
    """Whether ``exc`` is a retryable sqlite lock/busy condition."""
    if not isinstance(exc, sqlite3.OperationalError):
        return False
    message = str(exc).lower()
    return any(marker in message for marker in _TRANSIENT_MARKERS)


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Exponential backoff with full jitter.

    Attempt ``i`` (0-based) sleeps ``uniform(0, min(max_seconds,
    base_seconds * multiplier**i))`` before retrying — the "full
    jitter" scheme, which decorrelates competing retriers better than
    equal-jitter at the same expected delay.
    """

    attempts: int = 4
    base_seconds: float = 0.01
    multiplier: float = 2.0
    max_seconds: float = 0.5

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_seconds <= 0:
            raise ValueError(
                f"base_seconds must be positive, got {self.base_seconds}")
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_seconds < self.base_seconds:
            raise ValueError("max_seconds must be >= base_seconds")

    def backoff_seconds(self, attempt: int,
                        rng: random.Random) -> float:
        cap = min(self.max_seconds,
                  self.base_seconds * self.multiplier ** attempt)
        return rng.uniform(0.0, cap)


def retry_transient(fn: Callable[[], T],
                    policy: RetryPolicy | None = None, *,
                    is_transient: Callable[[BaseException], bool]
                    = is_transient_sqlite_error,
                    sleep: Callable[[float], None] = time.sleep,
                    rng: random.Random | None = None,
                    on_retry: Callable[[int, BaseException], None]
                    | None = None) -> T:
    """Call ``fn`` retrying transient failures with jittered backoff.

    Non-transient exceptions propagate immediately; the final transient
    failure propagates after ``policy.attempts`` tries.  ``on_retry``
    (attempt index, exception) fires before each backoff — the
    repository uses it to count retries into telemetry.
    """
    policy = policy or RetryPolicy()
    rng = rng or random
    last: BaseException | None = None
    for attempt in range(policy.attempts):
        try:
            return fn()
        except Exception as exc:
            if not is_transient(exc):
                raise
            last = exc
            if attempt == policy.attempts - 1:
                break
            if on_retry is not None:
                on_retry(attempt, exc)
            delay = policy.backoff_seconds(attempt, rng)
            logger.debug("transient failure (attempt %d/%d), retrying "
                         "in %.4fs: %s", attempt + 1, policy.attempts,
                         delay, exc)
            sleep(delay)
    assert last is not None
    raise last
