"""``repro.resilience`` — deadlines, degradation, breakers, shedding.

The resilience layer keeps an interactive schemr deployment answering
in human time when parts of it misbehave:

* :mod:`repro.resilience.deadline` — per-search wall-clock
  :class:`Deadline` (from ``SchemrConfig.search_budget_seconds``) and
  the :class:`DegradationLadder` that trades result quality for
  latency: shrink the phase-2 pool, drop to the cheap name matcher, or
  return the phase-1 TF/IDF ranking outright.  Every response carries
  its ``degradation_level``.
* :mod:`repro.resilience.breaker` — :class:`CircuitBreaker` around
  each matcher and the sqlite-backed schema source: open after N
  consecutive failures, timed half-open probes.
* :mod:`repro.resilience.retry` — exponential backoff with full jitter
  for transient ``database is locked`` errors.
* :mod:`repro.resilience.shedding` — the server's bounded
  :class:`AdmissionController`: structured 429 + ``Retry-After``
  instead of queueing into oblivion.
* :mod:`repro.resilience.faults` — the deterministic
  :class:`FaultInjector` (module-global :data:`FAULTS`) powering the
  chaos suite and ``benchmarks/bench_resilience.py``.
* :mod:`repro.resilience.guards` — :class:`GuardedEnsemble`, the
  breaker-aware ensemble wrapper the engine matches through.
"""

from __future__ import annotations

from repro.errors import (
    AdmissionRejected,
    CircuitOpenError,
    DeadlineExceeded,
    ResilienceError,
)
from repro.resilience.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
)
from repro.resilience.deadline import (
    DEGRADE_NAME_ONLY,
    DEGRADE_NONE,
    DEGRADE_PHASE1_ONLY,
    DEGRADE_REDUCED_POOL,
    Deadline,
    DegradationLadder,
    degradation_name,
)
from repro.resilience.faults import FAULTS, FaultInjector, FaultRecord
from repro.resilience.guards import GuardedEnsemble
from repro.resilience.retry import (
    RetryPolicy,
    is_transient_sqlite_error,
    retry_transient,
)
from repro.resilience.shedding import AdmissionController

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "CircuitBreaker",
    "CircuitOpenError",
    "DEGRADE_NAME_ONLY",
    "DEGRADE_NONE",
    "DEGRADE_PHASE1_ONLY",
    "DEGRADE_REDUCED_POOL",
    "Deadline",
    "DeadlineExceeded",
    "DegradationLadder",
    "FAULTS",
    "FaultInjector",
    "FaultRecord",
    "GuardedEnsemble",
    "ResilienceError",
    "RetryPolicy",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "degradation_name",
    "is_transient_sqlite_error",
    "retry_transient",
]
