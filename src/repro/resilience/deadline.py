"""Per-search wall-clock budgets and the degradation ladder.

A :class:`Deadline` is created once per search from
``SchemrConfig.search_budget_seconds`` and threaded through the
pipeline; phases consult it at their boundaries and the candidate
scoring loop consults it per candidate.  The clock is injectable so the
chaos suite advances time deterministically instead of sleeping.

The :class:`DegradationLadder` maps "how much budget is left" onto the
engine's graceful-degradation levels:

========================  =====  ==============================================
level name                value  behaviour
========================  =====  ==============================================
``none``                  0      full three-phase pipeline
``reduced_pool``          1      phase 2 scores a shrunken candidate pool
``name_only``             2      ensemble falls back to the cheap name matcher
``phase1_only``           3      phase-1 TF/IDF ranking returned outright
========================  =====  ==============================================

Every response carries the level it was produced at (see
``QueryProfile.degradation_level``), so clients and dashboards can tell
a full answer from a best-effort one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.errors import DeadlineExceeded

#: Degradation levels, ordered from full service to cheapest fallback.
DEGRADE_NONE = 0
DEGRADE_REDUCED_POOL = 1
DEGRADE_NAME_ONLY = 2
DEGRADE_PHASE1_ONLY = 3

_LEVEL_NAMES = ("none", "reduced_pool", "name_only", "phase1_only")


def degradation_name(level: int) -> str:
    """The machine-readable name of a degradation level."""
    if 0 <= level < len(_LEVEL_NAMES):
        return _LEVEL_NAMES[level]
    raise ValueError(f"unknown degradation level {level}")


class Deadline:
    """A wall-clock budget with an injectable monotonic clock.

    ``budget_seconds=None`` means *unlimited* — every check passes and
    :meth:`remaining` is ``inf`` — so unbudgeted deployments pay only a
    comparison per check.
    """

    __slots__ = ("_budget", "_clock", "_started")

    def __init__(self, budget_seconds: float | None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if budget_seconds is not None and budget_seconds <= 0:
            raise ValueError(
                f"budget must be positive, got {budget_seconds}")
        self._budget = budget_seconds
        self._clock = clock
        self._started = clock()

    @classmethod
    def unlimited(cls) -> "Deadline":
        return cls(None)

    @property
    def budget_seconds(self) -> float | None:
        return self._budget

    @property
    def limited(self) -> bool:
        return self._budget is not None

    def elapsed(self) -> float:
        return self._clock() - self._started

    def remaining(self) -> float:
        """Seconds left, never below 0; ``inf`` when unlimited."""
        if self._budget is None:
            return float("inf")
        return max(0.0, self._budget - self.elapsed())

    def fraction_remaining(self) -> float:
        """Remaining budget as a fraction of the whole; 1.0 unlimited."""
        if self._budget is None:
            return 1.0
        return self.remaining() / self._budget

    def expired(self) -> bool:
        return self._budget is not None and self.remaining() <= 0.0

    def check(self, site: str = "") -> None:
        """Raise :class:`DeadlineExceeded` when the budget is gone."""
        if self.expired():
            where = f" at {site}" if site else ""
            raise DeadlineExceeded(
                f"search budget of {self._budget:.3f}s exhausted"
                f"{where} ({self.elapsed():.3f}s elapsed)")


@dataclass(frozen=True, slots=True)
class DegradationLadder:
    """Budget-fraction thresholds driving the engine's fallbacks.

    After phase 1 the engine asks the ladder for a level given the
    deadline's remaining fraction: at or above
    ``reduced_pool_fraction`` remaining nothing degrades; below it the
    candidate pool shrinks; below ``name_only_fraction`` the ensemble
    collapses to the cheap name matcher; below ``phase1_fraction`` (or
    once the budget is fully spent) phase 1's ranking is returned
    outright.
    """

    reduced_pool_fraction: float = 0.5
    name_only_fraction: float = 0.25
    phase1_fraction: float = 0.10

    def __post_init__(self) -> None:
        if not (0.0 < self.phase1_fraction
                <= self.name_only_fraction
                <= self.reduced_pool_fraction < 1.0):
            raise ValueError(
                "ladder fractions must satisfy 0 < phase1 <= name_only "
                f"<= reduced_pool < 1, got {self}")

    def level_for(self, deadline: Deadline) -> int:
        """The degradation level the remaining budget calls for."""
        if not deadline.limited:
            return DEGRADE_NONE
        fraction = deadline.fraction_remaining()
        if fraction <= self.phase1_fraction:
            return DEGRADE_PHASE1_ONLY
        if fraction <= self.name_only_fraction:
            return DEGRADE_NAME_ONLY
        if fraction <= self.reduced_pool_fraction:
            return DEGRADE_REDUCED_POOL
        return DEGRADE_NONE
