"""Deterministic fault injection at named pipeline sites.

Library code declares *sites* — ``FAULTS.hit("store.get_schema")`` —
which are free no-ops in production (one attribute load and a truthiness
check on an empty dict).  The chaos suite arms an injector with
failures, delays, or arbitrary hooks per site:

    FAULTS.inject("store.get_schema",
                  error=sqlite3.OperationalError("database is locked"),
                  times=2)

Delays go through the injector's ``sleep`` callable, so a test that
pairs the injector with a fake clock advances time without real
sleeping — the suite stays deterministic and fast.  ``times=None``
means "every hit"; an exhausted plan disarms itself.

The declared site catalog lives in :data:`KNOWN_SITES` below (plus the
parameterized :data:`SITE_FAMILIES` like ``matcher.<name>``); the
``site-catalog`` lint rule reconciles every ``FAULTS.hit`` /
``FAULTS.inject`` literal against it in both directions, so the
catalog can never drift from the instrumented code.

The ``segments.*`` and ``replication.*`` sites exist for the
crash-injection recovery harness: armed with a ``SimulatedCrash``-style
error they model a process dying at exactly that point, and the
recovery property is that reopening the directory (with the orphan
sweep) always yields the last *committed* generation, byte-identical.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

#: The declared catalog of every named fault site: site -> the guarded
#: operation.  ``FAULTS.hit`` literals anywhere in ``src/`` and
#: ``FAULTS.inject`` literals in the chaos suites must name an entry
#: here (or extend a family from :data:`SITE_FAMILIES`), and every
#: entry must be hit somewhere — the ``site-catalog`` lint rule of
#: :mod:`repro.analysis` enforces both directions in CI, the same
#: round-trip discipline the metric catalog established.
KNOWN_SITES: dict[str, str] = {
    "store.get_schema": "sqlite payload fetch in SchemaRepository",
    "store.add_schema": "sqlite insert in SchemaRepository",
    "store.iter_schemas": "bulk schema iteration feeding rebuilds",
    "store.changes_since": "changelog read feeding the indexer refresh",
    "profile_store.lookup": "ProfileStore read-through miss path",
    "engine.phase1": "candidate extraction call in the engine",
    "engine.match_one": "per-candidate scoring step in the engine",
    "indexer.refresh": "changelog application batch",
    "segments.write.torn": "mid-write of a segment file body",
    "segments.write.pre_rename":
        "segment durable under tmp name, not renamed",
    "segments.manifest.pre_rename":
        "MANIFEST.json tmp written, not renamed",
    "segments.manifest.post_rename":
        "MANIFEST.json renamed, caller not returned",
    "segments.flush.pre_commit":
        "flushed segment on disk, manifest not committed",
    "segments.merge.pre_commit":
        "merged segment on disk, manifest not committed",
    "replication.pull.chunk":
        "after each pulled chunk lands in .tmp",
    "replication.pull.pre_rename":
        "pulled segment verified, not yet renamed",
    "replication.pull.pre_commit":
        "all segments pulled, manifest not committed",
}

#: Parameterized site families: a dynamically built site name is legal
#: exactly when its literal head matches one of these prefixes (the
#: per-matcher wrapping in GuardedEnsemble is the one user).
SITE_FAMILIES: dict[str, str] = {
    "matcher.": "one matcher's match() inside GuardedEnsemble",
}

#: The crash-injection subset: sites armed with a process-death error
#: by the recovery harness.  The invariant each one witnesses is that
#: reopening after a crash there yields the last *committed*
#: generation, byte-identically.  Must be a subset of KNOWN_SITES.
CRASH_SITES: frozenset[str] = frozenset((
    "segments.write.torn",
    "segments.write.pre_rename",
    "segments.manifest.pre_rename",
    "segments.manifest.post_rename",
    "segments.flush.pre_commit",
    "segments.merge.pre_commit",
    "replication.pull.chunk",
    "replication.pull.pre_rename",
    "replication.pull.pre_commit",
))


@dataclass
class _FaultPlan:
    """What to do when a site is hit."""

    error: BaseException | None = None
    delay_seconds: float = 0.0
    hook: Callable[[], None] | None = None
    #: Remaining activations; None = unlimited.
    times: int | None = None
    triggered: int = 0


@dataclass(slots=True)
class FaultRecord:
    """One site's observed traffic while the injector was armed."""

    hits: int = 0
    triggered: int = 0


class FaultInjector:
    """Arms failures/delays at named sites; disarmed it costs ~nothing."""

    def __init__(self, sleep: Callable[[float], None] = time.sleep) -> None:
        self._sleep = sleep
        self._lock = threading.Lock()
        self._plans: dict[str, _FaultPlan] = {}
        self._records: dict[str, FaultRecord] = {}

    # -- arming ----------------------------------------------------------

    def inject(self, site: str, *, error: BaseException | None = None,
               delay_seconds: float = 0.0,
               hook: Callable[[], None] | None = None,
               times: int | None = None) -> None:
        """Arm ``site``: optionally delay, run ``hook``, raise ``error``.

        ``times`` bounds how many hits trigger (None = all).  Re-arming
        a site replaces its previous plan.
        """
        if error is None and delay_seconds == 0.0 and hook is None:
            raise ValueError(
                f"fault plan for {site!r} does nothing: supply error, "
                "delay_seconds, or hook")
        if delay_seconds < 0:
            raise ValueError(
                f"delay_seconds must be >= 0, got {delay_seconds}")
        if times is not None and times < 1:
            raise ValueError(f"times must be >= 1, got {times}")
        with self._lock:
            self._plans[site] = _FaultPlan(
                error=error, delay_seconds=delay_seconds, hook=hook,
                times=times)

    def disarm(self, site: str) -> None:
        with self._lock:
            self._plans.pop(site, None)

    def reset(self) -> None:
        """Disarm everything and forget hit counts."""
        with self._lock:
            self._plans.clear()
            self._records.clear()

    def set_sleep(self, sleep: Callable[[float], None]) -> None:
        """Swap the delay implementation (tests: fake-clock advance)."""
        self._sleep = sleep

    # -- observation ------------------------------------------------------

    @property
    def armed_sites(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._plans))

    def record(self, site: str) -> FaultRecord:
        """Traffic counters for ``site`` (zeros when never hit)."""
        with self._lock:
            return self._records.get(site, FaultRecord())

    def hits(self, site: str) -> int:
        return self.record(site).hits

    def triggered(self, site: str) -> int:
        return self.record(site).triggered

    # -- the instrumented-code side ---------------------------------------

    def hit(self, site: str) -> None:
        """Called by library code at an instrumented site.

        Fast path: with nothing armed this is a dict truthiness check.
        """
        if not self._plans:  # lint: unlocked (GIL-atomic truthiness check; the armed path re-checks under the lock)
            return
        with self._lock:
            record = self._records.setdefault(site, FaultRecord())
            record.hits += 1
            plan = self._plans.get(site)
            if plan is None:
                return
            if plan.times is not None:
                if plan.times <= 0:
                    return
                plan.times -= 1
                if plan.times == 0:
                    self._plans.pop(site, None)
            plan.triggered += 1
            record.triggered += 1
            delay = plan.delay_seconds
            hook = plan.hook
            error = plan.error
        # Delay/hook/raise happen outside the lock: a hook that blocks
        # (e.g. on an Event, to hold a server slot open) must not
        # serialize other sites.
        if delay:
            self._sleep(delay)
        if hook is not None:
            hook()
        if error is not None:
            raise error


#: The process-wide injector instrumented code imports.  Disarmed by
#: default; chaos tests arm it and must ``reset()`` in teardown.
FAULTS = FaultInjector()
