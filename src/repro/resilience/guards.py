"""Breaker-guarded wrappers around the match-phase dependencies.

:class:`GuardedEnsemble` mirrors
:meth:`~repro.matching.ensemble.MatcherEnsemble.match` but runs each
matcher under its own :class:`~repro.resilience.breaker.CircuitBreaker`:
a matcher that keeps failing is cut out of the ensemble (its weight
simply drops from the combination) instead of failing every search,
and half-open probes let it back in once it recovers.  A ``cheap_only``
match collapses the ensemble to the cheapest matcher — the name
matcher — which is what the degradation ladder's ``name_only`` level
runs.

When *every* matcher is refused or fails, the guarded match raises
:class:`~repro.errors.CircuitOpenError`; the engine reacts by falling
back to the phase-1 ranking rather than erroring the search.
"""

from __future__ import annotations

import logging
import time
from typing import TYPE_CHECKING, Callable

from repro.errors import CircuitOpenError
from repro.matching.base import SimilarityMatrix
from repro.matching.ensemble import EnsembleResult, MatcherEnsemble
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import FAULTS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.matching.profile import MatchScratch, SchemaMatchProfile
    from repro.model.query import QueryGraph
    from repro.model.schema import Schema

logger = logging.getLogger(__name__)

#: The matcher the ``name_only`` degradation level keeps (falls back to
#: the ensemble's first matcher when absent).
CHEAP_MATCHER_NAME = "name"


class GuardedEnsemble:
    """A :class:`MatcherEnsemble` with one circuit breaker per matcher."""

    def __init__(self, ensemble: MatcherEnsemble,
                 failure_threshold: int = 5,
                 reset_seconds: float = 30.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._ensemble = ensemble
        self._breakers = {
            matcher.name: CircuitBreaker(
                f"matcher.{matcher.name}",
                failure_threshold=failure_threshold,
                reset_seconds=reset_seconds, clock=clock)
            for matcher in ensemble.matchers
        }
        names = ensemble.matcher_names
        self._cheap_name = (CHEAP_MATCHER_NAME
                            if CHEAP_MATCHER_NAME in names else names[0])

    @property
    def ensemble(self) -> MatcherEnsemble:
        return self._ensemble

    @property
    def breakers(self) -> dict[str, CircuitBreaker]:
        """name -> breaker (live objects; shared with the engine)."""
        return self._breakers

    @property
    def cheap_matcher_name(self) -> str:
        return self._cheap_name

    def match(self, query: "QueryGraph", candidate: "Schema",
              profile: "SchemaMatchProfile | None" = None,
              scratch: "MatchScratch | None" = None,
              cheap_only: bool = False) -> EnsembleResult:
        """The ensemble match, minus matchers whose breakers are open.

        With ``cheap_only`` the ensemble is reduced to the name matcher
        (the ``name_only`` degradation level).  Matcher exceptions are
        recorded on their breaker and the matcher skipped for this
        candidate; :class:`CircuitOpenError` is raised only when no
        matcher at all produced a matrix.
        """
        ensemble = self._ensemble
        weights = ensemble.weights
        per_matcher: dict[str, SimilarityMatrix] = {}
        matrices: list[SimilarityMatrix] = []
        weight_list: list[float] = []
        for matcher in ensemble.matchers:
            if cheap_only and matcher.name != self._cheap_name:
                continue
            breaker = self._breakers[matcher.name]
            if not breaker.allow():
                continue
            try:
                FAULTS.hit(f"matcher.{matcher.name}")
                matrix = matcher.match(query, candidate,
                                       profile=profile, scratch=scratch)
            except Exception as exc:
                breaker.record_failure()
                logger.debug("matcher %s failed (%s); skipped for this "
                             "candidate", matcher.name, exc)
                continue
            breaker.record_success()
            per_matcher[matcher.name] = matrix
            matrices.append(matrix)
            weight_list.append(weights[matcher.name])
        if not matrices:
            raise CircuitOpenError(
                "no matcher available: all breakers open or failing",
                breaker="ensemble")
        if all(w == 0 for w in weight_list):
            # Every surviving matcher carries zero weight (the weighted
            # ones are all broken); fall back to uniform combination so
            # degraded results still rank.
            weight_list = [1.0] * len(matrices)
        combined = SimilarityMatrix.combine(matrices, weight_list)
        return EnsembleResult(combined=combined, per_matcher=per_matcher)
