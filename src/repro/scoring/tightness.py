"""Tightness-of-fit: the paper's structurally-aware final score.

Given the per-element match scores S (the max of each schema element's
column in the combined similarity matrix), pick an *anchor entity* A and
penalize each matched element by its structural distance to the anchor:

* element in the anchor entity            -> no penalty
* element in the anchor's FK neighborhood -> small penalty
* element in an unrelated entity          -> larger penalty

The anchored score aggregates the penalized element scores (sum by
default, mean as an option — see :class:`PenaltyPolicy.aggregation`);
the final schema score is the maximum over all candidate anchors:

    t_max = max_A aggregate(S - P_A)

Only *matched* elements (score above a floor) participate — Figure 4
shows "an example schema showing only matched schema elements", and
aggregating over every unmatched element of a 200-column schema would
drown any signal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MatchError
from repro.model.elements import ElementRef
from repro.model.schema import Schema
from repro.scoring.neighborhood import NeighborhoodIndex


#: Valid values of :attr:`PenaltyPolicy.aggregation`.
AGGREGATION_SUM = "sum"
AGGREGATION_MEAN = "mean"


@dataclass(frozen=True, slots=True)
class PenaltyPolicy:
    """The distance-bucket penalties.

    Defaults follow the paper's qualitative spec (small vs larger); the
    exact magnitudes are the knobs the E3 ablation bench sweeps.
    ``match_floor`` is the minimum combined similarity for a schema
    element to count as *matched* — Figure 4 scores "only matched schema
    elements", and without a floor the n-gram haze every word pair
    shares would flood the aggregate.

    ``aggregation`` resolves an ambiguity in the paper: the prose says
    the penalized scores are "averaged", but the displayed formula is
    ``t_max = max_A Σ(S − P_A)`` — a sum.  The sum (default) rewards
    schemas that match more of the query, which matches the ranking
    behaviour Figure 2 shows; the mean is available for the E3 ablation.
    """

    neighborhood_penalty: float = 0.1
    unrelated_penalty: float = 0.3
    match_floor: float = 0.25
    aggregation: str = AGGREGATION_SUM

    def __post_init__(self) -> None:
        if not 0.0 <= self.neighborhood_penalty <= 1.0:
            raise MatchError("neighborhood_penalty must be in [0, 1]")
        if not 0.0 <= self.unrelated_penalty <= 1.0:
            raise MatchError("unrelated_penalty must be in [0, 1]")
        if self.neighborhood_penalty > self.unrelated_penalty:
            raise MatchError(
                "neighborhood penalty must not exceed unrelated penalty")
        if self.aggregation not in (AGGREGATION_SUM, AGGREGATION_MEAN):
            raise MatchError(
                f"aggregation must be {AGGREGATION_SUM!r} or "
                f"{AGGREGATION_MEAN!r}, got {self.aggregation!r}")


@dataclass(slots=True)
class AnchorScore:
    """The penalized-and-averaged score for one anchor choice."""

    anchor: str
    score: float
    penalized_elements: dict[str, float] = field(default_factory=dict)


@dataclass(slots=True)
class TightnessResult:
    """Outcome of scoring one candidate schema."""

    score: float
    best_anchor: str | None
    anchors: list[AnchorScore] = field(default_factory=list)
    matched_elements: dict[str, float] = field(default_factory=dict)

    @property
    def element_count(self) -> int:
        return len(self.matched_elements)


class TightnessScorer:
    """Computes ``t_max`` for candidate schemas."""

    def __init__(self, policy: PenaltyPolicy | None = None) -> None:
        self._policy = policy or PenaltyPolicy()

    @property
    def policy(self) -> PenaltyPolicy:
        return self._policy

    def score(self, schema: Schema,
              element_scores: dict[str, float],
              neighborhoods: NeighborhoodIndex | None = None
              ) -> TightnessResult:
        """Score ``schema`` given per-element match scores.

        ``element_scores`` maps element paths (``patient.height``,
        ``patient``) to combined similarity in [0, 1] — normally the
        ``max_per_column`` of the ensemble's combined matrix.  Unknown
        paths raise :class:`MatchError`; a mismatched matrix is a
        programming error worth failing loudly on.

        ``neighborhoods`` lets the caller supply a prebuilt
        :class:`NeighborhoodIndex` (e.g. from a schema match profile) so
        the FK transitive closure is not re-derived per candidate.
        """
        matched: dict[str, float] = {}
        entity_of: dict[str, str] = {}
        for path, value in element_scores.items():
            if value <= self._policy.match_floor:
                continue
            ref = ElementRef.parse(path)
            if not schema.has_element(ref):
                raise MatchError(
                    f"element {path!r} does not exist in schema "
                    f"{schema.name!r}")
            matched[path] = min(value, 1.0)
            entity_of[path] = ref.entity
        if not matched:
            return TightnessResult(score=0.0, best_anchor=None)

        if neighborhoods is None:
            neighborhoods = NeighborhoodIndex(schema)
        # Candidate anchors: every entity that contains a matched element.
        # An anchor with no matched element of its own is dominated by one
        # that has (penalties only grow), so restricting is safe and keeps
        # the loop linear in matched entities.
        anchors = sorted(set(entity_of.values()))
        anchor_scores: list[AnchorScore] = []
        for anchor in anchors:
            penalized: dict[str, float] = {}
            total = 0.0
            for path, value in matched.items():
                relation = neighborhoods.relation(anchor, entity_of[path])
                if relation == NeighborhoodIndex.SAME_ENTITY:
                    penalty = 0.0
                elif relation == NeighborhoodIndex.SAME_NEIGHBORHOOD:
                    penalty = self._policy.neighborhood_penalty
                else:
                    penalty = self._policy.unrelated_penalty
                adjusted = max(value - penalty, 0.0)
                penalized[path] = adjusted
                total += adjusted
            if self._policy.aggregation == AGGREGATION_MEAN:
                total /= len(matched)
            anchor_scores.append(AnchorScore(
                anchor=anchor,
                score=total,
                penalized_elements=penalized,
            ))
        best = max(anchor_scores, key=lambda a: (a.score, a.anchor))
        return TightnessResult(
            score=best.score,
            best_anchor=best.anchor,
            anchors=anchor_scores,
            matched_elements=matched,
        )
