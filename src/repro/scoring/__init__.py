"""Structure-aware scoring: phase three of the Schemr pipeline.

:mod:`repro.scoring.neighborhood` computes entity neighborhoods — the
transitive closure of the foreign-key graph — and
:mod:`repro.scoring.tightness` implements the tightness-of-fit measure
``t_max = max_A mean(S - P_A)`` over all anchor entities A.
"""

from repro.scoring.neighborhood import NeighborhoodIndex, entity_components
from repro.scoring.tightness import (
    AnchorScore,
    PenaltyPolicy,
    TightnessResult,
    TightnessScorer,
)

__all__ = [
    "AnchorScore",
    "NeighborhoodIndex",
    "PenaltyPolicy",
    "TightnessResult",
    "TightnessScorer",
    "entity_components",
]
