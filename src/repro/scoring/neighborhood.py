"""Entity neighborhoods: transitive closure on foreign keys.

The paper's distance measure needs to know, for elements e_i and e_j,
whether they are (a) in the same entity, (b) in the same *entity
neighborhood* — "transitive closure on foreign key" — or (c) in
unrelated entities.  A neighborhood is therefore a connected component
of the undirected entity-level FK graph.
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.model.graph import entity_adjacency
from repro.model.schema import Schema


def entity_components(schema: Schema,
                      adjacency: dict[str, set[str]] | None = None
                      ) -> list[set[str]]:
    """Connected components of the entity-level foreign-key graph.

    Isolated entities form singleton components.  Computed with an
    iterative DFS so pathological chain schemas cannot blow the stack.
    Pass ``adjacency`` when the caller already holds the schema's
    adjacency map (the profile builder computes it exactly once).
    """
    if adjacency is None:
        adjacency = entity_adjacency(schema)
    seen: set[str] = set()
    components: list[set[str]] = []
    for start in adjacency:
        if start in seen:
            continue
        component: set[str] = set()
        stack = [start]
        while stack:
            node = stack.pop()
            if node in component:
                continue
            component.add(node)
            stack.extend(adjacency[node] - component)
        seen.update(component)
        components.append(component)
    return components


class NeighborhoodIndex:
    """O(1) same-entity / same-neighborhood / unrelated classification."""

    SAME_ENTITY = "same_entity"
    SAME_NEIGHBORHOOD = "same_neighborhood"
    UNRELATED = "unrelated"

    def __init__(self, schema: Schema | None = None, *,
                 component_of: dict[str, int] | None = None) -> None:
        if component_of is not None:
            if schema is not None:
                raise SchemaError(
                    "pass either a schema or a component map, not both")
            self._component_of = dict(component_of)
            return
        if schema is None:
            raise SchemaError("a schema or a component map is required")
        self._component_of = {}
        for component_id, component in enumerate(entity_components(schema)):
            for entity in component:
                self._component_of[entity] = component_id

    @classmethod
    def from_component_map(cls, component_of: dict[str, int]
                           ) -> "NeighborhoodIndex":
        """Rehydrate from a precomputed entity -> component-id map.

        This is the fast path used by
        :class:`~repro.matching.profile.SchemaMatchProfile`: the
        transitive closure is computed once at ingest time and served
        as a dict lookup per query.
        """
        return cls(component_of=component_of)

    def component_id(self, entity: str) -> int:
        try:
            return self._component_of[entity]
        except KeyError:
            raise SchemaError(f"unknown entity {entity!r}") from None

    def relation(self, entity_a: str, entity_b: str) -> str:
        """Classify the pair into the paper's three distance buckets."""
        if entity_a == entity_b:
            return self.SAME_ENTITY
        if self.component_id(entity_a) == self.component_id(entity_b):
            return self.SAME_NEIGHBORHOOD
        return self.UNRELATED

    def same_neighborhood(self, entity_a: str, entity_b: str) -> bool:
        return self.component_id(entity_a) == self.component_id(entity_b)
