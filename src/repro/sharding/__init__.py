"""Process-sharded serving: a worker-pool engine over segment shards.

The GIL makes thread-parallel scoring a wash; this package escapes it
with *processes*.  The corpus lives in a doc-id-sharded segment layout
(:mod:`repro.index.segments.sharded`), each worker process mmaps one
shard (O(ms), zero-copy — nothing is pickled to start a worker), and
:class:`ShardedEngine` scatter-gathers per-shard phase-1/phase-2 work
into rankings byte-identical to the single-process engine's.
"""

from repro.sharding.engine import ShardedEngine
from repro.sharding.pool import (
    ShardDied,
    ShardError,
    ShardTimeout,
    WorkerHandle,
    WorkerPool,
)
from repro.sharding.worker import WorkerSpec, worker_main

__all__ = [
    "ShardDied",
    "ShardError",
    "ShardTimeout",
    "ShardedEngine",
    "WorkerHandle",
    "WorkerPool",
    "WorkerSpec",
    "worker_main",
]
