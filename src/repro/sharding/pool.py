"""Front-side worker handles: spawn, demultiplex, respawn, tear down.

One :class:`WorkerHandle` per shard wraps the worker process and its
pipe.  Any number of serving threads can issue requests concurrently:
sends serialize on a lock, and responses are demultiplexed by
``(kind, qid)`` under a condition variable — whichever thread is
waiting pumps the pipe and parks everyone else until their response
(or their deadline) arrives.

Failure taxonomy, surfaced as exceptions the scatter-gather front
converts into degraded serving:

* :class:`ShardTimeout` — the worker did not answer within the
  per-request budget (stalled, or starved under load);
* :class:`ShardDied` — the pipe hit EOF (the process exited or was
  killed);
* :class:`ShardError` — the worker answered with an error (a
  per-request exception; the worker itself is still healthy).

:class:`WorkerPool` owns the handles plus one circuit breaker per
shard; a dead worker is respawned immediately and its breaker reset as
soon as the replacement reports ready.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from typing import Callable

from repro.errors import ServiceError
from repro.resilience.breaker import CircuitBreaker
from repro.sharding.protocol import TAG_ERROR, TAG_READY, TAG_SHUTDOWN
from repro.sharding.worker import WorkerSpec, worker_main

#: Pipe-poll slice while pumping: short enough that a waiter whose
#: response already arrived (buffered by another thread's pump) is
#: released promptly, long enough to stay off the scheduler's back.
_POLL_SLICE = 0.05

#: Demux buffer bound; responses nobody claimed (e.g. a stalled worker
#: answering after its waiter timed out) are dropped oldest-first.
_RESPONSE_BACKLOG = 1024

#: State values for :attr:`WorkerHandle.state`.
STATE_OPENING = "opening"
STATE_READY = "ready"
STATE_DEAD = "dead"
STATE_STOPPED = "stopped"


class ShardError(ServiceError):
    """A shard worker answered a request with an error."""


class ShardTimeout(ShardError):
    """A shard worker did not answer within the request budget."""


class ShardDied(ShardError):
    """A shard worker's pipe closed (process exited or was killed)."""


def _mp_context():
    """Prefer ``fork``: instant start, nothing re-imported.  ``spawn``
    works too (everything crossing the pipe is picklable)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


class WorkerHandle:
    """One shard worker process and its demultiplexed pipe."""

    def __init__(self, spec: WorkerSpec, ctx=None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._spec = spec
        self._ctx = ctx or _mp_context()
        self._clock = clock
        self._cond = threading.Condition()
        self._send_lock = threading.Lock()
        self._responses: dict[tuple[str, int], object] = {}
        self._pumping = False
        self._proc = None
        self._conn = None
        self._state = STATE_OPENING
        self._pid: int | None = None
        #: Times this handle respawned its process (monotone counter,
        #: exported as ``schemr_shard_restarts_total``).
        self.restarts = 0
        self._start()

    @property
    def shard_id(self) -> int:
        return self._spec.shard_id

    @property
    def state(self) -> str:  # lint: unlocked (GIL-atomic str read for status reporting)
        return self._state

    @property
    def pid(self) -> int | None:  # lint: unlocked (GIL-atomic read for status reporting)
        return self._pid

    @property
    def process_alive(self) -> bool:
        proc = self._proc  # lint: unlocked (GIL-atomic read for status reporting)
        return proc is not None and proc.is_alive()

    def _start(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        try:
            proc = self._ctx.Process(
                target=worker_main, args=(self._spec, child_conn),
                daemon=True,
                name=f"schemr-shard-{self._spec.shard_id}")
            proc.start()
        except BaseException:
            # A failed fork/spawn must not strand the pipe ends.
            parent_conn.close()
            child_conn.close()
            raise
        child_conn.close()
        with self._cond:
            self._proc = proc
            self._conn = parent_conn
            self._state = STATE_OPENING
            self._pid = proc.pid
            self._responses.clear()
            self._cond.notify_all()

    def respawn(self) -> None:
        """Replace a dead (or wedged) process with a fresh one."""
        with self._cond:
            proc, conn = self._proc, self._conn
        if proc is not None and proc.is_alive():
            proc.terminate()
            proc.join(1.0)
            if proc.is_alive():  # pragma: no cover - stubborn process
                proc.kill()
                proc.join(1.0)
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - teardown race
                pass
        self.restarts += 1
        self._start()

    def ensure_ready(self, timeout: float) -> bool:
        """Wait for the worker's ``ready`` handshake; True when serving.

        Idempotent and cheap once ready.  A respawned worker goes
        through here again (the fresh process re-sends ``ready``).
        """
        with self._cond:
            if self._state == STATE_READY:
                return True
            if self._state in (STATE_DEAD, STATE_STOPPED):
                return False
        try:
            self.collect(TAG_READY, 0, timeout)
        except ShardError:
            return False
        with self._cond:
            if self._state == STATE_OPENING:
                self._state = STATE_READY
        return True

    def send(self, kind: str, qid: int, payload: object) -> None:
        """Ship one request; raises :class:`ShardDied` on a dead pipe."""
        with self._cond:
            if self._state in (STATE_DEAD, STATE_STOPPED):
                raise ShardDied(
                    f"shard {self.shard_id} worker is {self._state}")
            conn = self._conn
        try:
            with self._send_lock:
                conn.send((kind, qid, payload))
        except (OSError, ValueError, BrokenPipeError) as exc:
            self._mark_dead()
            raise ShardDied(
                f"shard {self.shard_id} worker pipe closed on send: "
                f"{exc}") from exc

    def collect(self, kind: str, qid: int, timeout: float) -> object:
        """Wait for the response to ``(kind, qid)``.

        Threads cooperate: one pumps the pipe (buffering whatever
        arrives, keyed for its waiter), the rest wait on the condition.
        Raises :class:`ShardTimeout` / :class:`ShardDied` /
        :class:`ShardError` per the failure taxonomy.
        """
        deadline_at = self._clock() + timeout
        with self._cond:
            while True:
                key = (kind, qid)
                if key in self._responses:
                    return self._responses.pop(key)
                err_key = (TAG_ERROR, qid)
                if err_key in self._responses:
                    raise ShardError(
                        f"shard {self.shard_id} worker: "
                        f"{self._responses.pop(err_key)}")
                if self._state in (STATE_DEAD, STATE_STOPPED):
                    raise ShardDied(
                        f"shard {self.shard_id} worker died")
                remaining = deadline_at - self._clock()
                if remaining <= 0:
                    raise ShardTimeout(
                        f"shard {self.shard_id} worker did not answer "
                        f"{kind!r} within {timeout:.3f}s")
                if self._pumping:
                    self._cond.wait(timeout=remaining)
                    continue
                self._pumping = True
                conn = self._conn
                msg = None
                died = False
                self._cond.release()
                try:
                    try:
                        if conn.poll(min(remaining, _POLL_SLICE)):
                            msg = conn.recv()
                    except (EOFError, OSError):
                        died = True
                finally:
                    self._cond.acquire()
                    self._pumping = False
                    if msg is not None:
                        self._buffer_response(msg)
                    if died:
                        self._state = STATE_DEAD
                    self._cond.notify_all()

    def _buffer_response(self, msg) -> None:  # lint: unlocked (caller holds the condition lock)
        r_kind, r_qid, r_payload = msg
        if len(self._responses) >= _RESPONSE_BACKLOG:
            self._responses.pop(next(iter(self._responses)))
        self._responses[(r_kind, r_qid)] = r_payload

    def _mark_dead(self) -> None:
        with self._cond:
            if self._state not in (STATE_STOPPED,):
                self._state = STATE_DEAD
            self._cond.notify_all()

    def shutdown(self, timeout: float) -> str:
        """Stop the process; returns ``"clean"``, ``"terminated"`` or
        ``"killed"`` — anything but clean means the worker hung and
        mirrors the server's hung-serve-thread accounting."""
        with self._cond:
            proc, conn, state = self._proc, self._conn, self._state
            self._state = STATE_STOPPED
            self._cond.notify_all()
        if proc is None:
            return "clean"
        if state not in (STATE_DEAD,) and conn is not None:
            try:
                with self._send_lock:
                    conn.send((TAG_SHUTDOWN, 0, None))
            except (OSError, ValueError, BrokenPipeError):
                pass
        proc.join(timeout)
        outcome = "clean"
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout)
            outcome = "terminated"
        if proc.is_alive():  # pragma: no cover - stubborn process
            proc.kill()
            proc.join(timeout)
            outcome = "killed"
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - teardown race
                pass
        return outcome


class WorkerPool:
    """The shard workers plus one circuit breaker per shard."""

    def __init__(self, specs: list[WorkerSpec],
                 breaker_failure_threshold: int = 5,
                 breaker_reset_seconds: float = 30.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        ctx = _mp_context()
        self.workers: list[WorkerHandle] = []
        try:
            for spec in specs:
                self.workers.append(
                    WorkerHandle(spec, ctx=ctx, clock=clock))
        except BaseException:
            # A failed spawn mid-list must not leak the shards that
            # did start.
            for handle in self.workers:
                handle.shutdown(1.0)
            raise
        self.breakers = [
            CircuitBreaker(f"shard.{spec.shard_id}",
                           failure_threshold=breaker_failure_threshold,
                           reset_seconds=breaker_reset_seconds,
                           clock=clock)
            for spec in specs
        ]

    def __len__(self) -> int:
        return len(self.workers)

    def wait_ready(self, timeout: float) -> list[int]:
        """Block for the initial handshakes; returns ready shard ids."""
        ready = []
        for handle in self.workers:
            if handle.ensure_ready(timeout):
                ready.append(handle.shard_id)
        return ready

    def usable(self, shard_id: int, ready_timeout: float) -> bool:
        """Whether a scatter should include this shard right now.

        A respawned worker is promoted to ready here (bounded wait); an
        open breaker excludes the shard until its half-open probe.
        """
        handle = self.workers[shard_id]
        if handle.state == STATE_OPENING:
            if handle.ensure_ready(ready_timeout):
                # A fresh process answering its handshake is healthy;
                # don't make it serve through the breaker its dead
                # predecessor tripped.
                self.breakers[shard_id].reset()
                return True
            return False
        if handle.state != STATE_READY:
            return False
        return self.breakers[shard_id].allow()

    def shutdown(self, timeout: float) -> list[str]:
        """Stop every worker; returns per-shard outcomes."""
        return [handle.shutdown(timeout) for handle in self.workers]
