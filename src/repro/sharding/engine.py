"""The scatter-gather front: a sharded engine with single-engine bytes.

:class:`ShardedEngine` serves the same three-phase pipeline as
:class:`~repro.core.engine.SchemrEngine`, but phases 1 and 2 run in a
pool of worker *processes* (one per shard of the segment layout) so
CPU-bound scoring escapes the GIL:

* **phase 1** — the front :meth:`~repro.index.searcher.IndexSearcher.prepare`-s
  the query once against the *global* corpus statistics and broadcasts
  the prepared form; each worker returns its shard's top-``pool_n``
  and the front merges with the searcher's exact selection key.
  Because shards partition the doc-id space, each shard's local top
  ``pool_n`` is a superset of the global winners living there, so the
  merge equals the single-index ranking exactly.
* **phase 2** — the merged pool is bucketed back to the shards that own
  each candidate; workers run the engine's own
  :meth:`~repro.core.engine.SchemrEngine.match_and_score` and the front
  restores pool order before applying the engine's final stable sort,
  so the page is byte-identical to single-process serving.

Failures never change the bytes, only the latency and the
``shards_used`` stamp on the query profile: when a worker dies, stalls
past ``shard_timeout_seconds``, or errors, the front *repairs locally*
— it re-runs the failed work against its own union index with the same
code and the same floats — respawns the worker, and keeps serving.
Per-shard circuit breakers keep a flapping worker from taxing every
query; they deliberately do **not** surface through :attr:`breakers`,
because a degraded-but-serving pool must stay ready (the per-shard
health is exported via :meth:`shard_status` and the
``schemr_shard_*`` metric families instead).
"""

from __future__ import annotations

import dataclasses
import heapq
import logging
import threading
import time
from typing import Callable

from repro.core.config import SchemrConfig
from repro.core.engine import SchemrEngine
from repro.core.pipeline import (
    PHASE_CANDIDATES,
    PHASE_MATCHING,
    PHASE_PARSE,
    PHASE_TIGHTNESS,
    PipelineTrace,
    timed_phase,
)
from repro.core.results import SearchResult
from repro.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    QueryError,
    ServiceError,
)
from repro.index.searcher import IndexHit, IndexSearcher
from repro.index.segments import ShardedSegmentIndex, shard_of
from repro.model.query import QueryGraph
from repro.model.schema import Schema
from repro.parsers.query_parser import parse_query
from repro.resilience.breaker import STATE_OPEN
from repro.resilience.deadline import (
    DEGRADE_NAME_ONLY,
    DEGRADE_PHASE1_ONLY,
    DEGRADE_REDUCED_POOL,
    Deadline,
    DegradationLadder,
    degradation_name,
)
from repro.resilience.faults import FAULTS
from repro.sharding.pool import (
    STATE_DEAD,
    STATE_READY,
    ShardDied,
    ShardError,
    ShardTimeout,
    WorkerPool,
)
from repro.sharding.protocol import TAG_PHASE1, TAG_PHASE2, TAG_REOPEN
from repro.sharding.worker import WorkerSpec
from repro.telemetry import (
    DEFAULT_COUNT_BUCKETS,
    EMPTY_ALL_FILTERED,
    EMPTY_NO_INDEX_HITS,
    EMPTY_OFFSET_BEYOND,
    QueryProfile,
    Telemetry,
)

logger = logging.getLogger(__name__)

def _merge_key(hit: IndexHit) -> tuple[float, int]:
    """The phase-1 merge selection key — the same (score, -doc_id)
    ranking ``IndexSearcher._top_hits`` uses, so merged per-shard
    rankings tie-break exactly like the single index."""
    return (hit.score, -hit.doc_id)


@dataclasses.dataclass
class _QueryState:
    """Per-query scatter bookkeeping feeding the profile."""

    strategy: str = ""
    cache_hit: bool = False
    pruned_early: bool = False
    docs_scored: int = 0
    #: Shards whose worker failed this query (served via local repair).
    failed: set[int] = dataclasses.field(default_factory=set)


class ShardedEngine:
    """Process-sharded serving over a doc-id-sharded segment layout.

    Parameters
    ----------
    repository:
        A **file-backed** :class:`~repro.repository.store.SchemaRepository`
        — each worker opens its own sqlite connection (WAL mode makes
        that multi-process safe), so ``:memory:`` repositories cannot
        shard.
    config:
        Must carry ``segment_dir`` (the sharded layout root) and the
        ``shards`` count; ``shard_timeout_seconds`` bounds every worker
        round-trip.
    telemetry:
        Shared facade; built from ``config`` (and then owned) when
        omitted.  Workers run with telemetry disabled — the front owns
        every metric.
    clock:
        Injectable monotonic clock for deadlines and breakers.
    """

    def __init__(self, repository, config: SchemrConfig | None = None,
                 telemetry: Telemetry | None = None,
                 clock: Callable[[], float] | None = None) -> None:
        self._config = config or SchemrConfig()
        if self._config.segment_dir is None:
            raise ServiceError(
                "sharded serving requires segment_dir (the sharded "
                "segment layout workers mmap)")
        db_path = getattr(repository, "path", ":memory:")
        if db_path == ":memory:":
            raise ServiceError(
                "sharded serving requires a file-backed repository; "
                "workers open their own database connections")
        self._clock = clock or time.monotonic
        self._owns_telemetry = telemetry is None
        self._telemetry = telemetry or Telemetry.from_config(self._config)
        self._repository = repository
        self._indexer = repository.indexer(
            segment_dir=self._config.segment_dir,
            merge_policy=self._config.merge_policy,
            shards=self._config.shards)
        if self._indexer.telemetry is None:
            self._indexer.telemetry = self._telemetry
        self._indexer.refresh()
        index = self._indexer.index
        if not isinstance(index, ShardedSegmentIndex):
            raise ServiceError(
                f"{self._config.segment_dir} is not a sharded layout; "
                "rebuild it with shards set (schemr index --shards N)")
        if index.shard_count != self._config.shards:
            raise ServiceError(
                f"{self._config.segment_dir} holds "
                f"{index.shard_count} shard(s) but config requests "
                f"{self._config.shards}; a layout's shard count is "
                "fixed at creation")
        self._index = index
        fuzzy = None
        if self._config.use_fuzzy_expansion:
            from repro.index.fuzzy import TrigramIndex
            fuzzy = TrigramIndex.from_terms(index.vocabulary())
        self._fuzzy_generation = index.generation
        query_cache = None
        if self._config.query_cache_size > 0:
            from repro.index.cache import QueryCache
            query_cache = QueryCache(self._config.query_cache_size)
        self._searcher = IndexSearcher(
            index, use_coordination=self._config.use_coordination,
            fuzzy=fuzzy, query_cache=query_cache)
        self._ladder = DegradationLadder(
            reduced_pool_fraction=self._config.degrade_reduced_pool_fraction,
            name_only_fraction=self._config.degrade_name_only_fraction,
            phase1_fraction=self._config.degrade_phase1_fraction)
        # Workers run the same pipeline knobs minus everything the
        # front owns: telemetry, history, fuzzy expansion (the prepared
        # query already carries the expansions), budgets (per-request),
        # and of course sharding itself.
        self._worker_config = dataclasses.replace(
            self._config, telemetry_enabled=False, history_path=None,
            use_fuzzy_expansion=False, match_workers=1, shards=1,
            segment_dir=None, search_budget_seconds=None)
        specs = [
            WorkerSpec(shard_id=i, shard_count=index.shard_count,
                       db_path=db_path, shard_dir=str(shard_dir),
                       config=self._worker_config)
            for i, shard_dir in enumerate(index.shard_dirs)
        ]
        self._pool = WorkerPool(
            specs,
            breaker_failure_threshold=self._config.breaker_failure_threshold,
            breaker_reset_seconds=self._config.breaker_reset_seconds,
            clock=self._clock)
        self._qid_lock = threading.Lock()
        self._next_qid = 1
        self._epoch_lock = threading.Lock()
        self._served_generation = index.generation
        self._reopening = False
        self._fallback_lock = threading.Lock()
        self._fallback_engine: SchemrEngine | None = None
        self._closed = False
        self.last_trace: PipelineTrace | None = None
        self.last_profile: QueryProfile | None = None
        self._thread_profile = threading.local()
        self._register_instruments()

    # -- telemetry wiring ----------------------------------------------

    def _register_instruments(self) -> None:
        """Resolve hot-path instruments and wire per-shard gauges.

        The engine-level families are the same ones
        :class:`SchemrEngine` exports, so dashboards work unchanged;
        the ``schemr_shard_*`` families add the per-worker view.
        """
        m = self._telemetry.metrics
        self._m_searches = m.counter(
            "schemr_searches_total", "Searches executed")
        self._m_search_seconds = m.histogram(
            "schemr_search_seconds", "End-to-end search latency")
        self._m_phase = {
            name: m.histogram("schemr_phase_seconds",
                              "Per-phase wall time", phase=name)
            for name in (PHASE_PARSE, PHASE_CANDIDATES, PHASE_MATCHING,
                         PHASE_TIGHTNESS)
        }
        self._m_candidates = m.histogram(
            "schemr_phase1_candidates", "Phase-1 candidates per query",
            buckets=DEFAULT_COUNT_BUCKETS)
        self._m_results = m.counter(
            "schemr_results_total", "Results returned")
        self._m_docs_scored = m.counter(
            "schemr_phase1_docs_scored_total",
            "Documents entering the phase-1 accumulator")
        self._m_pruned_early = m.counter(
            "schemr_phase1_pruned_early_total",
            "Queries where MaxScore pruning reached AND-mode")
        self._m_slow = m.counter(
            "schemr_slow_queries_total",
            "Searches above the slow-query threshold")
        self._m_degraded = {
            level: m.counter("schemr_degraded_searches_total",
                             "Searches answered below full fidelity",
                             level=degradation_name(level))
            for level in (DEGRADE_REDUCED_POOL, DEGRADE_NAME_ONLY,
                          DEGRADE_PHASE1_ONLY)
        }
        self._m_deadline_expired = m.counter(
            "schemr_deadline_expired_total",
            "Searches whose wall-clock budget ran out mid-pipeline")
        self._m_shard_wait = {
            phase: m.histogram("schemr_shard_wait_seconds",
                               "Front wait per worker round-trip",
                               phase=phase)
            for phase in ("phase1", "phase2")
        }
        self._m_degraded_merges = m.counter(
            "schemr_shard_degraded_merges_total",
            "Queries merged without every shard (served via local repair)")
        self._m_hung = m.counter(
            "schemr_shard_hung_workers_total",
            "Workers terminated because they stopped answering")
        self._m_shard_requests = {
            sid: m.counter("schemr_shard_requests_total",
                           "Worker round-trips completed", shard=str(sid))
            for sid in range(self._index.shard_count)
        }
        if not m.enabled:
            return
        index = self._index
        m.gauge("schemr_index_documents", "Indexed documents",
                callback=lambda: index.document_count)
        m.gauge("schemr_index_terms", "Distinct index terms",
                callback=lambda: index.term_count)
        m.gauge("schemr_index_generation", "Index generation",
                callback=lambda: index.generation)
        m.gauge("schemr_segment_count", "Live mmapped segments",
                callback=lambda: index.segment_count)
        m.gauge("schemr_segment_mmap_bytes",
                "Bytes memory-mapped across live segments",
                callback=lambda: index.mmap_bytes)
        m.gauge("schemr_segment_delta_docs",
                "Documents in the in-memory delta segment",
                callback=lambda: index.delta_document_count)
        m.gauge("schemr_segment_deleted_docs",
                "Tombstoned documents awaiting a merge",
                callback=lambda: index.deleted_count)
        cache = self._searcher.query_cache
        if cache is not None:
            m.counter("schemr_query_cache_hits_total",
                      "Query-cache hits", callback=lambda: cache.hits)
            m.counter("schemr_query_cache_misses_total",
                      "Query-cache misses", callback=lambda: cache.misses)
            m.counter("schemr_query_cache_evictions_total",
                      "Query-cache LRU evictions",
                      callback=lambda: cache.evictions)
            m.counter("schemr_query_cache_stale_evictions_total",
                      "Query-cache stale-generation sweeps",
                      callback=lambda: cache.stale_evictions)
            m.gauge("schemr_query_cache_entries",
                    "Query-cache live entries",
                    callback=lambda: len(cache))
        for sid in range(index.shard_count):
            handle = self._pool.workers[sid]
            shard = index.shard(sid)
            m.gauge("schemr_shard_up",
                    "Whether the shard's worker is serving (1) or not (0)",
                    callback=lambda h=handle:
                        1.0 if h.state == STATE_READY else 0.0,
                    shard=str(sid))
            m.gauge("schemr_shard_documents",
                    "Documents owned by the shard",
                    callback=lambda s=shard: s.document_count,
                    shard=str(sid))
            m.counter("schemr_shard_restarts_total",
                      "Times the shard's worker process was respawned",
                      callback=lambda h=handle: h.restarts,
                      shard=str(sid))

    def _count_failure(self, shard_id: int, kind: str) -> None:
        self._telemetry.metrics.counter(
            "schemr_shard_failures_total",
            "Worker round-trips that failed, by kind",
            shard=str(shard_id), kind=kind).inc()

    # -- properties the server and tests use ---------------------------

    @property
    def config(self) -> SchemrConfig:
        return self._config

    @property
    def searcher(self) -> IndexSearcher:
        """The front's searcher over the union index (suggest, repair)."""
        return self._searcher

    @property
    def telemetry(self) -> Telemetry:
        return self._telemetry

    @property
    def index(self) -> ShardedSegmentIndex:
        return self._index

    @property
    def pool(self) -> WorkerPool:
        return self._pool

    @property
    def breakers(self) -> dict:
        """Engine-level breakers: none.

        The per-shard breakers intentionally do not surface here — the
        readiness probe treats any open engine breaker as not-ready,
        but a pool serving degraded from the survivors (with local
        repair keeping the bytes identical) *is* ready.  Per-shard
        health is exported via :meth:`shard_status` instead.
        """
        return {}

    @property
    def thread_profile(self) -> QueryProfile | None:
        """The calling thread's most recent search profile."""
        return getattr(self._thread_profile, "profile", None)

    @property
    def reopening(self) -> bool:  # lint: unlocked (GIL-atomic bool read for readiness reporting)
        """Whether a reopen broadcast is mid-flight (readiness input)."""
        return self._reopening

    def shard_status(self) -> list[dict]:
        """Per-shard health for ``/readyz`` and operators."""
        out = []
        for sid in range(self._index.shard_count):
            handle = self._pool.workers[sid]
            out.append({
                "shard": sid,
                "state": handle.state,
                "pid": handle.pid,
                "restarts": handle.restarts,
                "documents": self._index.shard(sid).document_count,
                "breaker": self._pool.breakers[sid].state,
            })
        return out

    def ready(self, handshake_timeout: float = 0.25) -> bool:
        """Whether the pool is past startup/reopen transitions.

        Opening workers are given a bounded chance to finish their
        handshake (they open in milliseconds).  Dead workers do *not*
        make the engine unready — the front serves their documents via
        local repair until the respawn lands — so this is "no shard is
        mid-transition", not "every shard is healthy".
        """
        if self._reopening:  # lint: unlocked (advisory readiness snapshot)
            return False
        for handle in self._pool.workers:
            if handle.state == "opening":
                if not handle.ensure_ready(handshake_timeout):
                    return False
        return True

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Shut down the worker pool, repair engine, and owned telemetry.

        Idempotent.  Workers that do not exit on request are terminated
        and counted as hung (``schemr_shard_hung_workers_total``) —
        the process-pool mirror of the server's hung-serve-thread
        accounting.  No orphans survive: worker processes are daemonic
        *and* explicitly joined here.
        """
        if self._closed:
            return
        self._closed = True
        outcomes = self._pool.shutdown(self._config.shard_timeout_seconds)
        for outcome in outcomes:
            if outcome != "clean":
                self._m_hung.inc()
                logger.warning("shard worker shutdown outcome: %s", outcome)
        with self._fallback_lock:
            fallback = self._fallback_engine
            self._fallback_engine = None
        if fallback is not None:
            fallback.close()
        if self._owns_telemetry:
            self._telemetry.close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- public API -----------------------------------------------------

    def search(self, keywords: str | list[str] | None = None,
               fragment: "str | Schema | list[str | Schema] | None" = None,
               top_n: int = 10, offset: int = 0) -> list[SearchResult]:
        """Search with raw user input; same contract as the single engine."""
        trace = PipelineTrace()
        deadline = Deadline(self._config.search_budget_seconds,
                            clock=self._clock)
        tracer = self._telemetry.tracer
        with tracer.span("search"):
            with timed_phase(trace, PHASE_PARSE) as phase, \
                    tracer.span(PHASE_PARSE):
                query = parse_query(keywords=keywords, fragment=fragment)
                phase.items_out = len(query)
            results = self._run(query, top_n, trace, offset, deadline)
        self.last_trace = trace
        return results

    def search_graph(self, query: QueryGraph, top_n: int = 10,
                     offset: int = 0) -> list[SearchResult]:
        """Search with a pre-built query graph."""
        if query.is_empty():
            raise QueryError("query graph is empty")
        trace = PipelineTrace()
        deadline = Deadline(self._config.search_budget_seconds,
                            clock=self._clock)
        with self._telemetry.tracer.span("search"):
            results = self._run(query, top_n, trace, offset, deadline)
        self.last_trace = trace
        return results

    # -- epoch sync -----------------------------------------------------

    def _sync_epoch(self) -> None:
        """Make the workers' view catch up with the union index.

        The union generation moves only on mutation, so the common case
        is one O(1) integer compare.  On change: flush the union (seals
        every shard's delta durably, preserving the change-log cursor),
        broadcast ``reopen`` so each worker swaps in a fresh mmap of
        its shard, and only then adopt the new generation — a query
        never scatters against workers serving the previous epoch.
        """
        if self._index.generation == self._served_generation:  # lint: unlocked (double-checked fast path; re-read under _epoch_lock below)
            return
        with self._epoch_lock:
            generation = self._index.generation
            if generation == self._served_generation:
                return
            self._reopening = True
            try:
                self._index.flush(
                    last_change_id=self._index.last_change_id)
                self._broadcast_reopen()
                self._served_generation = generation
            finally:
                self._reopening = False

    def _broadcast_reopen(self) -> None:  # lint: unlocked (caller holds self._epoch_lock)
        timeout = self._config.shard_timeout_seconds
        pending: list[tuple[int, int]] = []
        for sid in range(self._index.shard_count):
            handle = self._pool.workers[sid]
            # Opening workers must handshake first so the reopen is not
            # racing their initial manifest read.
            if handle.state == "opening" and not handle.ensure_ready(timeout):
                continue
            if handle.state != STATE_READY:
                continue  # dead/stopped: a respawn opens fresh anyway
            qid = self._qid()
            try:
                handle.send(TAG_REOPEN, qid, None)
            except ShardDied:
                self._count_failure(sid, "send")
                handle.respawn()
                continue
            pending.append((sid, qid))
        for sid, qid in pending:
            handle = self._pool.workers[sid]
            try:
                handle.collect(TAG_REOPEN, qid, timeout)
            except ShardDied:
                self._count_failure(sid, "died")
                handle.respawn()
            except (ShardTimeout, ShardError):
                # A worker that cannot reopen would keep serving the
                # stale epoch; replace it rather than risk torn reads.
                self._count_failure(sid, "timeout")
                self._m_hung.inc()
                handle.respawn()

    # -- scatter plumbing ------------------------------------------------

    def _qid(self) -> int:
        with self._qid_lock:
            qid = self._next_qid
            self._next_qid += 1
            return qid

    def _wait_budget(self, deadline: Deadline) -> float:
        timeout = self._config.shard_timeout_seconds
        if deadline.limited:
            timeout = min(timeout, max(deadline.remaining(), 0.001))
        return timeout

    def _handle_failure(self, shard_id: int, kind: str,
                        state: _QueryState) -> None:
        """Book a worker failure: breaker, metrics, respawn policy."""
        state.failed.add(shard_id)
        breaker = self._pool.breakers[shard_id]
        breaker.record_failure()
        self._count_failure(shard_id, kind)
        handle = self._pool.workers[shard_id]
        if kind in ("died", "send"):
            handle.respawn()
        elif kind == "timeout" and breaker.state == STATE_OPEN:
            # Enough consecutive stalls to trip the breaker: the worker
            # is wedged, not slow.  Same policy as the server's hung
            # serve-thread check, applied to a process.
            self._m_hung.inc()
            logger.warning("shard %d worker unresponsive; respawning",
                           shard_id)
            handle.respawn()

    def _handle_unusable(self, shard_id: int, state: _QueryState) -> None:
        """A shard excluded at the scatter gate.

        A worker found *dead* here (it died before ever answering —
        e.g. killed while still opening) still gets the died-respawn
        policy; a merely not-ready or breaker-excluded shard is only
        counted, its worker left alone.
        """
        if self._pool.workers[shard_id].state == STATE_DEAD:
            self._handle_failure(shard_id, "died", state)
            return
        state.failed.add(shard_id)
        self._count_failure(shard_id, "unavailable")

    def _ensure_fuzzy_current(self) -> None:
        fuzzy = self._searcher.fuzzy
        if fuzzy is None:
            return
        generation = self._index.generation
        if generation != self._fuzzy_generation:
            fuzzy.update_from(self._index.vocabulary())
            self._fuzzy_generation = generation

    def _fallback(self) -> SchemrEngine:
        """The local-repair engine over the union index, built lazily.

        Shares the repository's profile store and the worker config, so
        anything it scores produces exactly the floats a worker would
        have — repair changes latency, never bytes.
        """
        with self._fallback_lock:
            if self._fallback_engine is None:
                self._fallback_engine = SchemrEngine(
                    index=self._index,
                    source=self._repository.profile_store(),
                    config=self._worker_config, clock=self._clock)
            return self._fallback_engine

    # -- phase 1: scatter, merge, cache ---------------------------------

    def _phase1(self, flattened: list[str], deadline: Deadline,
                state: _QueryState) -> list[IndexHit]:
        self._sync_epoch()
        self._ensure_fuzzy_current()
        searcher = self._searcher
        prepared = searcher.prepare(flattened)
        pool_n = self._config.candidate_pool
        cache = searcher.query_cache
        generation = self._index.generation
        key = (prepared, pool_n, generation)
        if cache is not None:
            hits = cache.get(key)
            if hits is not None:
                state.strategy = searcher.strategy
                state.cache_hit = True
                return hits
        responses = self._scatter_phase1(prepared, pool_n, deadline, state)
        if len(responses) < self._index.shard_count:
            # One or more shards missing: repair locally against the
            # union — the exact global ranking, straight from the same
            # searcher that prepared the query (this also caches it).
            self._m_degraded_merges.inc()
            hits = searcher.search_prepared(prepared, top_n=pool_n)
            stats = searcher.last_stats
            if stats is not None:
                state.strategy = stats.strategy
                state.cache_hit = stats.cache_hit
                state.pruned_early = stats.pruned_early
                state.docs_scored = stats.docs_scored
            return hits
        all_hits: list[IndexHit] = []
        strategies: set[str] = set()
        for sid in sorted(responses):
            payload = responses[sid]
            all_hits.extend(payload["hits"])
            if payload["strategy"]:
                strategies.add(payload["strategy"])
            state.docs_scored += payload["docs_scored"]
            state.pruned_early = state.pruned_early or payload["pruned_early"]
        merged = heapq.nlargest(pool_n, all_hits, key=_merge_key)
        state.strategy = "+".join(sorted(strategies)) or searcher.strategy
        if cache is not None:
            # Only a full-fidelity merge may populate the cache; this
            # branch is unreachable otherwise (degraded pools repair
            # locally above), but keep the invariant explicit.
            cache.put(key, merged)
        return merged

    def _scatter_phase1(self, prepared, pool_n: int, deadline: Deadline,
                        state: _QueryState) -> dict[int, dict]:
        ready_timeout = self._config.shard_timeout_seconds
        sent: list[tuple[int, int]] = []
        for sid in range(self._index.shard_count):
            if not self._pool.usable(sid, ready_timeout):
                self._handle_unusable(sid, state)
                continue
            qid = self._qid()
            try:
                self._pool.workers[sid].send(
                    TAG_PHASE1, qid,
                    {"prepared": prepared, "top_n": pool_n})
            except ShardDied:
                self._handle_failure(sid, "send", state)
                continue
            sent.append((sid, qid))
        responses: dict[int, dict] = {}
        for sid, qid in sent:
            handle = self._pool.workers[sid]
            started = self._clock()
            try:
                payload = handle.collect(TAG_PHASE1, qid,
                                         self._wait_budget(deadline))
            except ShardTimeout:
                self._handle_failure(sid, "timeout", state)
            except ShardDied:
                self._handle_failure(sid, "died", state)
            except ShardError:
                self._handle_failure(sid, "error", state)
            else:
                self._pool.breakers[sid].record_success()
                self._m_shard_requests[sid].inc()
                self._m_shard_wait["phase1"].observe(
                    self._clock() - started)
                responses[sid] = payload
        return responses

    # -- phase 2: bucket, scatter, repair -------------------------------

    def _phase2(self, query: QueryGraph, pool: list[IndexHit],
                deadline: Deadline, cheap_only: bool,
                state: _QueryState) -> list[SearchResult]:
        """Phases 2+3 work across the workers; unsorted concatenation.

        Raises exactly what the single engine's inner pipeline would:
        :class:`DeadlineExceeded` when any shard's budget died mid-pool
        and :class:`CircuitOpenError` when the schema source failed for
        every candidate everywhere.
        """
        shard_count = self._index.shard_count
        buckets: dict[int, list[IndexHit]] = {}
        for hit in pool:
            buckets.setdefault(shard_of(hit.doc_id, shard_count),
                               []).append(hit)
        budget = deadline.remaining() if deadline.limited else None
        ready_timeout = self._config.shard_timeout_seconds
        sent: list[tuple[int, int, list[IndexHit]]] = []
        repair: list[tuple[int, list[IndexHit]]] = []
        for sid in sorted(buckets):
            chunk = buckets[sid]
            if not self._pool.usable(sid, ready_timeout):
                self._handle_unusable(sid, state)
                repair.append((sid, chunk))
                continue
            qid = self._qid()
            try:
                self._pool.workers[sid].send(
                    TAG_PHASE2, qid,
                    {"query": query, "hits": chunk, "budget": budget,
                     "cheap_only": cheap_only})
            except ShardDied:
                self._handle_failure(sid, "send", state)
                repair.append((sid, chunk))
                continue
            sent.append((sid, qid, chunk))
        results: list[SearchResult] = []
        source_outage = False
        for sid, qid, chunk in sent:
            handle = self._pool.workers[sid]
            started = self._clock()
            try:
                payload = handle.collect(TAG_PHASE2, qid,
                                         self._wait_budget(deadline))
            except ShardTimeout:
                self._handle_failure(sid, "timeout", state)
                repair.append((sid, chunk))
            except ShardDied:
                self._handle_failure(sid, "died", state)
                repair.append((sid, chunk))
            except ShardError:
                self._handle_failure(sid, "error", state)
                repair.append((sid, chunk))
            else:
                self._pool.breakers[sid].record_success()
                self._m_shard_requests[sid].inc()
                self._m_shard_wait["phase2"].observe(
                    self._clock() - started)
                if payload["deadline_expired"]:
                    raise DeadlineExceeded(
                        f"shard {sid} exhausted the search budget in "
                        "the phase-2 candidate loop")
                if payload["all_failed"]:
                    # The shard's schema fetches all failed (a store
                    # outage seen from that process).  Mirror the
                    # single engine: candidates are skipped, and only
                    # a globally empty match raises.
                    source_outage = True
                else:
                    results.extend(payload["results"])
        if repair:
            self._m_degraded_merges.inc()
            fallback = self._fallback()
            for sid, chunk in repair:
                try:
                    results.extend(fallback.match_and_score(
                        query, chunk, deadline, cheap_only=cheap_only))
                except CircuitOpenError:
                    source_outage = True
        if not results and pool and source_outage:
            raise CircuitOpenError(
                "schema source failed for every candidate",
                breaker="schema_source")
        return results

    # -- pipeline --------------------------------------------------------

    def _run(self, query: QueryGraph, top_n: int, trace: PipelineTrace,
             offset: int = 0,
             deadline: Deadline | None = None) -> list[SearchResult]:
        if top_n <= 0:
            raise QueryError(f"top_n must be positive, got {top_n}")
        if offset < 0:
            raise QueryError(f"offset must be >= 0, got {offset}")
        if deadline is None:
            deadline = Deadline(self._config.search_budget_seconds,
                                clock=self._clock)
        tracer = self._telemetry.tracer
        state = _QueryState()

        with timed_phase(trace, PHASE_CANDIDATES) as phase, \
                tracer.span(PHASE_CANDIDATES):
            flattened = query.flatten()
            phase.items_in = len(flattened)
            FAULTS.hit("engine.phase1")
            hits = self._phase1(flattened, deadline, state)
            phase.items_out = len(hits)

        level = self._ladder.level_for(deadline)
        deadline_expired = deadline.expired()
        if level >= DEGRADE_PHASE1_ONLY:
            page = self._phase1_page(hits, top_n, offset)
            self._finish_search(flattened, trace, hits, len(hits), page,
                                top_n, offset, state, level=level,
                                deadline=deadline,
                                deadline_expired=deadline_expired)
            return page

        pool = hits
        if level >= DEGRADE_REDUCED_POOL:
            keep = max(top_n + offset, self._config.candidate_pool // 4)
            pool = hits[:keep]
        cheap_only = level >= DEGRADE_NAME_ONLY

        try:
            with timed_phase(trace, PHASE_MATCHING) as phase, \
                    tracer.span(PHASE_MATCHING):
                phase.items_in = len(pool)
                scored = self._phase2(query, pool, deadline, cheap_only,
                                      state)
                phase.items_out = len(scored)
            with timed_phase(trace, PHASE_TIGHTNESS) as phase, \
                    tracer.span(PHASE_TIGHTNESS):
                phase.items_in = len(scored)
                # Restore pool order (what a single engine's matcher
                # emits), then apply its stable final sort — the merged
                # page is byte-identical to single-process serving.
                position = {hit.doc_id: i for i, hit in enumerate(pool)}
                scored.sort(key=lambda r: position[r.schema_id])
                scored.sort(
                    key=lambda r: (-r.score, -r.coarse_score, r.name))
                page = scored[offset:offset + top_n]
                phase.items_out = len(page)
        except DeadlineExceeded as exc:
            logger.warning("sharded search degraded to phase-1 "
                           "ranking: %s", exc)
            page = self._phase1_page(hits, top_n, offset)
            self._finish_search(flattened, trace, hits, len(hits), page,
                                top_n, offset, state,
                                level=DEGRADE_PHASE1_ONLY,
                                deadline=deadline, deadline_expired=True)
            return page
        except CircuitOpenError as exc:
            logger.warning("sharded search degraded to phase-1 ranking "
                           "(breaker %s open)", exc.breaker)
            page = self._phase1_page(hits, top_n, offset)
            self._finish_search(flattened, trace, hits, len(hits), page,
                                top_n, offset, state,
                                level=DEGRADE_PHASE1_ONLY,
                                deadline=deadline,
                                deadline_expired=deadline.expired())
            return page
        self._finish_search(flattened, trace, hits, len(scored), page,
                            top_n, offset, state, level=level,
                            deadline=deadline,
                            deadline_expired=deadline.expired())
        return page

    def _phase1_page(self, hits: list[IndexHit], top_n: int,
                     offset: int) -> list[SearchResult]:
        """The ``phase1_only`` fallback page (same bytes as the engine's)."""
        return [
            SearchResult(
                schema_id=hit.doc_id,
                name=hit.title,
                score=hit.score,
                match_count=hit.matched_terms,
                entity_count=0,
                attribute_count=0,
                coarse_score=hit.score,
            )
            for hit in hits[offset:offset + top_n]
        ]

    def _finish_search(self, flattened: list[str], trace: PipelineTrace,
                       hits: list[IndexHit], matched_count: int,
                       results: list[SearchResult], top_n: int,
                       offset: int, state: _QueryState, level: int = 0,
                       deadline: Deadline | None = None,
                       deadline_expired: bool = False) -> None:
        """Build the profile (with the shard stamp) and feed telemetry."""
        empty_reason = None
        if not results:
            if not hits:
                empty_reason = EMPTY_NO_INDEX_HITS
            elif matched_count == 0:
                empty_reason = EMPTY_ALL_FILTERED
            else:
                empty_reason = EMPTY_OFFSET_BEYOND
        shards_total = self._index.shard_count
        profile = QueryProfile(
            query_terms=tuple(flattened),
            started_at=self._telemetry.wall_clock() - trace.total_seconds,
            total_seconds=trace.total_seconds,
            phase_seconds={phase.name: phase.seconds
                           for phase in trace.phases},
            candidate_count=len(hits),
            matched_count=matched_count,
            result_count=len(results),
            top_n=top_n,
            offset=offset,
            strategy=state.strategy,
            cache_hit=state.cache_hit,
            pruned_early=state.pruned_early,
            docs_scored=state.docs_scored,
            empty_reason=empty_reason,
            degradation_level=level,
            degradation=degradation_name(level),
            deadline_expired=deadline_expired,
            budget_seconds=(deadline.budget_seconds
                            if deadline is not None else None),
            shards_total=shards_total,
            shards_used=shards_total - len(state.failed),
        )
        self.last_profile = profile
        self._thread_profile.profile = profile
        telemetry = self._telemetry
        if not telemetry.enabled:
            return
        self._m_searches.inc()
        if level > 0:
            counter = self._m_degraded.get(level)
            if counter is not None:
                counter.inc()
        if deadline_expired:
            self._m_deadline_expired.inc()
        self._m_search_seconds.observe(profile.total_seconds)
        for name, seconds in profile.phase_seconds.items():
            hist = self._m_phase.get(name)
            if hist is not None:
                hist.observe(seconds)
        self._m_candidates.observe(profile.candidate_count)
        self._m_results.inc(profile.result_count)
        self._m_docs_scored.inc(profile.docs_scored)
        if profile.pruned_early:
            self._m_pruned_early.inc()
        telemetry.metrics.counter(
            "schemr_phase1_queries_total", "Phase-1 retrievals by path",
            strategy=profile.strategy or "unknown",
            cache="hit" if profile.cache_hit else "miss").inc()
        if profile.empty_reason is not None:
            telemetry.metrics.counter(
                "schemr_empty_results_total",
                "Empty result pages by reason",
                reason=profile.empty_reason).inc()
        if telemetry.profiles.record(profile):
            self._m_slow.inc()
            logger.warning(
                "slow query (%.1f ms >= %.1f ms): terms=%s candidates=%d "
                "results=%d", profile.total_seconds * 1000.0,
                telemetry.profiles.slow_threshold_seconds * 1000.0,
                " ".join(profile.query_terms), profile.candidate_count,
                profile.result_count)
        if telemetry.history is not None:
            telemetry.history.record(profile.query_terms, results,
                                     total_seconds=profile.total_seconds)
