"""The shard worker process: one engine over one shard, driven by a pipe.

Each worker is a real :class:`~repro.core.engine.SchemrEngine` wrapped
in a small request loop:

* it opens **its own** connection to the repository database (sqlite in
  WAL mode is multi-process safe) and its own
  :class:`~repro.matching.profile.ProfileStore`;
* it mmaps its shard's segment directory — O(ms), zero-copy, nothing
  pickled;
* it answers ``phase1`` requests with
  :meth:`~repro.index.searcher.IndexSearcher.search_prepared` (the
  front pins the global idf statistics, so per-shard scores are exactly
  the global scores restricted to the shard's documents) and ``phase2``
  requests with :meth:`~repro.core.engine.SchemrEngine.match_and_score`
  (the same candidate-matching code path as single-process serving,
  breakers and deadline checks included).

The protocol is qid-tagged tuples ``(kind, qid, payload)`` in both
directions over a ``multiprocessing`` pipe; the front demultiplexes
responses so concurrent serving threads can share one worker.  Worker
telemetry is disabled — the front owns all metrics.
"""

from __future__ import annotations

import logging
import os
import signal
from dataclasses import dataclass

from repro.core.config import SchemrConfig
from repro.core.engine import SchemrEngine
from repro.errors import CircuitOpenError, DeadlineExceeded
from repro.index.segments import SegmentedIndex
from repro.resilience.deadline import Deadline
from repro.sharding.protocol import (
    TAG_BYE,
    TAG_ERROR,
    TAG_PHASE1,
    TAG_PHASE2,
    TAG_PING,
    TAG_READY,
    TAG_REOPEN,
    TAG_SHUTDOWN,
)

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs to build its engine.

    Picklable (plain module-level dataclass) so both ``fork`` and
    ``spawn`` start methods work.  ``config`` is the front's config
    already stripped for worker use: telemetry/history off, fuzzy off
    (expansion happened in :meth:`prepare` on the front), one shard.
    """

    shard_id: int
    shard_count: int
    db_path: str
    shard_dir: str
    config: SchemrConfig


def _build_engine(spec: WorkerSpec, repository) -> SchemrEngine:
    index = SegmentedIndex.open(spec.shard_dir)
    return SchemrEngine(index=index, source=repository.profile_store(),
                        config=spec.config)


def _handle_phase1(engine: SchemrEngine, payload: dict) -> dict:
    hits = engine.searcher.search_prepared(payload["prepared"],
                                           top_n=payload["top_n"])
    stats = engine.searcher.last_stats
    return {
        "hits": hits,
        "strategy": stats.strategy if stats is not None else "",
        "docs_scored": stats.docs_scored if stats is not None else 0,
        "pruned_early": (stats.pruned_early if stats is not None
                         else False),
    }


def _handle_phase2(engine: SchemrEngine, payload: dict) -> dict:
    budget = payload["budget"]
    if budget is not None and budget <= 0:
        return {"results": [], "deadline_expired": True,
                "all_failed": False}
    deadline = Deadline(budget)
    try:
        results = engine.match_and_score(
            payload["query"], payload["hits"], deadline,
            cheap_only=payload["cheap_only"])
    except DeadlineExceeded:
        return {"results": [], "deadline_expired": True,
                "all_failed": False}
    except CircuitOpenError:
        return {"results": [], "deadline_expired": False,
                "all_failed": True}
    return {"results": results, "deadline_expired": False,
            "all_failed": False}


def worker_main(spec: WorkerSpec, conn) -> None:
    """The worker process entry point: build the engine, serve the pipe.

    Exits when the pipe closes (front died) or on an explicit
    ``shutdown`` message.  Per-request exceptions become ``error``
    responses; they never kill the worker.
    """
    # The front orchestrates shutdown; a terminal Ctrl-C must not kill
    # workers out from under an in-flight scatter.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # Imported here, not at module top: the parent imports this module
    # too, and the worker-side repository connection must be opened in
    # the child (a forked sqlite connection is not ours to share).
    from repro.repository.store import SchemaRepository
    repository = None
    try:
        repository = SchemaRepository(spec.db_path)
        engine = _build_engine(spec, repository)
        conn.send((TAG_READY, 0, {
            "pid": os.getpid(),
            "documents": engine.searcher.index.document_count,
        }))
        while True:
            try:
                kind, qid, payload = conn.recv()
            except (EOFError, OSError):
                break
            if kind == TAG_SHUTDOWN:
                conn.send((TAG_BYE, qid, None))
                break
            try:
                if kind == TAG_PHASE1:
                    out = _handle_phase1(engine, payload)
                elif kind == TAG_PHASE2:
                    out = _handle_phase2(engine, payload)
                elif kind == TAG_REOPEN:
                    # The front flushed new segments; swap in a fresh
                    # view of the shard directory (O(segment count)).
                    engine.close()
                    engine = _build_engine(spec, repository)
                    out = {
                        "documents":
                            engine.searcher.index.document_count,
                    }
                elif kind == TAG_PING:
                    out = {
                        "pid": os.getpid(),
                        "documents":
                            engine.searcher.index.document_count,
                    }
                else:
                    raise ValueError(f"unknown request kind {kind!r}")
            except Exception as exc:
                logger.warning("shard %d worker request %r failed: %s",
                               spec.shard_id, kind, exc)
                try:
                    conn.send((TAG_ERROR, qid,
                               f"{type(exc).__name__}: {exc}"))
                except (OSError, ValueError):
                    break
            else:
                try:
                    conn.send((kind, qid, out))
                except (OSError, ValueError):
                    break
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover - teardown race
            pass
        if repository is not None:
            repository.close()
