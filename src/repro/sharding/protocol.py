"""The pipe protocol's message tags, declared once.

Every message crossing a worker pipe is a qid-tagged tuple
``(tag, qid, payload)``; the tag strings used to be scattered literals
in :mod:`repro.sharding.pool`, :mod:`repro.sharding.worker`, and
:mod:`repro.sharding.engine`, which is exactly the stringly-typed drift
the ``site-catalog`` lint rule exists to prevent — a typo'd tag is a
request that times out instead of a NameError.  This module is the
single source of truth: code references the ``TAG_*`` constants, and
the lint rule reconciles both directions (no undeclared literals in
send/dispatch positions, no orphaned tags).

Request tags flow front -> worker; response tags flow back.  A worker
echoes the request tag on success, so the request tags double as
response tags; ``TAG_READY``/``TAG_BYE``/``TAG_ERROR`` only ever flow
worker -> front.
"""

from __future__ import annotations

# -- requests (front -> worker; echoed back on success) ----------------
TAG_PHASE1 = "phase1"
TAG_PHASE2 = "phase2"
TAG_REOPEN = "reopen"
TAG_PING = "ping"
TAG_SHUTDOWN = "shutdown"

# -- worker-originated responses ---------------------------------------
TAG_READY = "ready"
TAG_BYE = "bye"
TAG_ERROR = "error"

#: tag -> one-line description; the declared catalog the lint rule and
#: the DESIGN.md protocol table reconcile against.
TAGS: dict[str, str] = {
    TAG_PHASE1: "scatter one prepared phase-1 retrieval to the shard",
    TAG_PHASE2: "score one bucket of phase-2 candidates on the shard",
    TAG_REOPEN: "swap in a fresh mmap of the shard directory",
    TAG_PING: "liveness probe; answers pid and document count",
    TAG_SHUTDOWN: "request a clean worker exit",
    TAG_READY: "startup handshake: the worker engine is serving",
    TAG_BYE: "acknowledgement of a shutdown request",
    TAG_ERROR: "per-request failure (the worker itself is healthy)",
}

#: Tags a front may send to a worker.
REQUEST_TAGS = frozenset(
    (TAG_PHASE1, TAG_PHASE2, TAG_REOPEN, TAG_PING, TAG_SHUTDOWN))
#: Tags a worker may send to the front.
RESPONSE_TAGS = frozenset(
    (TAG_PHASE1, TAG_PHASE2, TAG_REOPEN, TAG_PING, TAG_BYE,
     TAG_READY, TAG_ERROR))
