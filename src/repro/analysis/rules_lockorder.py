"""Rule ``lock-order``: the global lock-acquisition order is acyclic.

Every acquisition context the call-graph pass extracted contributes
directed edges ``A -> B``: lock ``A`` was held while ``B`` was taken —
lexically (``with self._a: with self._b:``), via an explicit
``.acquire()``, or interprocedurally (``with self._a:`` around a call
whose closure acquires ``B``, possibly on another object entirely:
the scatter path holds a ``WorkerHandle`` condition while a
``CircuitBreaker`` method takes its own lock).

Two threads taking the same two locks in opposite orders can deadlock;
statically, that is a cycle in the edge graph.  Each strongly-connected
component yields one finding whose message carries the witness path
for every edge of a shortest cycle — enough to see both call chains
without re-running the analysis.

Reentrancy is respected: re-acquiring a held ``RLock``/``Condition``
is legal and ignored; re-acquiring a held plain ``Lock`` is a
guaranteed self-deadlock and reported directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.analysis.callgraph import GraphContext, LockKey
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register


@dataclass(slots=True)
class _Edge:
    """First witness for one ``src -> dst`` ordering observation."""

    src: LockKey
    dst: LockKey
    witness: str
    path: str
    line: int


def _strongly_connected(nodes: list[LockKey],
                        adjacency: dict[LockKey, list[LockKey]]
                        ) -> list[list[LockKey]]:
    """Tarjan's SCC, iterative (lint corpora can nest arbitrarily)."""
    index: dict[LockKey, int] = {}
    lowlink: dict[LockKey, int] = {}
    on_stack: set[LockKey] = set()
    stack: list[LockKey] = []
    components: list[list[LockKey]] = []
    counter = 0
    for root in nodes:
        if root in index:
            continue
        work = [(root, iter(adjacency.get(root, ())))]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(adjacency.get(succ, ()))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def _shortest_cycle(start: LockKey, members: set[LockKey],
                    adjacency: dict[LockKey, list[LockKey]]
                    ) -> list[LockKey]:
    """BFS a shortest ``start -> ... -> start`` path inside one SCC."""
    queue: list[tuple[LockKey, list[LockKey]]] = [(start, [start])]
    seen: set[LockKey] = set()
    while queue:
        node, trail = queue.pop(0)
        for succ in adjacency.get(node, ()):
            if succ not in members:
                continue
            if succ == start:
                return trail + [start]
            if succ not in seen:
                seen.add(succ)
                queue.append((succ, trail + [succ]))
    return [start, start]  # pragma: no cover - SCC guarantees a cycle


@register
class LockOrderRule(Rule):
    id = "lock-order"
    pragma = "lock-order"
    description = ("the global lock-acquisition-order graph is acyclic; "
                   "a cycle is a potential deadlock, reported with the "
                   "witnessing paths")

    def check_graph(self, graph: GraphContext) -> Iterable[Finding]:
        findings: list[Finding] = []
        edges: dict[tuple[LockKey, LockKey], _Edge] = {}

        def add_edge(src: LockKey, dst: LockKey, witness: str,
                     path: str, line: int) -> None:
            key = (src, dst)
            if key not in edges:
                edges[key] = _Edge(src, dst, witness, path, line)

        for qualname in sorted(graph.summaries):
            summary = graph.summaries[qualname]
            source = graph.source_for(summary.module)
            if source is None or not summary.module.startswith("repro"):
                continue
            for event in summary.events:
                if self.suppressed(source, event.line):
                    continue
                if event.kind == "acquire" and event.lock is not None:
                    if event.reentrant and event.lock.kind == "lock":
                        findings.append(self.finding(
                            source, event.line,
                            f"non-reentrant lock {event.lock.label} "
                            f"re-acquired while already held in "
                            f"{qualname}; threading.Lock self-deadlocks "
                            f"here"))
                        continue
                    for held in event.held:
                        if held.lock == event.lock:
                            continue
                        add_edge(
                            held.lock, event.lock,
                            f"{qualname}:{event.line} acquires "
                            f"{event.lock.label} while holding "
                            f"{held.lock.label} (since line {held.line})",
                            source.path, event.line)
                elif (event.kind == "call" and event.held
                        and event.target in graph.closure):
                    reached = graph.closure[event.target]
                    for lock in sorted(reached):
                        chain = " ; ".join(reached[lock])
                        for held in event.held:
                            if held.lock == lock:
                                if lock.kind == "lock":
                                    findings.append(self.finding(
                                        source, event.line,
                                        f"{qualname}:{event.line} holds "
                                        f"{lock.label} and calls "
                                        f"{event.target}, which "
                                        f"re-acquires non-reentrant "
                                        f"{lock.label} [{chain}]; "
                                        f"threading.Lock self-deadlocks "
                                        f"here"))
                                continue
                            add_edge(
                                held.lock, lock,
                                f"{qualname}:{event.line} holds "
                                f"{held.lock.label} and calls "
                                f"{event.target} [{chain}]",
                                source.path, event.line)

        adjacency: dict[LockKey, list[LockKey]] = {}
        for src, dst in sorted(edges):
            adjacency.setdefault(src, []).append(dst)
        nodes = sorted(adjacency)

        for component in _strongly_connected(nodes, adjacency):
            if len(component) < 2:
                continue
            members = set(component)
            start = min(component)
            cycle = _shortest_cycle(start, members, adjacency)
            labels = " -> ".join(lock.label for lock in cycle)
            parts = [f"potential deadlock: lock-order cycle {labels}"]
            anchor: _Edge | None = None
            for src, dst in zip(cycle, cycle[1:]):
                edge = edges[(src, dst)]
                if anchor is None:
                    anchor = edge
                parts.append(
                    f"{src.label} -> {dst.label}: {edge.witness}")
            assert anchor is not None
            findings.append(Finding(
                rule=self.id, path=anchor.path, line=anchor.line,
                message="; ".join(parts), severity=self.severity))
        return findings
