"""Aggregated runtime view of the declared site and tag catalogs.

The ``site-catalog`` lint rule reconciles the *source text* of the
catalogs against usage; this module is the runtime mirror — it imports
the live catalogs (:mod:`repro.resilience.faults` sites and
:mod:`repro.sharding.protocol` tags) into one frozen value so tests,
the sanitizer smoke job, and tooling can assert catalog invariants
without re-parsing the AST.

``validate()`` re-checks the invariants the static rule enforces that
are also expressible at runtime (crash sites declared, no tag value
collisions), so a smoke run catches drift even when the linter was
skipped.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SiteCatalog:
    """Every declared fault site, site family, crash site, and tag.

    ``sites``/``families`` map name/prefix to the catalog's help text;
    ``tags`` maps the wire tag value (``"phase1"``) to its description.
    """

    sites: dict[str, str] = field(default_factory=dict)
    families: dict[str, str] = field(default_factory=dict)
    crash_sites: frozenset[str] = frozenset()
    tags: dict[str, str] = field(default_factory=dict)
    request_tags: frozenset[str] = frozenset()
    response_tags: frozenset[str] = frozenset()

    def is_known_site(self, site: str) -> bool:
        """Whether ``site`` is catalogued, directly or via a family."""
        if site in self.sites:
            return True
        return any(site.startswith(prefix) for prefix in self.families)


def load_catalog() -> SiteCatalog:
    """The live catalogs, aggregated.  Import is deferred so merely
    importing :mod:`repro.analysis` never pulls the serving stack in."""
    from repro.resilience.faults import (CRASH_SITES, KNOWN_SITES,
                                         SITE_FAMILIES)
    from repro.sharding.protocol import (REQUEST_TAGS, RESPONSE_TAGS,
                                         TAGS)
    return SiteCatalog(
        sites=dict(KNOWN_SITES),
        families=dict(SITE_FAMILIES),
        crash_sites=frozenset(CRASH_SITES),
        tags=dict(TAGS),
        request_tags=frozenset(REQUEST_TAGS),
        response_tags=frozenset(RESPONSE_TAGS),
    )


def validate(catalog: SiteCatalog | None = None) -> list[str]:
    """Runtime catalog invariants; returns problems (empty == healthy)."""
    cat = catalog if catalog is not None else load_catalog()
    problems: list[str] = []
    if not cat.sites:
        problems.append("KNOWN_SITES is empty")
    if not cat.tags:
        problems.append("the TAGS registry is empty")
    for site in sorted(cat.crash_sites - set(cat.sites)):
        problems.append(
            f"CRASH_SITES entry {site!r} is not in KNOWN_SITES")
    for tag in sorted((cat.request_tags | cat.response_tags)
                      - set(cat.tags)):
        problems.append(
            f"tag {tag!r} in REQUEST_TAGS/RESPONSE_TAGS is not in "
            f"the TAGS registry")
    for tag in sorted(set(cat.tags) - (cat.request_tags
                                       | cat.response_tags)):
        problems.append(
            f"tag {tag!r} is registered but flows in no direction "
            f"(not in REQUEST_TAGS or RESPONSE_TAGS)")
    return problems
