"""Rule ``exception-safety``: no silent swallowing of broad excepts.

Two shapes are flagged:

* a bare ``except:`` anywhere — it catches ``KeyboardInterrupt`` and
  ``SystemExit`` and hides typos as dead code;
* an ``except Exception:`` / ``except BaseException:`` handler that
  *swallows*: its body neither re-raises nor makes any "loud" call
  (logging, ``pytest.fail``-style test aborts).  Narrow handlers
  (``except ValueError:``) are the author's explicit claim and pass.

A genuine fault boundary — chaos-test collectors, last-ditch handlers
whose loudness lives elsewhere — is annotated
``# lint: fault-boundary (reason)`` on the ``except`` line.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.source import SourceFile

_BROAD = frozenset(("Exception", "BaseException"))

#: Call-name segments whose presence makes a handler "loud".
_LOUD_ROOTS = frozenset(("logger", "logging", "log", "access_logger",
                         "warnings"))
_LOUD_METHODS = frozenset(("debug", "info", "warning", "warn", "error",
                           "exception", "critical", "fail"))


def _dotted_parts(node: ast.expr) -> list[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return list(reversed(parts))


def _is_broad(type_node: ast.expr | None) -> bool:
    if type_node is None:
        return False  # bare except handled separately
    nodes = (type_node.elts if isinstance(type_node, ast.Tuple)
             else [type_node])
    for node in nodes:
        parts = _dotted_parts(node)
        if parts and parts[-1] in _BROAD:
            return True
    return False


def _swallows(handler: ast.ExceptHandler) -> bool:
    """True when nothing in the body re-raises or reports loudly."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return False
        if isinstance(node, ast.Call):
            parts = _dotted_parts(node.func)
            if not parts:
                continue
            if parts[0] in _LOUD_ROOTS or parts[-1] in _LOUD_METHODS:
                return False
    return True


@register
class ExceptionSafetyRule(Rule):
    id = "exception-safety"
    pragma = "fault-boundary"
    description = ("no bare except; except Exception must log, "
                   "re-raise, or be an annotated fault boundary")

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(self.finding(
                    source, node.lineno,
                    "bare except: catches SystemExit/KeyboardInterrupt; "
                    "name the exceptions or use except Exception with "
                    "logging"))
                continue
            if _is_broad(node.type) and _swallows(node):
                findings.append(self.finding(
                    source, node.lineno,
                    "except Exception swallows silently: log it, "
                    "re-raise, or annotate the line with "
                    "`# lint: fault-boundary (reason)`"))
        return findings
