"""Lint runner and command-line entry point.

Collects ``*.py`` files from the given paths (default: ``src`` and
``tests`` when they exist), parses each once, runs every registered
rule, applies inline pragmas and the optional baseline, and renders a
report.  Exit code 0 means clean, 1 means findings, 2 means the run
itself failed (bad baseline, unknown path).

Also exposes ``--self-check``: asserts the rule registry and the
DESIGN.md rule catalog agree, so the documentation cannot drift from
the implementation.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.baseline import (
    BaselineError,
    load_baseline,
    split_baselined,
    write_baseline,
)
from repro.analysis.callgraph import build_graph
from repro.analysis.findings import SEVERITY_ERROR, Finding
from repro.analysis.registry import all_rules
from repro.analysis.report import LintResult, render
from repro.analysis.source import SourceFile

SYNTAX_RULE = "syntax-error"

#: Checks documented in the DESIGN.md catalog that are not static
#: rules: they run as opt-in test instrumentation, not in the lint
#: pass.  The self-check requires them in the table but not in the
#: registry.
RUNTIME_CHECKS = frozenset(("lock-order-sanitizer",))

_CATALOG_ROW = re.compile(r"^\|\s*`([a-z0-9-]+)`")


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Every ``*.py`` under ``paths`` (files accepted directly)."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(f"lint path {path} does not exist")
    # De-duplicate while preserving order (overlapping path args).
    seen: set[Path] = set()
    unique: list[Path] = []
    for file_path in files:
        resolved = file_path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(file_path)
    return unique


def run_lint(paths: Sequence[str | Path],
             rules: Sequence[str] | None = None) -> LintResult:
    """Parse, run every rule, and apply pragma suppressions.

    ``rules`` restricts the run to the named rule ids (the whole
    corpus is still parsed — graph rules need it); unknown ids raise
    ``ValueError``.
    """
    result = LintResult()
    sources: list[SourceFile] = []
    for file_path in collect_files(paths):
        try:
            sources.append(SourceFile.parse(file_path))
        except SyntaxError as exc:
            result.findings.append(Finding(
                rule=SYNTAX_RULE, path=str(file_path),
                line=exc.lineno or 1,
                message=f"file does not parse: {exc.msg}",
                severity=SEVERITY_ERROR))
    result.files_scanned = len(sources) + sum(
        1 for f in result.findings if f.rule == SYNTAX_RULE)

    selected = all_rules()
    if rules is not None:
        known = {rule.id for rule in selected}
        unknown = sorted(set(rules) - known)
        if unknown:
            raise ValueError(
                f"unknown rule id(s): {', '.join(unknown)}; "
                f"see --list-rules")
        wanted = set(rules)
        selected = tuple(r for r in selected if r.id in wanted)

    by_path = {source.path: source for source in sources}
    graph = build_graph(sources)
    raw: list[Finding] = []
    for rule in selected:
        for source in sources:
            raw.extend(rule.check_file(source))
        raw.extend(rule.check_project(sources))
        raw.extend(rule.check_graph(graph))

    rules_by_id = {rule.id: rule for rule in all_rules()}
    for finding in raw:
        source = by_path.get(finding.path)
        rule = rules_by_id.get(finding.rule)
        if (source is not None and rule is not None
                and rule.suppressed(source, finding.line)):
            result.suppressed += 1
            continue
        result.findings.append(finding)
    return result


def _design_path(explicit: str | None) -> Path:
    if explicit:
        return Path(explicit)
    local = Path("DESIGN.md")
    if local.is_file():
        return local
    return Path(__file__).resolve().parents[3] / "DESIGN.md"


def documented_rule_ids(design_path: Path) -> set[str]:
    """Rule ids listed in DESIGN.md's "Static analysis" catalog table."""
    text = design_path.read_text(encoding="utf-8")
    in_section = False
    ids: set[str] = set()
    for line in text.splitlines():
        if line.startswith("## "):
            in_section = line.lower().startswith("## static analysis")
            continue
        if not in_section:
            continue
        match = _CATALOG_ROW.match(line.strip())
        if match:
            ids.add(match.group(1))
    return ids


def self_check(design: str | None = None) -> list[str]:
    """Problems found reconciling the registry with DESIGN.md."""
    problems: list[str] = []
    design_path = _design_path(design)
    if not design_path.is_file():
        return [f"DESIGN.md not found at {design_path}"]
    documented = documented_rule_ids(design_path)
    registered = {rule.id for rule in all_rules()}
    for rule_id in sorted(registered - documented):
        problems.append(
            f"rule {rule_id!r} is registered but missing from the "
            f"DESIGN.md rule catalog")
    for rule_id in sorted(documented - registered - RUNTIME_CHECKS):
        problems.append(
            f"DESIGN.md documents rule {rule_id!r} but no such rule is "
            f"registered")
    for check_id in sorted(RUNTIME_CHECKS - documented):
        problems.append(
            f"runtime check {check_id!r} is missing from the DESIGN.md "
            f"rule catalog")
    return problems


def changed_files(root: Path | None = None) -> set[Path] | None:
    """Files changed vs HEAD plus untracked files, resolved.

    Returns None when git is unavailable or this is not a work tree —
    ``--changed-only`` then degrades to a full report rather than
    silently hiding findings.
    """
    import subprocess
    base = root or Path.cwd()
    changed: set[Path] = set()
    for args in (("git", "diff", "--name-only", "HEAD"),
                 ("git", "ls-files", "--others", "--exclude-standard")):
        try:
            proc = subprocess.run(
                args, cwd=base, capture_output=True, text=True,
                timeout=30, check=False)
        except (OSError, subprocess.TimeoutExpired):
            return None
        if proc.returncode != 0:
            return None
        for line in proc.stdout.splitlines():
            name = line.strip()
            if name:
                changed.add((base / name).resolve())
    return changed


def _default_paths() -> list[str]:
    paths = [name for name in ("src", "tests") if Path(name).is_dir()]
    return paths or ["."]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="schemr lint",
        description="run the repro static-analysis rules")
    parser.add_argument("paths", nargs="*",
                        help="files/directories to lint "
                             "(default: src tests)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--rule", action="append", metavar="ID",
                        dest="rules",
                        help="run only this rule id (repeatable); the "
                             "whole corpus is still scanned so graph "
                             "rules see the full program")
    parser.add_argument("--changed-only", action="store_true",
                        help="report only findings in files changed vs "
                             "git HEAD (plus untracked files); the "
                             "whole corpus is still analyzed")
    parser.add_argument("--baseline", metavar="PATH",
                        help="baseline JSON of grandfathered findings")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite --baseline with current findings "
                             "and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--self-check", action="store_true",
                        help="verify the registry matches the DESIGN.md "
                             "rule catalog")
    parser.add_argument("--design", metavar="PATH",
                        help="DESIGN.md location for --self-check")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id} [{rule.severity}] "
                  f"(pragma: {rule.pragma}): {rule.description}")
        return 0

    if args.self_check:
        problems = self_check(args.design)
        for problem in problems:
            print(f"self-check: {problem}", file=sys.stderr)
        if not problems:
            print(f"self-check: registry and DESIGN.md agree on "
                  f"{len(all_rules())} rule(s)")
        return 1 if problems else 0

    try:
        result = run_lint(args.paths or _default_paths(),
                          rules=args.rules)
    except (FileNotFoundError, ValueError) as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2

    if args.changed_only:
        changed = changed_files()
        if changed is None:
            print("lint: --changed-only needs a git work tree; "
                  "reporting everything", file=sys.stderr)
        else:
            result.findings = [
                f for f in result.findings
                if Path(f.path).resolve() in changed]

    if args.update_baseline:
        if not args.baseline:
            print("lint: --update-baseline requires --baseline",
                  file=sys.stderr)
            return 2
        write_baseline(args.baseline, result.findings)
        print(f"lint: wrote {len(result.findings)} finding(s) to "
              f"{args.baseline}")
        return 0

    if args.baseline and Path(args.baseline).is_file():
        try:
            baseline = load_baseline(args.baseline)
        except BaselineError as exc:
            print(f"lint: {exc}", file=sys.stderr)
            return 2
        result.findings, result.baselined = split_baselined(
            result.findings, baseline)

    print(render(result, args.format))
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
