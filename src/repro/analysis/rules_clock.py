"""Rule ``clock-hygiene``: injected clocks are used, not bypassed.

The resilience layer's deadlines and breakers, and the telemetry
timestamps, take an injectable clock so the chaos/unit suites advance
time deterministically.  A raw ``time.time()`` / ``time.monotonic()``
/ ``datetime.now()`` / ``datetime.today()`` call inside those layers —
or inside any function that *accepts* a ``clock`` / ``now`` /
``wall_clock`` parameter, or a method of a class whose ``__init__``
does — silently bypasses the injection and makes the code untestable
and drift-prone.

References (``clock=time.monotonic`` as a default) are fine; only
*calls* are flagged.  ``time.perf_counter()`` is allowed: it is the
conventional duration clock and carries no wall-clock meaning.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.source import SourceFile

#: Packages where every wall-clock call must go through injection.
CLOCKED_PACKAGES = ("repro.resilience", "repro.telemetry")

#: Parameter names that mark a function as clock-injected.
CLOCK_PARAMS = frozenset(("clock", "now", "wall_clock"))

_TIME_FUNCS = frozenset(("time", "monotonic"))
_DATETIME_FUNCS = frozenset(("now", "today", "utcnow"))


def _dotted(node: ast.expr) -> str:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _wall_clock_call(node: ast.Call) -> str | None:
    """The offending dotted name when ``node`` is a wall-clock call."""
    name = _dotted(node.func)
    if not name:
        return None
    parts = name.split(".")
    if len(parts) >= 2 and parts[-2] == "time" and parts[-1] in _TIME_FUNCS:
        return name
    if parts[-1] in _DATETIME_FUNCS and any(
            p in ("datetime", "date") for p in parts[:-1]):
        return name
    return None


def _has_clock_param(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    args = fn.args
    every = (args.posonlyargs + args.args + args.kwonlyargs)
    return any(arg.arg in CLOCK_PARAMS for arg in every)


def _clocked_spans(tree: ast.Module) -> list[tuple[int, int]]:
    """Line ranges where the injected clock is mandatory."""
    spans: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _has_clock_param(node) and node.end_lineno is not None:
                spans.append((node.lineno, node.end_lineno))
        elif isinstance(node, ast.ClassDef):
            for stmt in node.body:
                if (isinstance(stmt, (ast.FunctionDef,
                                      ast.AsyncFunctionDef))
                        and stmt.name == "__init__"
                        and _has_clock_param(stmt)
                        and node.end_lineno is not None):
                    spans.append((node.lineno, node.end_lineno))
                    break
    return spans


@register
class ClockHygieneRule(Rule):
    id = "clock-hygiene"
    pragma = "wall-clock"
    description = ("no raw time.time()/monotonic()/datetime.now() in "
                   "resilience/telemetry or clock-injected functions")

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        module_scoped = source.module.startswith(CLOCKED_PACKAGES)
        spans = None if module_scoped else _clocked_spans(source.tree)
        findings: list[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _wall_clock_call(node)
            if name is None:
                continue
            if not module_scoped:
                line = node.lineno
                if not any(start <= line <= end for start, end in spans):
                    continue
            where = (f"module {source.module}" if module_scoped
                     else "a clock-injected scope")
            findings.append(self.finding(
                source, node.lineno,
                f"raw wall-clock call {name}() in {where}; thread the "
                f"injectable clock through instead"))
        return findings
