"""The finding model shared by every lint rule and reporter."""

from __future__ import annotations

from dataclasses import dataclass

#: Severity levels, most severe first.  Any non-baselined finding of
#: any severity fails the lint run; severity exists so reporters and
#: dashboards can rank what to fix first.
SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITIES = (SEVERITY_ERROR, SEVERITY_WARNING)


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    message: str
    severity: str = SEVERITY_ERROR

    def key(self) -> tuple[str, str, str]:
        """Baseline identity: line numbers drift, messages do not."""
        return (self.rule, self.path, self.message)

    def sort_key(self) -> tuple[str, int, str, str]:
        return (self.path, self.line, self.rule, self.message)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def render(self) -> str:
        return (f"{self.path}:{self.line}: [{self.rule}] "
                f"{self.severity}: {self.message}")
