"""Rule ``lock-discipline``: guarded attributes stay guarded.

If any method of a class writes ``self.x`` inside ``with self._lock:``
(or any ``with`` over a lock-ish attribute — name containing ``lock``,
``cond``, or ``mutex``, including dotted paths like
``self._index.lock``), then ``x`` is treated as guarded by that lock,
and *every* access to ``self.x`` in the class's other methods must also
happen under a ``with`` over a lock — the classic torn-counter /
stale-read bug is a property reading ``self._hits`` while a worker
thread increments it under the lock.

Constructors (``__init__`` / ``__new__`` / ``__post_init__``) are
exempt: the object is not shared yet.  Deliberate unlocked access — an
atomic flag read on a hot path, a "caller holds the lock" helper — is
annotated ``# lint: unlocked (reason)``; on a ``def`` line the pragma
covers the whole method.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.source import SourceFile

_LOCKISH = re.compile(r"lock|cond|mutex", re.IGNORECASE)
_CONSTRUCTORS = frozenset(("__init__", "__new__", "__post_init__"))


def _is_self_rooted(node: ast.expr) -> bool:
    while isinstance(node, ast.Attribute):
        node = node.value
    return isinstance(node, ast.Name) and node.id == "self"


def _is_lock_expr(node: ast.expr) -> bool:
    """``self._lock`` / ``self._cond`` / ``self._index.lock`` ..."""
    return (isinstance(node, ast.Attribute)
            and _LOCKISH.search(node.attr) is not None
            and _is_self_rooted(node.value))


def _self_attr(node: ast.expr) -> str | None:
    """The X of a plain ``self.X`` expression, else None."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


@dataclass(slots=True)
class _Access:
    attr: str
    line: int
    is_write: bool
    locked: bool
    method: str


def _write_targets(node: ast.stmt) -> list[ast.expr]:
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return [node.target]
    if isinstance(node, ast.Delete):
        return list(node.targets)
    return []


def _written_attr(target: ast.expr) -> str | None:
    """self.X = / self.X[...] = / del self.X[...] all count as writes."""
    attr = _self_attr(target)
    if attr is not None:
        return attr
    if isinstance(target, ast.Subscript):
        return _self_attr(target.value)
    return None


def _scan_method(method: ast.FunctionDef | ast.AsyncFunctionDef
                 ) -> Iterator[_Access]:
    name = method.name

    def walk(node: ast.AST, locked: bool) -> Iterator[_Access]:
        if isinstance(node, ast.ClassDef):
            return  # nested classes are scanned as their own class
        if isinstance(node, ast.With):
            inner = locked or any(
                _is_lock_expr(item.context_expr) for item in node.items)
            for item in node.items:
                yield from walk(item.context_expr, locked)
            for stmt in node.body:
                yield from walk(stmt, inner)
            return
        if isinstance(node, ast.stmt):
            written: list[tuple[str, int]] = []
            for target in _write_targets(node):
                attr = _written_attr(target)
                if attr is not None:
                    written.append((attr, target.lineno))
            for attr, line in written:
                yield _Access(attr=attr, line=line, is_write=True,
                              locked=locked, method=name)
        if isinstance(node, ast.Attribute):
            attr = _self_attr(node)
            if attr is not None and isinstance(node.ctx, ast.Load):
                yield _Access(attr=attr, line=node.lineno, is_write=False,
                              locked=locked, method=name)
        for child in ast.iter_child_nodes(node):
            # Nested defs/lambdas inherit the current lock state: the
            # dominant pattern is a predicate evaluated inline (e.g.
            # Condition.wait_for) while the lock is held.
            yield from walk(child, locked)

    for stmt in method.body:
        yield from walk(stmt, False)


@register
class LockDisciplineRule(Rule):
    id = "lock-discipline"
    pragma = "unlocked"
    description = ("attributes written under a lock must be accessed "
                   "under the lock everywhere outside __init__")

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(source, node))
        return findings

    def _check_class(self, source: SourceFile,
                     cls: ast.ClassDef) -> Iterator[Finding]:
        accesses: list[_Access] = []
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                accesses.extend(_scan_method(stmt))
        guarded = {access.attr for access in accesses
                   if access.is_write and access.locked
                   and access.method not in _CONSTRUCTORS}
        if not guarded:
            return
        seen: set[tuple[str, int]] = set()
        for access in accesses:
            if (access.locked or access.attr not in guarded
                    or access.method in _CONSTRUCTORS):
                continue
            marker = (access.attr, access.line)
            if marker in seen:
                continue
            seen.add(marker)
            verb = "writes" if access.is_write else "reads"
            yield self.finding(
                source, access.line,
                f"{cls.name}.{access.method} {verb} self.{access.attr} "
                f"without the lock that guards it elsewhere in "
                f"{cls.name}")
