"""Runtime lock-order sanitizer: the dynamic half of ``lock-order``.

The static ``lock-order`` rule proves the *declared* acquisition graph
acyclic; this module checks the orders a test run actually exercises.
Project locks are replaced with recording proxies that keep a
per-thread stack of held locks and a global first-seen edge map: the
first time lock ``B`` is acquired while ``A`` is held, the edge
``A -> B`` is recorded with a witness (thread name and source
location).  If the reverse edge was ever observed, that is a lock-order
inversion — two threads interleaving those two code paths can deadlock
— and the sanitizer fails loudly even though *this* run got lucky with
scheduling.

Locks are aggregated by ``Class.attr`` (matching the static
:class:`~repro.analysis.callgraph.LockKey` labels), so acquiring two
*different* instances of the same class's lock in sequence is not an
edge; re-acquiring the *same* non-reentrant lock object is reported as
a self-deadlock before it blocks forever.

Opt-in: nothing in production imports this module.  The test suite
enables it with ``SCHEMR_LOCK_SANITIZER=1`` (see ``tests/conftest.py``
and the CI ``sanitizer-smoke`` job), which instruments the sharding,
replication, index, and telemetry classes via
:func:`instrument_project`.

Exported telemetry (when given a registry):
``schemr_sanitizer_locks_wrapped`` (gauge),
``schemr_sanitizer_order_edges`` (gauge),
``schemr_sanitizer_inversions_total`` (counter).
"""

from __future__ import annotations

import functools
import threading
import time
import traceback

__all__ = [
    "LockOrderInversion",
    "LockOrderSanitizer",
    "SanitizedCondition",
    "SanitizedLock",
    "instrument_project",
]

_LOCK_TYPE = type(threading.Lock())
_RLOCK_TYPE = type(threading.RLock())


class LockOrderInversion(AssertionError):
    """Two locks were acquired in both orders (or one re-entered)."""


class _HeldStack(threading.local):
    """Per-thread stack of currently-held sanitized locks."""

    def __init__(self) -> None:
        self.entries: list[object] = []


def _witness() -> str:
    """Thread name plus the acquiring frame, for inversion reports."""
    for frame in reversed(traceback.extract_stack(limit=12)):
        if "repro/analysis/sanitizer" not in frame.filename.replace(
                "\\", "/"):
            return (f"thread {threading.current_thread().name!r} at "
                    f"{frame.filename}:{frame.lineno} in {frame.name}")
    return f"thread {threading.current_thread().name!r}"


class LockOrderSanitizer:
    """Records lock-acquisition orders and flags inversions.

    One sanitizer instance is shared by every wrapped lock; its own
    bookkeeping lock is a plain (unwrapped) ``threading.Lock`` held
    only for dict updates, never across a wrapped acquisition.
    """

    def __init__(self, metrics=None, raise_on_inversion: bool = True
                 ) -> None:
        self.raise_on_inversion = raise_on_inversion
        self._meta = threading.Lock()
        #: (first, second) -> witness of the first time the order was seen.
        self._edges: dict[tuple[str, str], str] = {}
        #: Human-readable inversion reports, in detection order.
        self.inversions: list[str] = []
        self._held = _HeldStack()
        self._wrapped = 0
        self._patched: list[tuple[type, object]] = []
        if metrics is not None:
            self._m_wrapped = metrics.gauge(
                "schemr_sanitizer_locks_wrapped",
                "Project locks wrapped by the lock-order sanitizer")
            self._m_edges = metrics.gauge(
                "schemr_sanitizer_order_edges",
                "Distinct lock-acquisition-order edges observed")
            self._m_inversions = metrics.counter(
                "schemr_sanitizer_inversions_total",
                "Lock-order inversions detected at runtime")
        else:
            from repro.telemetry.metrics import (NULL_COUNTER, NULL_GAUGE)
            self._m_wrapped = NULL_GAUGE
            self._m_edges = NULL_GAUGE
            self._m_inversions = NULL_COUNTER

    # -- wrapping -------------------------------------------------------

    def wrap(self, value: object, name: str):
        """A sanitized stand-in for ``value``, or None if not a lock."""
        if isinstance(value, (SanitizedLock, SanitizedCondition)):
            return None
        wrapped = None
        if isinstance(value, threading.Condition):
            wrapped = SanitizedCondition(value, name, self)
        elif isinstance(value, _LOCK_TYPE):
            wrapped = SanitizedLock(value, name, self, reentrant=False)
        elif isinstance(value, _RLOCK_TYPE):
            wrapped = SanitizedLock(value, name, self, reentrant=True)
        if wrapped is not None:
            with self._meta:
                self._wrapped += 1
                self._m_wrapped.set(self._wrapped)
        return wrapped

    def wrap_object(self, obj: object, name: str | None = None) -> int:
        """Replace every lock attribute of ``obj``; returns the count."""
        base = name or type(obj).__name__
        count = 0
        for attr, value in list(vars(obj).items()):
            wrapped = self.wrap(value, f"{base}.{attr}")
            if wrapped is not None:
                object.__setattr__(obj, attr, wrapped)
                count += 1
        return count

    def instrument_class(self, cls: type) -> None:
        """Patch ``cls.__init__`` to wrap each new instance's locks."""
        original = cls.__init__
        sanitizer = self

        @functools.wraps(original)
        def wrapping_init(obj, *args, **kwargs):
            original(obj, *args, **kwargs)
            sanitizer.wrap_object(obj, type(obj).__name__)

        cls.__init__ = wrapping_init
        self._patched.append((cls, original))

    def uninstrument(self) -> None:
        """Restore every ``__init__`` patched by :meth:`instrument_class`."""
        while self._patched:
            cls, original = self._patched.pop()
            cls.__init__ = original

    # -- introspection ---------------------------------------------------

    @property
    def locks_wrapped(self) -> int:
        return self._wrapped

    def edges(self) -> dict[tuple[str, str], str]:
        with self._meta:
            return dict(self._edges)

    def report(self) -> str:
        """Multi-line summary suitable for a failing assertion message."""
        lines = [f"{self._wrapped} lock(s) wrapped, "
                 f"{len(self._edges)} order edge(s), "
                 f"{len(self.inversions)} inversion(s)"]
        lines.extend(self.inversions)
        return "\n".join(lines)

    # -- recording (called by the proxies) -------------------------------

    def _before_acquire(self, proxy) -> None:
        if proxy.reentrant:
            return
        for entry in self._held.entries:
            if entry is proxy:
                message = (f"lock-order inversion: non-reentrant lock "
                           f"{proxy.name} re-acquired while already "
                           f"held ({_witness()}); this deadlocks")
                self._record_inversion(message)
                return

    def _after_acquire(self, proxy) -> None:
        entries = self._held.entries
        inversion = None
        witness = _witness()
        with self._meta:
            for entry in entries:
                if entry.name == proxy.name:
                    continue
                edge = (entry.name, proxy.name)
                if edge not in self._edges:
                    self._edges[edge] = witness
                    self._m_edges.set(len(self._edges))
                reverse = (proxy.name, entry.name)
                if reverse in self._edges and inversion is None:
                    inversion = (
                        f"lock-order inversion: {entry.name} -> "
                        f"{proxy.name} ({witness}) conflicts with "
                        f"{proxy.name} -> {entry.name} "
                        f"({self._edges[reverse]})")
        entries.append(proxy)
        if inversion is not None:
            self._record_inversion(inversion)

    def _after_release(self, proxy) -> None:
        entries = self._held.entries
        for i in range(len(entries) - 1, -1, -1):
            if entries[i] is proxy:
                del entries[i]
                return

    def _record_inversion(self, message: str) -> None:
        with self._meta:
            self.inversions.append(message)
        self._m_inversions.inc()
        if self.raise_on_inversion:
            raise LockOrderInversion(message)


class SanitizedLock:
    """Recording proxy around a ``Lock`` or ``RLock``."""

    def __init__(self, inner, name: str, sanitizer: LockOrderSanitizer,
                 reentrant: bool) -> None:
        self.inner = inner
        self.name = name
        self.reentrant = reentrant
        self._sanitizer = sanitizer

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._sanitizer._before_acquire(self)
        acquired = self.inner.acquire(blocking, timeout)
        if acquired:
            self._sanitizer._after_acquire(self)
        return acquired

    def release(self) -> None:
        self.inner.release()
        self._sanitizer._after_release(self)

    def locked(self) -> bool:
        return self.inner.locked()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc) -> bool:
        self.release()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SanitizedLock {self.name} wrapping {self.inner!r}>"


class SanitizedCondition:
    """Recording proxy around a ``Condition``.

    ``wait`` releases the underlying lock while parked, so the held
    stack drops the condition for the duration and re-records it (and
    any new order edges) on wake-up.
    """

    reentrant = False

    def __init__(self, inner: threading.Condition, name: str,
                 sanitizer: LockOrderSanitizer) -> None:
        self.inner = inner
        self.name = name
        self._sanitizer = sanitizer

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._sanitizer._before_acquire(self)
        acquired = self.inner.acquire(blocking, timeout)
        if acquired:
            self._sanitizer._after_acquire(self)
        return acquired

    def release(self) -> None:
        self.inner.release()
        self._sanitizer._after_release(self)

    def wait(self, timeout: float | None = None) -> bool:
        self._sanitizer._after_release(self)
        try:
            return self.inner.wait(timeout)
        finally:
            self._sanitizer._after_acquire(self)

    def wait_for(self, predicate, timeout: float | None = None):
        # Re-implemented over the sanitized wait() so the held stack
        # stays accurate across every park/wake cycle.
        endtime = None
        waittime = timeout
        result = predicate()
        while not result:
            if waittime is not None:
                if endtime is None:
                    endtime = time.monotonic() + waittime
                else:
                    waittime = endtime - time.monotonic()
                    if waittime <= 0:
                        break
            self.wait(waittime)
            result = predicate()
        return result

    def notify(self, n: int = 1) -> None:
        self.inner.notify(n)

    def notify_all(self) -> None:
        self.inner.notify_all()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc) -> bool:
        self.release()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SanitizedCondition {self.name} wrapping {self.inner!r}>"


def instrument_project(sanitizer: LockOrderSanitizer) -> list[type]:
    """Instrument the lock-owning project classes; returns them.

    The list mirrors the static analyzer's lock inventory: every class
    the ``lock-order`` rule sees edges through is wrapped, so a test
    run under the sanitizer exercises the same graph dynamically.
    """
    from repro.index.inverted import InvertedIndex
    from repro.index.segments.segmented import SegmentedIndex
    from repro.index.segments.sharded import ShardedSegmentIndex
    from repro.replication.replica import ReplicaSyncer
    from repro.resilience.breaker import CircuitBreaker
    from repro.sharding.engine import ShardedEngine
    from repro.sharding.pool import WorkerHandle
    from repro.telemetry.metrics import MetricsRegistry

    classes: list[type] = [
        InvertedIndex,
        SegmentedIndex,
        ShardedSegmentIndex,
        ReplicaSyncer,
        CircuitBreaker,
        ShardedEngine,
        WorkerHandle,
        MetricsRegistry,
    ]
    for cls in classes:
        sanitizer.instrument_class(cls)
    return classes


def _seed_inversion() -> int:  # pragma: no cover - exercised by CI
    """Acquire two locks in both orders; exit 1 when caught.

    The CI ``sanitizer-smoke`` job runs ``python -m
    repro.analysis.sanitizer --seed-inversion`` and *requires* the
    nonzero exit: a zero exit means the sanitizer went blind.
    """
    sanitizer = LockOrderSanitizer()
    first = sanitizer.wrap(threading.Lock(), "Fixture.first")
    second = sanitizer.wrap(threading.Lock(), "Fixture.second")
    with first:
        with second:
            pass
    try:
        with second:
            with first:
                pass
    except LockOrderInversion as exc:
        print(f"sanitizer caught the seeded inversion: {exc}")
        return 1
    print("sanitizer MISSED the seeded inversion", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover - CI entry point
    import sys

    if "--seed-inversion" in sys.argv[1:]:
        sys.exit(_seed_inversion())
    print(__doc__)
