"""The rule registry: declare once, discovered by runner and docs.

A rule subclasses :class:`Rule` and registers via :func:`register`.
Per-file rules implement :meth:`Rule.check_file`; whole-project rules
(cross-file reconciliation, e.g. the metric catalog) implement
:meth:`Rule.check_project`; graph rules (lock-order, resource
lifecycle — anything needing the two-pass project model) implement
:meth:`Rule.check_graph` and receive the shared
:class:`~repro.analysis.callgraph.GraphContext` the runner builds once
per run.  Every rule declares a pragma token that suppresses it
inline; the token spelled exactly like the rule id always works too.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.findings import SEVERITY_ERROR, Finding
from repro.analysis.source import SourceFile


class Rule:
    """Base class for lint rules."""

    #: Stable identifier, kebab-case; appears in reports, baselines,
    #: pragmas, and the DESIGN.md rule catalog.
    id: str = ""
    severity: str = SEVERITY_ERROR
    #: One-line summary for ``--list-rules`` and the self-check.
    description: str = ""
    #: Inline suppression token (``# lint: <token>``); the rule id
    #: itself is always accepted as well.
    pragma: str = ""

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        """Findings for one parsed file."""
        return ()

    def check_project(self,
                      sources: Sequence[SourceFile]) -> Iterable[Finding]:
        """Findings needing the whole scanned corpus at once."""
        return ()

    def check_graph(self, graph) -> Iterable[Finding]:
        """Findings over the two-pass project graph.

        ``graph`` is a :class:`repro.analysis.callgraph.GraphContext`
        (untyped here to keep the registry import-cycle free).
        """
        return ()

    def finding(self, source: SourceFile, line: int,
                message: str) -> Finding:
        return Finding(rule=self.id, path=source.path, line=line,
                       message=message, severity=self.severity)

    def suppressed(self, source: SourceFile, line: int) -> bool:
        """Whether a pragma at ``line`` silences this rule."""
        return source.has_pragma(line, self.id, self.pragma)


_REGISTRY: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one instance to the global registry."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, ordered by id."""
    _load_builtin_rules()
    return tuple(_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY))


def get_rule(rule_id: str) -> Rule:
    _load_builtin_rules()
    return _REGISTRY[rule_id]


def _load_builtin_rules() -> None:
    # Imported lazily so registry.py itself stays import-cycle free.
    from repro.analysis import (  # noqa: F401
        rules_blocking,
        rules_clock,
        rules_config,
        rules_except,
        rules_lifecycle,
        rules_lockorder,
        rules_locks,
        rules_metrics,
        rules_sites,
    )
