"""Parsed source files: AST, dotted module name, and lint pragmas.

A pragma is a comment of the form ``# lint: token[, token...]`` with an
optional parenthesised reason::

    self._generation += 1  # lint: unlocked (atomic int read, hot path)

Tokens on a ``def`` line apply to the whole function body — the idiom
for "caller holds the lock" helper methods.  Pragmas are extracted with
:mod:`tokenize` so strings that merely *contain* pragma-looking text
are never misread as suppressions.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

_PRAGMA = re.compile(r"#\s*lint:\s*([A-Za-z0-9_,\- ]+)")


def module_name_for(path: Path) -> str:
    """The dotted module a file would import as.

    Looks for a ``repro`` package component in the path (the repo's
    single top-level package) and joins from there; files outside any
    package — synthetic lint-test modules, scripts — fall back to the
    bare stem.  ``__init__`` collapses onto the package name.
    """
    parts = list(path.parts)
    name = path.stem
    try:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
    except ValueError:
        return name
    dotted = [p for p in parts[anchor:-1]]
    if name != "__init__":
        dotted.append(name)
    return ".".join(dotted)


def _parse_pragmas(text: str) -> dict[int, frozenset[str]]:
    pragmas: dict[int, frozenset[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA.search(token.string)
            if match is None:
                continue
            blob = match.group(1).split("(")[0]
            names = frozenset(
                part.strip() for part in blob.replace(",", " ").split()
                if part.strip())
            if names:
                line = token.start[0]
                pragmas[line] = pragmas.get(line, frozenset()) | names
    except tokenize.TokenizeError:
        pass  # unparseable files surface as syntax-error findings
    return pragmas


@dataclass(slots=True)
class SourceFile:
    """One file of the lint corpus."""

    path: str
    module: str
    text: str
    tree: ast.Module
    #: line -> pragma tokens written on that exact line.
    pragmas: dict[int, frozenset[str]]
    #: (start, end, tokens) spans from pragmas on ``def`` lines.
    _spans: list[tuple[int, int, frozenset[str]]] = field(
        default_factory=list)

    @classmethod
    def parse(cls, path: str | Path, text: str | None = None,
              module: str | None = None) -> "SourceFile":
        """Parse ``path`` (raises SyntaxError for the runner to report)."""
        file_path = Path(path)
        if text is None:
            text = file_path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(file_path))
        source = cls(
            path=str(file_path),
            module=module or module_name_for(file_path),
            text=text,
            tree=tree,
            pragmas=_parse_pragmas(text),
        )
        source._index_function_spans()
        return source

    def _index_function_spans(self) -> None:
        if not self.pragmas:
            return
        for node in ast.walk(self.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            tokens = self.pragmas.get(node.lineno)
            if tokens and node.end_lineno is not None:
                self._spans.append((node.lineno, node.end_lineno, tokens))

    def pragma_tokens(self, line: int) -> frozenset[str]:
        """Tokens in force at ``line`` (own line + enclosing def lines)."""
        tokens = self.pragmas.get(line, frozenset())
        for start, end, span_tokens in self._spans:
            if start <= line <= end:
                tokens = tokens | span_tokens
        return tokens

    def has_pragma(self, line: int, *names: str) -> bool:
        tokens = self.pragma_tokens(line)
        return any(name in tokens for name in names)
