"""Rule ``config-cli-drift``: SchemrConfig and the serve CLI agree.

``repro.cli`` declares ``SERVE_FLAG_FIELDS``, the flag → config-field
mapping the serve command builds its :class:`SchemrConfig` from.  This
rule reconciles three sources of truth:

* every mapping value must be a real ``SchemrConfig`` field — a rename
  in ``config.py`` breaks the CLI loudly at lint time, not at runtime;
* every mapping key must be a flag actually declared with
  ``add_argument`` — no phantom flags;
* every ``SchemrConfig`` field must either appear as a mapping value
  (reachable from the CLI) or carry a ``# lint: internal (reason)``
  pragma on its declaration line (documented internal knob).

Like the metric rule it is a project rule, inert unless both anchor
modules (``repro.core.config`` and ``repro.cli``) are in the scan.
"""

from __future__ import annotations

import ast
from typing import Iterable, Sequence

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.source import SourceFile

CONFIG_MODULE = "repro.core.config"
CLI_MODULE = "repro.cli"
CONFIG_CLASS = "SchemrConfig"
MAPPING_NAME = "SERVE_FLAG_FIELDS"


def _config_fields(source: SourceFile) -> dict[str, int]:
    """SchemrConfig field name -> declaration line."""
    fields: dict[str, int] = {}
    for node in ast.walk(source.tree):
        if not (isinstance(node, ast.ClassDef)
                and node.name == CONFIG_CLASS):
            continue
        for stmt in node.body:
            if (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)):
                fields[stmt.target.id] = stmt.lineno
    return fields


def _flag_mapping(source: SourceFile
                  ) -> dict[str, tuple[str, int]] | None:
    """SERVE_FLAG_FIELDS literal: flag -> (field, lineno)."""
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets
                       if isinstance(t, ast.Name)]
        elif (isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)):
            targets = [node.target.id]
        else:
            continue
        if MAPPING_NAME not in targets or not isinstance(node.value,
                                                         ast.Dict):
            continue
        mapping: dict[str, tuple[str, int]] = {}
        for key, value in zip(node.value.keys, node.value.values):
            if (isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)):
                mapping[key.value] = (value.value, key.lineno)
        return mapping
    return None


def _declared_flags(source: SourceFile) -> set[str]:
    """Every string flag passed to an ``add_argument`` call."""
    flags: set[str] = set()
    for node in ast.walk(source.tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_argument"):
            continue
        for arg in node.args:
            if (isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)
                    and arg.value.startswith("--")):
                flags.add(arg.value)
    return flags


@register
class ConfigCliDriftRule(Rule):
    id = "config-cli-drift"
    pragma = "internal"
    description = ("every SchemrConfig field is CLI-reachable via "
                   "SERVE_FLAG_FIELDS or marked `# lint: internal`; "
                   "the mapping names only real fields and flags")

    def check_project(self,
                      sources: Sequence[SourceFile]) -> Iterable[Finding]:
        config = next((s for s in sources
                       if s.module == CONFIG_MODULE), None)
        cli = next((s for s in sources if s.module == CLI_MODULE), None)
        if config is None or cli is None:
            return ()
        fields = _config_fields(config)
        mapping = _flag_mapping(cli)
        if not fields:
            return ()
        findings: list[Finding] = []
        if mapping is None:
            findings.append(self.finding(
                cli, 1,
                f"{CLI_MODULE} has no {MAPPING_NAME} dict literal; the "
                f"serve command's flag/field mapping must be statically "
                f"declared"))
            return findings

        flags = _declared_flags(cli)
        for flag, (field_name, line) in sorted(mapping.items()):
            if field_name not in fields:
                findings.append(self.finding(
                    cli, line,
                    f"{MAPPING_NAME} maps {flag} to "
                    f"{CONFIG_CLASS}.{field_name}, which does not "
                    f"exist"))
            if flag not in flags:
                findings.append(self.finding(
                    cli, line,
                    f"{MAPPING_NAME} lists {flag} but no add_argument "
                    f"declares it"))

        mapped_fields = {field for field, _line in mapping.values()}
        for field_name, line in sorted(fields.items(),
                                       key=lambda kv: kv[1]):
            if field_name in mapped_fields:
                continue
            if config.has_pragma(line, self.id, self.pragma):
                continue
            findings.append(self.finding(
                config, line,
                f"{CONFIG_CLASS}.{field_name} is unreachable from the "
                f"CLI; add it to {MAPPING_NAME} or mark the field "
                f"`# lint: internal (reason)`"))
        return findings
