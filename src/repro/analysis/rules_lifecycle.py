"""Rule ``resource-lifecycle``: every acquired handle reaches a close.

Tracks OS-resource acquisitions — ``open``/``mmap``/``socket``/
``connect``/``Popen``/``Process``/``Pipe``/``NamedTemporaryFile`` and
friends — plus constructions of *resource classes* (project classes
that store such handles in attributes, like ``WorkerHandle``), and
checks three lifecycle disciplines:

* **locals**: a resource bound to a local must be released
  (``.close()``-family call), or ownership-transferred (returned,
  passed as a call argument, stored on ``self``) — and on every
  *early-error path*: a call that can raise between the acquisition
  and the first release must sit in a ``try`` whose handler/finally
  releases the resource (``with`` blocks are exempt by construction);
* **class attributes**: a class storing a resource in ``self.attr``
  (directly, via a tracked local, or typed as a resource class /
  list thereof) must release it somewhere — directly, through a local
  or tuple-unpack alias, or element-wise through a ``for``/
  comprehension alias;
* **construction**: a list comprehension of resource-class
  constructors leaks the already-built instances when a later
  constructor raises — build incrementally with cleanup instead;
* **commit discipline**: a function calling ``os.replace``/
  ``os.rename`` (the tmp-file commit idiom in segments/replication)
  must ``os.fsync`` first, or the rename can publish an empty file.

The escape hatch is ``# lint: owned-by(<attr>) (reason)`` on the
acquisition (or its ``def`` line): ownership lives elsewhere by
design.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.callgraph import GraphContext
from repro.analysis.findings import Finding
from repro.analysis.model import ClassModel
from repro.analysis.registry import Rule, register
from repro.analysis.source import SourceFile

#: Call names that hand back an OS resource needing release.
_ACQUIRERS = frozenset((
    "open", "mmap", "socket", "create_connection", "connect", "Popen",
    "Process", "Pipe", "NamedTemporaryFile", "TemporaryFile",
    "SpooledTemporaryFile", "TemporaryDirectory",
))

#: Method names that count as releasing their receiver (or, called on
#: anything, as cleanup code rather than a risky operation).
_RELEASE_CALLS = frozenset((
    "close", "shutdown", "stop", "terminate", "kill", "release",
    "disconnect", "join", "cleanup", "unlink", "__exit__",
))


def _acquirer_of(call: ast.Call) -> str | None:
    """The acquirer name when ``call`` yields an OS resource.

    Capitalized receivers (``SegmentedIndex.open(...)``) are
    classmethod constructors, not file opens — handled by the
    resource-class machinery instead.
    """
    func = call.func
    if isinstance(func, ast.Name):
        return func.id if func.id in _ACQUIRERS else None
    if isinstance(func, ast.Attribute):
        if (isinstance(func.value, ast.Name) and func.value.id
                and func.value.id[0].isupper()):
            return None
        return func.attr if func.attr in _ACQUIRERS else None
    return None


@dataclass(slots=True)
class _Acquisition:
    name: str
    line: int
    what: str  # acquirer or resource-class name, for messages


@dataclass(slots=True)
class _AttrRecord:
    attr: str
    line: int
    what: str
    elementwise: bool = False  # list of resources vs one resource


@dataclass(slots=True)
class _FunctionFacts:
    """Everything one function walk yields for the lifecycle checks."""

    acquisitions: list[_Acquisition] = field(default_factory=list)
    #: name -> lines where it is released or ownership-transferred.
    settled: dict[str, list[int]] = field(default_factory=dict)
    #: (line, description) of calls that can raise.
    risky: list[tuple[int, str]] = field(default_factory=list)
    #: try regions: (body_start, body_end, cleanup_start, cleanup_end).
    protections: list[tuple[int, int, int, int]] = field(
        default_factory=list)
    #: handler/finally line ranges: error paths, never "risky".
    cleanup_ranges: list[tuple[int, int]] = field(default_factory=list)
    #: self-attr stores of resources.
    attr_stores: list[_AttrRecord] = field(default_factory=list)
    #: attrs released via self.attr.<release>() / alias / loop alias /
    #: call-arg transfer of self.attr.
    attr_released: set[str] = field(default_factory=set)
    #: (line, ctor name) of resource-class ctors inside comprehensions.
    comp_ctors: list[tuple[int, str]] = field(default_factory=list)
    #: lines of os.replace / os.rename calls.
    rename_lines: list[int] = field(default_factory=list)
    has_fsync: bool = False


def _span(stmts: list[ast.stmt]) -> tuple[int, int]:
    start = min(s.lineno for s in stmts)
    end = max(getattr(s, "end_lineno", s.lineno) or s.lineno
              for s in stmts)
    return start, end


class _FunctionWalk:
    """Collect :class:`_FunctionFacts` for one function body.

    Multiple passes because ``ast.walk`` order is breadth-first, not
    source order: acquisitions must all be known before attr stores
    and call classification interpret local names.
    """

    def __init__(self, func: ast.FunctionDef,
                 resource_ctors: dict[str, str]) -> None:
        self.facts = _FunctionFacts()
        self.resource_ctors = resource_ctors
        #: local alias -> self attr it mirrors (for release detection).
        self.attr_alias: dict[str, str] = {}
        self._managed: set[int] = set()
        self._collect_managed(func)
        self._collect_protections(func)
        self._collect_acquisitions(func)
        self._tracked: dict[str, _Acquisition] = {
            a.name: a for a in self.facts.acquisitions}
        for node in ast.walk(func):
            self._visit(node)
        for node in ast.walk(func):
            self._classify_call(node)

    # -- pre-passes -------------------------------------------------------

    def _collect_managed(self, func: ast.FunctionDef) -> None:
        for node in ast.walk(func):
            if isinstance(node, ast.With):
                for item in node.items:
                    if isinstance(item.context_expr, ast.Call):
                        self._managed.add(id(item.context_expr))

    def _collect_protections(self, func: ast.FunctionDef) -> None:
        for node in ast.walk(func):
            if not isinstance(node, ast.Try):
                continue
            cleanup: list[ast.stmt] = list(node.finalbody)
            for handler in node.handlers:
                cleanup.extend(handler.body)
            if not cleanup or not node.body:
                continue
            body_start, body_end = _span(node.body)
            clean_start, clean_end = _span(cleanup)
            self.facts.protections.append(
                (body_start, body_end, clean_start, clean_end))
            self.facts.cleanup_ranges.append((clean_start, clean_end))

    def _collect_acquisitions(self, func: ast.FunctionDef) -> None:
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign) \
                    or len(node.targets) != 1:
                continue
            target = node.targets[0]
            value = node.value
            if isinstance(target, ast.Name):
                acquired = self._acquired_value(value)
                if acquired is not None:
                    self.facts.acquisitions.append(
                        _Acquisition(target.id, node.lineno, acquired))
            elif isinstance(target, ast.Tuple):
                if isinstance(value, ast.Tuple) \
                        and len(target.elts) == len(value.elts):
                    for elt, rhs in zip(target.elts, value.elts):
                        acquired = self._acquired_value(rhs)
                        if acquired is not None \
                                and isinstance(elt, ast.Name):
                            self.facts.acquisitions.append(_Acquisition(
                                elt.id, node.lineno, acquired))
                else:
                    acquired = self._acquired_value(value)
                    if acquired is not None:  # e.g. a, b = Pipe()
                        for elt in target.elts:
                            if isinstance(elt, ast.Name):
                                self.facts.acquisitions.append(
                                    _Acquisition(elt.id, node.lineno,
                                                 acquired))

    # -- shared helpers ---------------------------------------------------

    def _resource_ctor(self, value: ast.expr) -> str | None:
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id and func.value.id[0].isupper()
                and (func.attr.startswith(("open", "from_"))
                     or func.attr in ("create", "connect", "spawn"))):
            # Only constructor-shaped classmethods; Cls.load() and
            # friends return plain data, not a fresh resource.
            name = func.value.id
        if name is not None and name in self.resource_ctors:
            return name
        return None

    def _acquired_value(self, value: ast.expr) -> str | None:
        if isinstance(value, ast.Call) and id(value) not in self._managed:
            acquirer = _acquirer_of(value)
            if acquirer is not None:
                return acquirer
            return self._resource_ctor(value)
        return None

    def _settle(self, name: str, line: int) -> None:
        if name in self._tracked:
            self.facts.settled.setdefault(name, []).append(line)

    def _self_attr(self, node: ast.expr) -> str | None:
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            return node.attr
        return None

    # -- main harvesting pass ---------------------------------------------

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.Assign):
            self._visit_assign(node)
        elif isinstance(node, ast.Return) and node.value is not None:
            # Ownership flows through returned values, containers, and
            # call arguments — not through method receivers:
            # ``return handle.size()`` reads the resource, it does not
            # hand it to the caller.
            receivers: set[int] = set()
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Call):
                    for part in ast.walk(sub.func):
                        receivers.add(id(part))
            for name_node in ast.walk(node.value):
                if isinstance(name_node, ast.Name) \
                        and id(name_node) not in receivers:
                    self._settle(name_node.id, node.lineno)
        elif isinstance(node, (ast.For, ast.comprehension)):
            attr = self._self_attr(node.iter)
            if attr is not None and isinstance(node.target, ast.Name):
                self.attr_alias[node.target.id] = attr
        elif isinstance(node, ast.With):
            # ``handle = open(...)`` ... ``with handle:`` — the with
            # block owns the close from here on.
            for item in node.items:
                if isinstance(item.context_expr, ast.Name):
                    self._settle(item.context_expr.id, node.lineno)

    def _visit_assign(self, node: ast.Assign) -> None:
        if len(node.targets) != 1:
            return
        target = node.targets[0]
        value = node.value
        if isinstance(target, ast.Tuple):
            if isinstance(value, ast.Tuple) \
                    and len(target.elts) == len(value.elts):
                for elt, rhs in zip(target.elts, value.elts):
                    if isinstance(elt, ast.Name):
                        self._bind_name(elt.id, rhs, node.lineno)
        elif isinstance(target, ast.Name):
            self._bind_name(target.id, value, node.lineno)
        else:
            attr = self._self_attr(target)
            if attr is not None:
                self._bind_attr(attr, value, node.lineno)
            else:
                # Store into any container/attribute transfers
                # ownership of a tracked local on the right-hand side.
                for name_node in ast.walk(value):
                    if isinstance(name_node, ast.Name):
                        self._settle(name_node.id, node.lineno)

    def _bind_name(self, name: str, value: ast.expr, line: int) -> None:
        if self._acquired_value(value) is not None:
            return  # recorded by the acquisition pass
        attr = self._self_attr(value)
        if attr is not None:
            self.attr_alias[name] = attr
            return
        if isinstance(value, ast.Name):
            # Rebinding hands the resource to the new name; treat the
            # old one as settled rather than guessing at aliasing.
            self._settle(value.id, line)

    def _bind_attr(self, attr: str, value: ast.expr, line: int) -> None:
        acquired = self._acquired_value(value)
        if acquired is not None:
            self.facts.attr_stores.append(
                _AttrRecord(attr, line, acquired))
            return
        if isinstance(value, ast.Name):
            acq = self._tracked.get(value.id)
            self._settle(value.id, line)
            if acq is not None:
                self.facts.attr_stores.append(
                    _AttrRecord(attr, line, acq.what))
            return
        if isinstance(value, (ast.ListComp, ast.SetComp)):
            ctor = self._resource_ctor(value.elt)
            if ctor is not None:
                self.facts.comp_ctors.append((value.lineno, ctor))
                self.facts.attr_stores.append(
                    _AttrRecord(attr, line, ctor, elementwise=True))

    # -- call classification pass -----------------------------------------

    def _classify_call(self, node: ast.AST) -> None:
        if not isinstance(node, ast.Call):
            return
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr == "fsync":
                self.facts.has_fsync = True
            if (func.attr in ("replace", "rename")
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "os"):
                self.facts.rename_lines.append(node.lineno)
            receiver = func.value
            if func.attr in _RELEASE_CALLS:
                if isinstance(receiver, ast.Name):
                    self._settle(receiver.id, node.lineno)
                    alias = self.attr_alias.get(receiver.id)
                    if alias is not None:
                        self.facts.attr_released.add(alias)
                else:
                    attr = self._self_attr(receiver)
                    if attr is not None:
                        self.facts.attr_released.add(attr)
                return  # cleanup calls are not risky
            if isinstance(receiver, ast.Name) \
                    and receiver.id in self._tracked:
                # A method on the tracked resource itself failing
                # leaves nothing extra to release for that resource.
                pass
            else:
                self.facts.risky.append(
                    (node.lineno, f".{func.attr}()"))
        elif isinstance(func, ast.Name):
            self.facts.risky.append((node.lineno, f"{func.id}()"))
        # Passing a tracked local to any call transfers ownership.
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            for name_node in ast.walk(arg):
                if isinstance(name_node, ast.Name):
                    self._settle(name_node.id, node.lineno)
            attr = self._self_attr(arg)
            if attr is not None:
                self.facts.attr_released.add(attr)


@register
class ResourceLifecycleRule(Rule):
    id = "resource-lifecycle"
    pragma = "owned-by"
    description = ("every acquired OS resource (open/mmap/socket/Pipe/"
                   "Popen/tempfile) reaches a close or an ownership "
                   "transfer on all paths, including early-error paths")

    def check_graph(self, graph: GraphContext) -> Iterable[Finding]:
        findings: list[Finding] = []
        resource_ctors = self._resource_classes(graph)
        class_attrs: dict[tuple[str, str],
                          dict[str, _AttrRecord]] = {}
        class_released: dict[tuple[str, str], set[str]] = {}
        class_anchor: dict[tuple[str, str],
                           tuple[SourceFile, ClassModel]] = {}

        for module_name in sorted(graph.project.modules):
            if not module_name.startswith("repro"):
                continue
            module = graph.project.modules[module_name]
            source = module.source
            for func_name in sorted(module.functions):
                facts = _FunctionWalk(module.functions[func_name],
                                      resource_ctors).facts
                findings.extend(self._check_function(
                    source, f"{module_name}.{func_name}", facts))
            for class_name in sorted(module.classes):
                cls = module.classes[class_name]
                key = (module_name, class_name)
                class_anchor[key] = (source, cls)
                for method_name in sorted(cls.methods):
                    facts = _FunctionWalk(cls.methods[method_name],
                                          resource_ctors).facts
                    findings.extend(self._check_function(
                        source, f"{cls.qualname}.{method_name}", facts))
                    attrs = class_attrs.setdefault(key, {})
                    for record in facts.attr_stores:
                        attrs.setdefault(record.attr, record)
                    class_released.setdefault(key, set()).update(
                        facts.attr_released)
                self._add_typed_attrs(
                    cls, resource_ctors, class_attrs.setdefault(key, {}))

        for key in sorted(class_attrs):
            source, cls = class_anchor[key]
            released = class_released.get(key, set())
            for attr in sorted(class_attrs[key]):
                record = class_attrs[key][attr]
                if attr in released:
                    continue
                findings.append(self.finding(
                    source, record.line,
                    f"{cls.name} stores a resource ({record.what}) in "
                    f"self.{attr} but never releases it; add a close/"
                    f"shutdown path or mark the store "
                    f"# lint: owned-by({attr}) (reason)"))
        return findings

    # -- resource classes -------------------------------------------------

    def _resource_classes(self, graph: GraphContext) -> dict[str, str]:
        """Class name -> evidence, for classes directly holding an OS
        resource in an attribute (and able to release it)."""
        ctors: dict[str, str] = {}
        for cls in graph.project.iter_classes():
            if not cls.module.startswith("repro"):
                continue
            if not cls.has_release_method():
                continue
            evidence = self._direct_resource_evidence(cls)
            if evidence is not None:
                ctors[cls.name] = evidence
        return ctors

    def _direct_resource_evidence(self, cls: ClassModel) -> str | None:
        for method in cls.methods.values():
            for node in ast.walk(method):
                if not isinstance(node, ast.Assign) \
                        or not isinstance(node.value, ast.Call):
                    continue
                acquirer = _acquirer_of(node.value)
                if acquirer is None:
                    continue
                for target in node.targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        return acquirer
                    # Locals from Pipe()/open() that a later
                    # ``self.attr = local`` adopts also qualify.
                    if isinstance(target, (ast.Name, ast.Tuple)):
                        return acquirer
        return None

    def _add_typed_attrs(self, cls: ClassModel,
                         resource_ctors: dict[str, str],
                         attrs: dict[str, _AttrRecord]) -> None:
        """Attrs typed (by the project model) as resource-class
        instances or lists thereof join the audit."""
        for attr, ref in cls.attr_types.items():
            if ref.kind not in ("instance", "list"):
                continue
            if ref.name not in resource_ctors:
                continue
            attrs.setdefault(attr, _AttrRecord(
                attr, cls.lineno,
                ref.name + (" list" if ref.kind == "list" else ""),
                elementwise=ref.kind == "list"))

    # -- per-function checks ----------------------------------------------

    def _check_function(self, source: SourceFile, qualname: str,
                        facts: _FunctionFacts) -> Iterable[Finding]:
        findings: list[Finding] = []
        for line, ctor in facts.comp_ctors:
            findings.append(self.finding(
                source, line,
                f"{qualname} builds a comprehension of {ctor} "
                f"constructions; a failing constructor leaks the "
                f"already-built instances — build incrementally and "
                f"clean up on error"))
        if not facts.has_fsync:
            for line in facts.rename_lines:
                findings.append(self.finding(
                    source, line,
                    f"{qualname} commits via os.replace/os.rename "
                    f"without an fsync; flush+fsync the tmp file first "
                    f"or the rename can publish an empty file"))
        for acq in facts.acquisitions:
            findings.extend(self._check_acquisition(
                source, qualname, facts, acq))
        return findings

    def _check_acquisition(self, source: SourceFile, qualname: str,
                           facts: _FunctionFacts,
                           acq: _Acquisition) -> Iterable[Finding]:
        settled = sorted(line for line in facts.settled.get(acq.name, ())
                         if line >= acq.line)
        if not settled:
            return [self.finding(
                source, acq.line,
                f"{qualname} acquires {acq.name} via {acq.what} but "
                f"never closes or hands it off; release it, or mark "
                f"ownership with # lint: owned-by(...) (reason)")]
        first = settled[0]
        for line, desc in sorted(facts.risky):
            if not (acq.line < line < first):
                continue
            if any(start <= line <= end
                   for start, end in facts.cleanup_ranges):
                continue  # handler/finally code is the error path
            if self._protected(facts, acq.name, line):
                continue
            return [self.finding(
                source, acq.line,
                f"{qualname}: {desc} at line {line} can raise before "
                f"{acq.name} ({acq.what}, acquired here) is settled at "
                f"line {first}; close it in a try/except or finally "
                f"on that path")]
        return []

    def _protected(self, facts: _FunctionFacts, name: str,
                   risky_line: int) -> bool:
        settled = facts.settled.get(name, ())
        for body_start, body_end, clean_start, clean_end \
                in facts.protections:
            if not body_start <= risky_line <= body_end:
                continue
            if any(clean_start <= line <= clean_end for line in settled):
                return True
        return False
